// Package intention implements the intention calculus of SQLB (VLDB 2007),
// Section 5: Definition 7 (consumer intention, trading preferences for
// provider reputation via υ) and Definition 8 (provider intention, trading
// preferences for utilization via the provider's own satisfaction).
//
// Both definitions are piecewise: a positive weighted-geometric branch when
// the participant wants the interaction and circumstances allow it, and a
// negative branch whose magnitude grows with how strongly the participant
// does not want it. With the paper's ε = 1 the negative branch can exceed
// -1 in magnitude (Figure 2's surface reaches -2.5); participants *express*
// the clamped value (Section 2 fixes the range to [-1,1]) while the raw
// value is retained for plotting the Figure 2 surface.
package intention

import "math"

// DefaultEpsilon is the paper's usual setting of ε ("usually set to 1"),
// which keeps the negative branches away from 0 when a preference or
// reputation equals 1.
const DefaultEpsilon = 1.0

// Consumer computes the raw consumer intention ci_c(q,p) of Definition 7.
//
//	pref    prf_c(q,p) ∈ [-1,1]: the consumer's preference for allocating
//	        q to p.
//	rep     rep(p) ∈ [-1,1]: the provider's reputation.
//	upsilon υ ∈ [0,1]: 1 = trust only own preferences, 0 = only reputation.
//	epsilon ε > 0.
//
// Inputs are clamped to their documented domains.
func Consumer(pref, rep, upsilon, epsilon float64) float64 {
	pref = clamp(pref, -1, 1)
	rep = clamp(rep, -1, 1)
	upsilon = clamp(upsilon, 0, 1)
	epsilon = positive(epsilon)
	if pref > 0 && rep > 0 {
		return pow(pref, upsilon) * pow(rep, 1-upsilon)
	}
	return -(pow(1-pref+epsilon, upsilon) * pow(1-rep+epsilon, 1-upsilon))
}

// Provider computes the raw provider intention pi_p(q) of Definition 8.
//
//	pref  prf_p(q) ∈ [-1,1]: the provider's preference for performing q.
//	util  Ut(p) ≥ 0: the provider's current utilization.
//	sat   δs(p) ∈ [0,1]: the provider's satisfaction *based on its private
//	      preferences* (Section 5.2: the balance must rest on preferences,
//	      which only the provider itself can compute).
//	epsilon ε > 0.
//
// When the provider is satisfied (sat → 1) utilization dominates: it will
// accept queries it does not love while it has capacity. When dissatisfied
// (sat → 0) preferences dominate: it chases desired queries regardless of
// load. Positive intentions only arise when the provider wants the query
// and is not overutilized, which is what keeps response times good.
func Provider(pref, util, sat, epsilon float64) float64 {
	pref = clamp(pref, -1, 1)
	if util < 0 {
		util = 0
	}
	sat = clamp(sat, 0, 1)
	epsilon = positive(epsilon)
	if pref > 0 && util < 1 {
		return pow(pref, 1-sat) * pow(1-util, sat)
	}
	return -(pow(1-pref+epsilon, 1-sat) * pow(util+epsilon, sat))
}

// ConsumerExpressed is Consumer clamped to the expressed range [-1,1] of
// Section 2 — the value a consumer actually communicates to the mediator.
func ConsumerExpressed(pref, rep, upsilon, epsilon float64) float64 {
	return clamp(Consumer(pref, rep, upsilon, epsilon), -1, 1)
}

// ProviderExpressed is Provider clamped to the expressed range [-1,1].
func ProviderExpressed(pref, util, sat, epsilon float64) float64 {
	return clamp(Provider(pref, util, sat, epsilon), -1, 1)
}

func clamp(v, lo, hi float64) float64 {
	if math.IsNaN(v) {
		return lo
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func positive(eps float64) float64 {
	if !(eps > 0) {
		return DefaultEpsilon
	}
	return eps
}

// pow is math.Pow with the fast paths that dominate this workload
// (exponents 0 and 1 appear whenever υ, δs, or ω sit at their extremes).
func pow(base, exp float64) float64 {
	switch exp {
	case 0:
		return 1
	case 1:
		return base
	}
	return math.Pow(base, exp)
}

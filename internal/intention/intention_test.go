package intention

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestConsumerPositiveBranch(t *testing.T) {
	// υ=1: intention is exactly the preference (the experimental setting).
	if got := Consumer(0.7, 0.2, 1, 1); !almostEqual(got, 0.7) {
		t.Errorf("υ=1 intention = %v, want preference 0.7", got)
	}
	// υ=0: intention is exactly the reputation.
	if got := Consumer(0.7, 0.2, 0, 1); !almostEqual(got, 0.2) {
		t.Errorf("υ=0 intention = %v, want reputation 0.2", got)
	}
	// υ=0.5: geometric mean.
	if got := Consumer(0.9, 0.4, 0.5, 1); !almostEqual(got, math.Sqrt(0.9*0.4)) {
		t.Errorf("υ=0.5 intention = %v, want √(0.36)", got)
	}
}

func TestConsumerNegativeBranch(t *testing.T) {
	// Preference ≤ 0 forces the negative branch even with good reputation.
	got := Consumer(-0.5, 0.8, 0.5, 1)
	want := -math.Sqrt((1 + 0.5 + 1) * (1 - 0.8 + 1))
	if !almostEqual(got, want) {
		t.Errorf("negative-branch intention = %v, want %v", got, want)
	}
	if got >= 0 {
		t.Error("disliked provider must yield negative intention")
	}
	// Reputation ≤ 0 also forces the negative branch.
	if Consumer(0.5, -0.1, 0.5, 1) >= 0 {
		t.Error("bad reputation must yield negative intention")
	}
	// Zero preference is "indifference", not desire: negative branch.
	if Consumer(0, 1, 0.5, 1) >= 0 {
		t.Error("zero preference must not yield positive intention")
	}
}

func TestConsumerEpsilonPreventsZero(t *testing.T) {
	// With pref = 1 in the negative branch (rep ≤ 0), ε keeps the
	// magnitude away from 0.
	got := Consumer(1, -1, 0.5, 1)
	if got == 0 {
		t.Error("ε must prevent a zero intention")
	}
	want := -math.Sqrt((1 - 1 + 1) * (1 + 1 + 1))
	if !almostEqual(got, want) {
		t.Errorf("intention = %v, want %v", got, want)
	}
}

func TestConsumerMonotonicInPreference(t *testing.T) {
	prev := math.Inf(-1)
	for p := -1.0; p <= 1.0; p += 0.05 {
		got := Consumer(p, 0.5, 0.7, 1)
		if got < prev-1e-12 {
			t.Fatalf("intention not monotone in preference at %v: %v < %v", p, got, prev)
		}
		prev = got
	}
}

func TestProviderPositiveBranch(t *testing.T) {
	// Dissatisfied provider (δs=0) focuses on preferences.
	if got := Provider(0.8, 0.5, 0, 1); !almostEqual(got, 0.8) {
		t.Errorf("δs=0 intention = %v, want preference 0.8", got)
	}
	// Fully satisfied provider (δs=1) focuses on utilization.
	if got := Provider(0.8, 0.3, 1, 1); !almostEqual(got, 0.7) {
		t.Errorf("δs=1 intention = %v, want 1-Ut = 0.7", got)
	}
	// δs=0.5: geometric balance (the Figure 2 setting).
	if got := Provider(0.64, 0.36, 0.5, 1); !almostEqual(got, math.Sqrt(0.64*0.64)) {
		t.Errorf("δs=0.5 intention = %v, want √(0.64·0.64)", got)
	}
}

func TestProviderNegativeBranch(t *testing.T) {
	// Overutilized providers never show positive intention, regardless of
	// preference — this is what protects response times (Section 5.2).
	if got := Provider(1, 1, 0.5, 1); got >= 0 {
		t.Errorf("overutilized provider intention = %v, want negative", got)
	}
	if got := Provider(1, 2.5, 0.5, 1); got >= 0 {
		t.Errorf("heavily overutilized intention = %v, want negative", got)
	}
	// Unwanted queries yield negative intention even when idle.
	if got := Provider(-0.3, 0, 0.5, 1); got >= 0 {
		t.Errorf("unwanted-query intention = %v, want negative", got)
	}
	// Exact formula check: pref=-0.5, Ut=1.5, δs=0.5, ε=1:
	// -( (1+0.5+1)^0.5 · (1.5+1)^0.5 )
	got := Provider(-0.5, 1.5, 0.5, 1)
	want := -math.Sqrt(2.5 * 2.5)
	if !almostEqual(got, want) {
		t.Errorf("intention = %v, want %v", got, want)
	}
}

func TestProviderMoreLoadedLessWilling(t *testing.T) {
	prev := math.Inf(1)
	for u := 0.0; u <= 2.0; u += 0.1 {
		got := Provider(0.9, u, 0.5, 1)
		if got > prev+1e-12 {
			t.Fatalf("intention not non-increasing in utilization at %v: %v > %v", u, got, prev)
		}
		prev = got
	}
}

func TestProviderDissatisfiedChasesPreferences(t *testing.T) {
	// At equal high load, a dissatisfied provider shows a stronger
	// intention for a loved query than a satisfied one does.
	dissat := Provider(0.9, 0.9, 0.1, 1)
	sat := Provider(0.9, 0.9, 0.9, 1)
	if dissat <= sat {
		t.Errorf("dissatisfied %v should exceed satisfied %v for a loved query under load", dissat, sat)
	}
}

func TestFigure2SurfaceShape(t *testing.T) {
	// Figure 2 (δs = 0.5): positive intentions only in the quadrant
	// pref > 0 ∧ Ut < 1; the surface dips to about -2.5 at the worst corner.
	worst := Provider(-1, 2, 0.5, 1)
	if worst > -2.4 || worst < -3.1 {
		t.Errorf("worst-corner value = %v, want ≈ -√(3·3) = -3 … -2.4 region", worst)
	}
	best := Provider(1, 0, 0.5, 1)
	if !almostEqual(best, 1) {
		t.Errorf("best-corner value = %v, want 1", best)
	}
	for p := -1.0; p <= 1.0; p += 0.25 {
		for u := 0.0; u <= 2.0; u += 0.25 {
			v := Provider(p, u, 0.5, 1)
			if v > 0 && !(p > 0 && u < 1) {
				t.Fatalf("positive intention outside the allowed quadrant: pref=%v ut=%v v=%v", p, u, v)
			}
		}
	}
}

func TestExpressedClamped(t *testing.T) {
	if got := ConsumerExpressed(-1, -1, 0.5, 1); got != -1 {
		t.Errorf("expressed consumer intention = %v, want clamped -1", got)
	}
	if got := ProviderExpressed(-1, 2, 0.5, 1); got != -1 {
		t.Errorf("expressed provider intention = %v, want clamped -1", got)
	}
	if got := ProviderExpressed(0.5, 0.2, 0.5, 1); got < -1 || got > 1 {
		t.Errorf("expressed intention out of range: %v", got)
	}
}

func TestInputClamping(t *testing.T) {
	// Garbage inputs must not produce NaN.
	cases := []float64{
		Consumer(math.NaN(), 0.5, 0.5, 1),
		Consumer(5, -7, 2, -1),
		Provider(math.NaN(), math.NaN(), math.NaN(), 0),
		Provider(3, -2, 9, math.NaN()),
	}
	for i, v := range cases {
		if math.IsNaN(v) {
			t.Errorf("case %d produced NaN", i)
		}
	}
}

func TestEpsilonDefaultOnInvalid(t *testing.T) {
	a := Provider(-0.5, 0.5, 0.5, 0) // ε=0 invalid → default 1
	b := Provider(-0.5, 0.5, 0.5, 1)
	if !almostEqual(a, b) {
		t.Errorf("invalid ε should fall back to 1: %v vs %v", a, b)
	}
}

func TestConsumerSignProperty(t *testing.T) {
	f := func(pref, rep, ups float64) bool {
		p := math.Mod(pref, 1)
		r := math.Mod(rep, 1)
		u := math.Abs(math.Mod(ups, 1))
		got := Consumer(p, r, u, 1)
		if p > 0 && r > 0 {
			return got > 0 && got <= 1+1e-9
		}
		return got <= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProviderSignProperty(t *testing.T) {
	f := func(pref, util, sat float64) bool {
		p := math.Mod(pref, 1)
		u := math.Abs(math.Mod(util, 3))
		s := math.Abs(math.Mod(sat, 1))
		got := Provider(p, u, s, 1)
		if p > 0 && u < 1 {
			return got > 0 && got <= 1+1e-9
		}
		return got <= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

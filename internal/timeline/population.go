package timeline

import (
	"sqlb/internal/metrics"
	"sqlb/internal/model"
)

// FillUtilization fills the participant-state gauges of a snapshot from
// the population at the given clock: the utilization mean/fairness/Gini
// over alive providers, the per-capacity-class utilization means behind
// the dashboard bars, and the alive counts. Shared by the sim engine's
// sample hook and the serving driver's interval snapshots; it only reads
// provider state, so calling it can never perturb a run.
func FillUtilization(s *Snapshot, pop *model.Population, now float64) {
	var (
		utils     []float64
		classSum  [3]float64
		classN    [3]int
		aliveCons int
	)
	for _, p := range pop.Providers {
		if !p.Alive {
			continue
		}
		u := p.MeasuredLoad(now)
		utils = append(utils, u)
		classSum[p.CapClass] += u
		classN[p.CapClass]++
	}
	for _, c := range pop.Consumers {
		if c.Alive {
			aliveCons++
		}
	}
	sum := metrics.Summarize(utils)
	s.UtilMean = sum.Mean
	s.UtilFairness = sum.Fairness
	s.UtilGini = metrics.Gini(utils)
	classMean := func(lvl int) float64 {
		if classN[lvl] == 0 {
			return 0
		}
		return classSum[lvl] / float64(classN[lvl])
	}
	s.UtilClassLow = classMean(int(model.Low))
	s.UtilClassMed = classMean(int(model.Medium))
	s.UtilClassHigh = classMean(int(model.High))
	s.AliveProviders = float64(len(utils))
	s.AliveConsumers = float64(aliveCons)
}

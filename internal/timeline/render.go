package timeline

import (
	"fmt"
	"regexp"
	"strings"
	"unicode/utf8"
)

// HomeAndClear is the ANSI sequence a live render loop prefixes each
// frame with: cursor home plus erase-below, which repaints in place
// without the full-screen flash of a hard clear.
const HomeAndClear = "\x1b[H\x1b[J"

// HideCursor and ShowCursor wrap a live rendering session.
const (
	HideCursor = "\x1b[?25l"
	ShowCursor = "\x1b[?25h"
)

// sparkLevels are the eighth-block characters sparklines are drawn with.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// ansiPattern matches CSI escape sequences (colors, cursor movement).
var ansiPattern = regexp.MustCompile(`\x1b\[[0-9;?]*[A-Za-z]`)

// StripANSI removes escape sequences — the golden-frame test renders a
// colored frame and compares the plain text.
func StripANSI(s string) string { return ansiPattern.ReplaceAllString(s, "") }

// Sparkline renders the last `width` values as eighth-block characters,
// scaled min→max over the shown values (a flat series renders as a low
// bar, not an empty cell, so "constant" and "no data" look different).
func Sparkline(values []float64, width int) string {
	if width <= 0 || len(values) == 0 {
		return ""
	}
	if len(values) > width {
		values = values[len(values)-width:]
	}
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkLevels)-1))
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// Bar renders value/max as a fixed-width block gauge, e.g. [███████···].
// Values past max fill the bar (a saturated provider reads as full).
func Bar(value, max float64, width int) string {
	if width <= 0 {
		return ""
	}
	fill := 0
	if max > 0 {
		fill = int(value / max * float64(width))
	}
	if fill > width {
		fill = width
	}
	if fill < 0 {
		fill = 0
	}
	return "[" + strings.Repeat("█", fill) + strings.Repeat("·", width-fill) + "]"
}

// Dashboard renders snapshot windows as a fixed-width terminal frame:
// headline gauges, per-metric sparklines, per-capacity-class utilization
// bars, churn and backpressure counters, and the calculator's
// recommendation lines. Width is the frame width in cells (0 = 80);
// Color enables ANSI colors (the golden test renders without).
type Dashboard struct {
	Width int
	Color bool
}

// color wraps s in an SGR sequence when colors are on.
func (d *Dashboard) color(code, s string) string {
	if !d.Color {
		return s
	}
	return "\x1b[" + code + "m" + s + "\x1b[0m"
}

func levelColor(level string) string {
	switch level {
	case LevelCrit:
		return "31;1" // bright red
	case LevelWarn:
		return "33;1" // bright yellow
	default:
		return "32" // green
	}
}

// Frame renders one dashboard frame from the raw snapshot window (oldest
// first) and its health assessment. The caller owns screen control
// (HomeAndClear between frames); the frame itself is plain lines.
func (d *Dashboard) Frame(win []Snapshot, h Health) string {
	width := d.Width
	if width <= 0 {
		width = 80
	}
	var b strings.Builder
	if len(win) == 0 {
		b.WriteString(d.color("2", "sqlb-top · waiting for snapshots...") + "\n")
		return b.String()
	}
	last := win[len(win)-1]
	spark := width/2 - 16
	if spark < 8 {
		spark = 8
	}
	series := func(get func(*Snapshot) float64) []float64 {
		out := make([]float64, len(win))
		for i := range win {
			out[i] = get(&win[i])
		}
		return out
	}

	title := fmt.Sprintf("sqlb-top · %s", last.Source)
	right := fmt.Sprintf("t=%.1fs · %d rows", last.Time, len(win))
	pad := width - len(title) - len(right)
	if pad < 1 {
		pad = 1
	}
	b.WriteString(d.color("1", title) + strings.Repeat(" ", pad) + d.color("2", right) + "\n")

	fmt.Fprintf(&b, "load      %4.0f%%   qps in %8.1f  out %8.1f   queue %5.0f   alive %3.0fP %3.0fC\n",
		100*last.WorkloadFraction, last.QPSIn, last.QPSOut, last.QueueDepth,
		last.AliveProviders, last.AliveConsumers)
	fmt.Fprintf(&b, "latency   mean %s  p50 %s  p95 %s  p99 %s\n",
		fmtSecs(last.LatencyMean), fmtSecs(last.LatencyP50), fmtSecs(last.LatencyP95), fmtSecs(last.LatencyP99))
	fmt.Fprintf(&b, "prov sat  %5.3f %s\n", last.ProvSat, Sparkline(series(func(s *Snapshot) float64 { return s.ProvSat }), spark))
	fmt.Fprintf(&b, "cons sat  %5.3f %s   alloc sat %5.3f\n",
		last.ConsSat, Sparkline(series(func(s *Snapshot) float64 { return s.ConsSat }), spark), last.AllocSat)
	fmt.Fprintf(&b, "util      %5.3f %s   fair %5.3f  gini %5.3f\n",
		last.UtilMean, Sparkline(series(func(s *Snapshot) float64 { return s.UtilMean }), spark),
		last.UtilFairness, last.UtilGini)
	fmt.Fprintf(&b, "qps       %7.1f %s\n", last.QPSIn, Sparkline(series(func(s *Snapshot) float64 { return s.QPSIn }), spark))

	barW := width - 26
	if barW > 32 {
		barW = 32
	}
	if barW < 8 {
		barW = 8
	}
	classes := []struct {
		label string
		v     float64
	}{
		{"low ", last.UtilClassLow},
		{"med ", last.UtilClassMed},
		{"high", last.UtilClassHigh},
	}
	for i, c := range classes {
		label := "class     "
		if i > 0 {
			label = "          "
		}
		fmt.Fprintf(&b, "%s%s %s %5.3f\n", label, c.label, Bar(c.v, 1, barW), c.v)
	}

	var dropped, rejected, errs float64
	for i := range win {
		dropped += win[i].Dropped
		rejected += win[i].Rejected
		errs += win[i].Errors
	}
	fmt.Fprintf(&b, "churn     departures %.0f  joins %.0f   window drops %.0f  rejects %.0f  errors %.0f\n",
		last.Departures, last.Joins, dropped, rejected, errs)

	level := strings.ToUpper(h.Level)
	if len(h.Recommendations) == 0 {
		b.WriteString("health    " + d.color(levelColor(h.Level), level) + "    system healthy\n")
	} else {
		// 10 for the gutter, the level word, two spaces — what remains of
		// the frame width belongs to the advice text.
		room := width - 12 - len(level)
		for i, rec := range h.Recommendations {
			if i == 0 {
				b.WriteString("health    " + d.color(levelColor(h.Level), level) + "  " + clip(rec, room) + "\n")
			} else {
				b.WriteString("          " + strings.Repeat(" ", len(level)) + "  " + clip(rec, room) + "\n")
			}
		}
	}
	return b.String()
}

// clip truncates s to width runes, marking the cut with an ellipsis.
func clip(s string, width int) string {
	if width < 1 || utf8.RuneCountInString(s) <= width {
		return s
	}
	runes := []rune(s)
	return string(runes[:width-1]) + "…"
}

// fmtSecs renders a duration given in seconds with a unit that keeps
// three significant figures (µs/ms/s).
func fmtSecs(v float64) string {
	switch {
	case v <= 0:
		return "    -  "
	case v < 1e-3:
		return fmt.Sprintf("%5.1fµs", v*1e6)
	case v < 1:
		return fmt.Sprintf("%5.1fms", v*1e3)
	default:
		return fmt.Sprintf("%5.2fs ", v)
	}
}

package timeline

import (
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// snap builds a test snapshot whose fields are all distinguishable, so
// codec and aggregation tests catch swapped columns.
func snap(t float64) Snapshot {
	return Snapshot{
		Time:             t,
		Source:           "sim",
		WorkloadFraction: 0.8,
		QPSIn:            100 + t,
		QPSOut:           90 + t,
		Dropped:          1,
		Rejected:         2,
		Errors:           0,
		QueueDepth:       5 + t,
		LatencyMean:      0.25,
		LatencyP50:       0.2,
		LatencyP95:       0.9,
		LatencyP99:       1.5,
		ProvSat:          0.61,
		ConsSat:          0.55,
		AllocSat:         0.97,
		SatFairness:      0.93,
		UtilMean:         0.72,
		UtilFairness:     0.88,
		UtilGini:         0.21,
		UtilClassLow:     0.5,
		UtilClassMed:     0.7,
		UtilClassHigh:    0.9,
		AliveProviders:   100,
		AliveConsumers:   50,
		Departures:       3,
		Joins:            1,
	}
}

func TestFieldsTableComplete(t *testing.T) {
	// Every field must roundtrip through its get/set pair, and names must
	// be unique — the schema table is the single source of truth for the
	// codec, so a broken accessor silently corrupts recorded timelines.
	seen := map[string]bool{}
	for i, f := range fields {
		if f.name == "" || seen[f.name] {
			t.Fatalf("field %d: empty or duplicate name %q", i, f.name)
		}
		seen[f.name] = true
		var s Snapshot
		f.set(&s, 42.5)
		if got := f.get(&s); got != 42.5 {
			t.Fatalf("field %q: set 42.5, get %v (get/set pair mismatched)", f.name, got)
		}
	}
}

func TestCSVRoundtrip(t *testing.T) {
	var sb strings.Builder
	sink := NewCSVSink(&sb)
	want := []Snapshot{snap(10), snap(20), snap(30)}
	for _, s := range want {
		if err := sink.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: decoded %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestCSVDecoderSkipsUnknownColumns(t *testing.T) {
	in := "source,time,mystery,util_mean\nsim,5,99,0.5\n"
	got, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Time != 5 || got[0].UtilMean != 0.5 {
		t.Fatalf("got %+v", got)
	}
}

func TestCSVDecoderRejectsForeignCSV(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Fatal("want an error for a non-timeline header")
	}
}

// slowWriter delivers data to the decoder in tiny chunks so partial rows
// are the common case, as when tailing a live file mid-write.
type slowWriter struct {
	data []byte
	pos  int
}

func (s *slowWriter) Read(p []byte) (int, error) {
	if s.pos >= len(s.data) {
		return 0, io.EOF
	}
	p[0] = s.data[s.pos]
	s.pos++
	return 1, nil
}

func TestDecoderBuffersPartialLines(t *testing.T) {
	var sb strings.Builder
	sink := NewCSVSink(&sb)
	for _, s := range []Snapshot{snap(1), snap(2)} {
		if err := sink.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	sink.Flush()
	got, err := ReadCSV(&slowWriter{data: []byte(sb.String())})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Time != 1 || got[1].Time != 2 {
		t.Fatalf("got %d rows %+v", len(got), got)
	}
}

func TestTailerFollowsGrowingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.csv")
	sink, err := CreateCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	sink.FlushEveryRow = true
	if err := sink.Append(snap(1)); err != nil {
		t.Fatal(err)
	}

	tail, err := OpenTail(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	rows, err := tail.Poll()
	if err != nil || len(rows) != 1 || rows[0].Time != 1 {
		t.Fatalf("first poll: rows=%v err=%v", rows, err)
	}

	// Nothing new yet: Poll must return empty, not error.
	if rows, err := tail.Poll(); err != nil || len(rows) != 0 {
		t.Fatalf("idle poll: rows=%v err=%v", rows, err)
	}

	// The producer appends while the tailer is live.
	if err := sink.Append(snap(2)); err != nil {
		t.Fatal(err)
	}
	if err := sink.Append(snap(3)); err != nil {
		t.Fatal(err)
	}
	rows, err = tail.Poll()
	if err != nil || len(rows) != 2 || rows[0].Time != 2 || rows[1].Time != 3 {
		t.Fatalf("live poll: rows=%v err=%v", rows, err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCollectorPassthrough(t *testing.T) {
	var got []Snapshot
	c := NewCollector(0, 4, SinkFunc(func(s Snapshot) error {
		got = append(got, s)
		return nil
	}))
	for i := 1; i <= 6; i++ {
		c.Offer(snap(float64(i)))
	}
	if len(got) != 6 {
		t.Fatalf("passthrough emitted %d rows, want 6", len(got))
	}
	if c.Rows() != 6 {
		t.Fatalf("Rows() = %d, want 6", c.Rows())
	}
	// The raw window is bounded: only the last 4 of 6 survive, oldest
	// first.
	win := c.Window()
	if len(win) != 4 || win[0].Time != 3 || win[3].Time != 6 {
		t.Fatalf("window = %v", times(win))
	}
	last, ok := c.Last()
	if !ok || last.Time != 6 {
		t.Fatalf("Last() = %v %v", last, ok)
	}
}

func times(win []Snapshot) []float64 {
	out := make([]float64, len(win))
	for i := range win {
		out[i] = win[i].Time
	}
	return out
}

func TestCollectorAggregation(t *testing.T) {
	var got []Snapshot
	c := NewCollector(10, 0, SinkFunc(func(s Snapshot) error {
		got = append(got, s)
		return nil
	}))

	a := snap(1)
	a.QPSIn, a.Dropped, a.QueueDepth, a.Departures = 100, 1, 5, 2
	b := snap(4)
	b.QPSIn, b.Dropped, b.QueueDepth, b.Departures = 200, 3, 9, 4
	c.Offer(a)
	c.Offer(b)
	// Next bucket: flushes [0,10).
	c.Offer(snap(11))
	if len(got) != 1 {
		t.Fatalf("emitted %d rows, want 1", len(got))
	}
	row := got[0]
	if row.QPSIn != 150 { // aggMean
		t.Errorf("mean qps_in = %v, want 150", row.QPSIn)
	}
	if row.Dropped != 4 { // aggSum
		t.Errorf("sum dropped = %v, want 4", row.Dropped)
	}
	if row.QueueDepth != 9 { // aggMax
		t.Errorf("max queue_depth = %v, want 9", row.QueueDepth)
	}
	if row.Departures != 4 || row.Time != 4 { // aggLast
		t.Errorf("last departures/time = %v/%v, want 4/4", row.Departures, row.Time)
	}

	// Close flushes the open bucket.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Time != 11 {
		t.Fatalf("after close: %d rows, last time %v", len(got), got[len(got)-1].Time)
	}
}

func TestCollectorSinkErrorSurfaces(t *testing.T) {
	boom := errors.New("boom")
	c := NewCollector(0, 0, SinkFunc(func(Snapshot) error { return boom }))
	if err := c.Append(snap(1)); !errors.Is(err, boom) {
		t.Fatalf("Append error = %v, want boom", err)
	}
	if err := c.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close error = %v, want boom", err)
	}
}

func TestAssessLevels(t *testing.T) {
	mk := func(n int, mut func(i int, s *Snapshot)) []Snapshot {
		win := make([]Snapshot, n)
		for i := range win {
			win[i] = Snapshot{Time: float64(i + 1), QPSIn: 100, UtilMean: 0.5, ProvSat: 0.6}
			mut(i, &win[i])
		}
		return win
	}

	if h := Assess(nil); h.Level != LevelOK {
		t.Errorf("empty window level = %s, want ok", h.Level)
	}
	if h := Assess(mk(10, func(int, *Snapshot) {})); h.Level != LevelOK || len(h.Recommendations) != 0 {
		t.Errorf("healthy window: %+v", h)
	}

	h := Assess(mk(10, func(i int, s *Snapshot) { s.UtilMean = 0.99 }))
	if h.Level != LevelCrit {
		t.Errorf("saturation level = %s, want crit (%v)", h.Level, h.Recommendations)
	}

	h = Assess(mk(10, func(i int, s *Snapshot) { s.Rejected = 50 }))
	if h.Level != LevelCrit || h.RejectRate < RejectRateWarn {
		t.Errorf("reject storm: %+v", h)
	}

	h = Assess(mk(10, func(i int, s *Snapshot) { s.Dropped = 10 }))
	if h.Level != LevelWarn || h.DropRate < DropRateWarn {
		t.Errorf("drops: %+v", h)
	}

	h = Assess(mk(10, func(i int, s *Snapshot) { s.UtilGini = 0.6 }))
	if h.Level != LevelWarn || h.Imbalance != 0.6 {
		t.Errorf("imbalance: %+v", h)
	}

	h = Assess(mk(10, func(i int, s *Snapshot) { s.ProvSat = 0.9 - 0.05*float64(i) }))
	if h.Level != LevelWarn || h.SatTrend >= 0 {
		t.Errorf("falling satisfaction: %+v", h)
	}

	h = Assess(mk(10, func(i int, s *Snapshot) { s.UtilMean = 0.05 }))
	if h.Level != LevelWarn {
		t.Errorf("underutilization: %+v", h)
	}
}

func TestSatTrendLinearSeries(t *testing.T) {
	// A perfectly linear drop of 0.3 across the window must be recovered
	// almost exactly by the least-squares fit.
	win := make([]Snapshot, 11)
	for i := range win {
		win[i] = Snapshot{Time: float64(i), ProvSat: 0.9 - 0.03*float64(i)}
	}
	if got := satTrend(win); math.Abs(got-(-0.3)) > 1e-9 {
		t.Fatalf("satTrend = %v, want -0.3", got)
	}
}

func TestCreateCSVBadPath(t *testing.T) {
	if _, err := CreateCSV(filepath.Join(t.TempDir(), "no", "such", "dir", "x.csv")); err == nil {
		t.Fatal("want error for unwritable path")
	}
}

func TestOpenTailMissingFile(t *testing.T) {
	_, err := OpenTail(filepath.Join(t.TempDir(), "absent.csv"))
	if err == nil {
		t.Fatal("want error for a missing file")
	}
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("error %v should unwrap to os.ErrNotExist (sqlb-top -follow waits on it)", err)
	}
}

// TestRepetitionPath pins the per-repetition naming scheme: single runs
// keep the user's path untouched, batches insert a zero-padded ".repNN"
// before the extension so listings sort in repetition order, and
// extension-less paths still work.
func TestRepetitionPath(t *testing.T) {
	cases := []struct {
		path         string
		rep, repeats int
		want         string
	}{
		{"out.csv", 0, 1, "out.csv"},
		{"out.csv", 0, 0, "out.csv"},
		{"out.csv", 0, 2, "out.rep0.csv"},
		{"out.csv", 1, 2, "out.rep1.csv"},
		{"out.csv", 3, 10, "out.rep3.csv"},
		{"out.csv", 9, 11, "out.rep09.csv"},
		{"out.csv", 10, 11, "out.rep10.csv"},
		{"out.csv", 7, 100, "out.rep07.csv"},
		{"runs/tl", 2, 4, "runs/tl.rep2"},
		{"a.b/tl.csv.gz", 1, 3, "a.b/tl.csv.rep1.gz"},
	}
	for _, tc := range cases {
		if got := RepetitionPath(tc.path, tc.rep, tc.repeats); got != tc.want {
			t.Errorf("RepetitionPath(%q, %d, %d) = %q, want %q",
				tc.path, tc.rep, tc.repeats, got, tc.want)
		}
	}
}

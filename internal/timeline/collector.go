package timeline

import (
	"sync"
)

// DefaultRawWindow bounds the collector's rolling raw-snapshot window when
// the caller passes 0 — enough history for an 80-column sparkline with
// headroom, small enough to be negligible per run.
const DefaultRawWindow = 240

// Collector is the bounded-memory hub of the timeline: producers Offer
// raw snapshots, the collector keeps the most recent ones in a rolling
// window (the dashboard's sparkline source), folds them into fixed
// aggregation intervals, and fans each completed interval row out to the
// configured sinks. Memory is O(rawWindow + sinks) regardless of run
// length — nothing is ever buffered per row.
//
// A Collector is itself a Sink, so it can sit anywhere a plain sink does
// (sim.Options.Timeline, serving.Config.Timeline) and wrap any fan-out
// behind it. All methods are safe for concurrent use: the serving driver
// appends from its snapshot goroutine while sqlb-top reads Window from
// the render loop.
type Collector struct {
	mu sync.Mutex

	// interval is the aggregation bucket width in snapshot time units;
	// <= 0 passes every raw snapshot straight through to the sinks.
	interval float64
	sinks    []Sink

	// raw is the rolling window ring; rawN is how many of its slots are
	// filled, rawHead the next write position.
	raw     []Snapshot
	rawHead int
	rawN    int

	// agg is the running aggregate of the open bucket; aggN its snapshot
	// count; bucket the open bucket index (floor(Time/interval)).
	agg     Snapshot
	aggN    int
	bucket  int64
	started bool

	rows uint64
	err  error
}

// NewCollector returns a collector aggregating on the given interval
// (<= 0 = pass-through) with a rolling raw window of rawWindow snapshots
// (0 = DefaultRawWindow), fanning completed rows out to the sinks.
func NewCollector(interval float64, rawWindow int, sinks ...Sink) *Collector {
	if rawWindow <= 0 {
		rawWindow = DefaultRawWindow
	}
	return &Collector{
		interval: interval,
		sinks:    sinks,
		raw:      make([]Snapshot, rawWindow),
	}
}

// Offer feeds one raw snapshot: it enters the rolling window immediately
// and the aggregation bucket it falls into; when a snapshot opens a later
// bucket, the finished bucket's row is emitted to every sink first.
// Snapshots must arrive in non-decreasing Time order per collector.
func (c *Collector) Offer(s Snapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()

	c.raw[c.rawHead] = s
	c.rawHead = (c.rawHead + 1) % len(c.raw)
	if c.rawN < len(c.raw) {
		c.rawN++
	}

	if c.interval <= 0 {
		c.emit(s)
		return
	}
	b := int64(s.Time / c.interval)
	if c.started && b != c.bucket {
		c.flushLocked()
	}
	if !c.started || c.aggN == 0 {
		c.bucket = b
		c.started = true
	}
	c.fold(s)
}

// fold merges one raw snapshot into the open bucket aggregate, per-field
// by aggregation kind. Means accumulate as sums here and divide at flush.
func (c *Collector) fold(s Snapshot) {
	if c.aggN == 0 {
		c.agg = s
		c.aggN = 1
		return
	}
	for _, f := range fields {
		cur, v := f.get(&c.agg), f.get(&s)
		switch f.agg {
		case aggMean, aggSum:
			f.set(&c.agg, cur+v)
		case aggLast:
			f.set(&c.agg, v)
		case aggMax:
			if v > cur {
				f.set(&c.agg, v)
			}
		}
	}
	c.agg.Source = s.Source
	c.aggN++
}

// flushLocked closes the open bucket: divides the mean fields by the
// bucket count and emits the row. Callers hold c.mu.
func (c *Collector) flushLocked() {
	if c.aggN == 0 {
		return
	}
	row := c.agg
	if c.aggN > 1 {
		n := float64(c.aggN)
		for _, f := range fields {
			if f.agg == aggMean {
				f.set(&row, f.get(&row)/n)
			}
		}
	}
	c.aggN = 0
	c.emit(row)
}

// emit fans one finished row out to every sink, keeping the first error.
func (c *Collector) emit(row Snapshot) {
	c.rows++
	for _, snk := range c.sinks {
		if err := snk.Append(row); err != nil && c.err == nil {
			c.err = err
		}
	}
}

// Flush emits the partially filled open bucket, if any — callers invoke
// it at end of run so the last interval is not lost.
func (c *Collector) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flushLocked()
	return c.err
}

// Window copies out the rolling raw window, oldest first — the
// dashboard's sparkline and trend source.
func (c *Collector) Window() []Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Snapshot, 0, c.rawN)
	start := c.rawHead - c.rawN
	if start < 0 {
		start += len(c.raw)
	}
	for i := 0; i < c.rawN; i++ {
		out = append(out, c.raw[(start+i)%len(c.raw)])
	}
	return out
}

// Last returns the most recent raw snapshot (false before the first
// Offer).
func (c *Collector) Last() (Snapshot, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rawN == 0 {
		return Snapshot{}, false
	}
	idx := c.rawHead - 1
	if idx < 0 {
		idx += len(c.raw)
	}
	return c.raw[idx], true
}

// Rows reports how many aggregate rows have been emitted to the sinks.
func (c *Collector) Rows() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rows
}

// Append makes the collector a Sink so it can wrap a fan-out anywhere a
// plain sink is accepted. It reports the first error any downstream sink
// returned (emission itself never fails).
func (c *Collector) Append(s Snapshot) error {
	c.Offer(s)
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close flushes the open bucket and closes every sink, returning the
// first error seen anywhere in the pipeline.
func (c *Collector) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flushLocked()
	for _, snk := range c.sinks {
		if cerr := snk.Close(); cerr != nil && c.err == nil {
			c.err = cerr
		}
	}
	return c.err
}

package timeline

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// CSVSink streams snapshots as CSV rows: the header is written on the
// first Append and every row goes straight to the underlying writer, so
// a timeline of any length costs constant memory — the replacement for
// the buffer-everything chart export sqlb-sim -csv used to do. The row
// encoder reuses one scratch buffer and appends with strconv, so the
// steady state allocates nothing per row (BenchmarkTimelineCSV pins
// this).
//
// Not safe for concurrent use; wrap it in a Collector (which serializes
// Appends) when multiple goroutines produce.
type CSVSink struct {
	w      *bufio.Writer
	c      io.Closer
	buf    []byte
	row    Snapshot // staging slot: &row through the field getters must not escape the argument
	header bool

	// FlushEveryRow pushes each row to the underlying writer as soon as
	// it is appended, so a tailing reader (sqlb-top -follow) sees rows
	// while the producer is still running. Off by default — batch exports
	// keep the bufio batching.
	FlushEveryRow bool
}

// NewCSVSink streams rows to w. If w is also an io.Closer, Close closes
// it after flushing.
func NewCSVSink(w io.Writer) *CSVSink {
	s := &CSVSink{w: bufio.NewWriter(w), buf: make([]byte, 0, 512)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// CreateCSV creates (or truncates) path and streams rows into it.
func CreateCSV(path string) (*CSVSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("timeline: %w", err)
	}
	return NewCSVSink(f), nil
}

// RepetitionPath derives the timeline file for repetition rep of a
// repeats-run batch from the user-supplied path: "out.csv" becomes
// "out.rep0.csv", "out.rep1.csv", … with the repetition number
// zero-padded to a fixed width so a directory listing sorts the files in
// repetition order at any repeats count. With repeats <= 1 the path is
// returned unchanged — a single run keeps the exact name the user asked
// for. The scheme is deterministic (a pure function of path, rep,
// repeats), which is what lets tests and tooling predict every file a
// batch will produce.
func RepetitionPath(path string, rep, repeats int) string {
	if repeats <= 1 {
		return path
	}
	width := len(strconv.Itoa(repeats - 1))
	ext := filepath.Ext(path)
	return fmt.Sprintf("%s.rep%0*d%s", strings.TrimSuffix(path, ext), width, rep, ext)
}

// Append writes one row (and the header before the first row).
func (s *CSVSink) Append(row Snapshot) error {
	if !s.header {
		s.header = true
		s.buf = s.buf[:0]
		s.buf = append(s.buf, "source"...)
		for _, f := range fields {
			s.buf = append(s.buf, ',')
			s.buf = append(s.buf, f.name...)
		}
		s.buf = append(s.buf, '\n')
		if _, err := s.w.Write(s.buf); err != nil {
			return err
		}
	}
	s.row = row
	s.buf = s.buf[:0]
	s.buf = append(s.buf, row.Source...)
	for i := range fields {
		s.buf = append(s.buf, ',')
		s.buf = strconv.AppendFloat(s.buf, fields[i].get(&s.row), 'g', -1, 64)
	}
	s.buf = append(s.buf, '\n')
	if _, err := s.w.Write(s.buf); err != nil {
		return err
	}
	if s.FlushEveryRow {
		return s.w.Flush()
	}
	return nil
}

// Flush pushes buffered rows to the underlying writer — the live-tailing
// path (sqlb-top following a file another process appends to) needs rows
// visible before Close.
func (s *CSVSink) Flush() error { return s.w.Flush() }

// Close flushes and closes the underlying writer if it is closable.
func (s *CSVSink) Close() error {
	err := s.w.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Decoder incrementally reads a timeline CSV stream back into snapshots.
// Columns are resolved by header name, so a decoder reads timelines
// recorded by older or newer schemas (unknown columns are skipped,
// missing ones stay zero). Partial trailing lines — a writer mid-row —
// are kept buffered until the newline arrives, which is what makes
// tailing a live file safe.
type Decoder struct {
	r       io.Reader
	partial []byte
	cols    []int // cols[i] = fields index of CSV column i+1 (-1 = skip)
	header  bool
	scratch [64]byte
}

// NewDecoder reads timeline CSV from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: r}
}

// Next returns the next complete row. io.EOF means "no complete row
// buffered right now" — for a growing file, call Next again after the
// producer appends more (the Tailer does exactly that).
func (d *Decoder) Next() (Snapshot, error) {
	for {
		line, err := d.readLine()
		if err != nil {
			return Snapshot{}, err
		}
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if !d.header {
			if err := d.parseHeader(line); err != nil {
				return Snapshot{}, err
			}
			continue
		}
		return d.parseRow(line)
	}
}

// readLine accumulates bytes until a newline, preserving any partial
// tail across calls.
func (d *Decoder) readLine() (string, error) {
	for {
		if i := indexByte(d.partial, '\n'); i >= 0 {
			line := string(d.partial[:i])
			d.partial = append(d.partial[:0], d.partial[i+1:]...)
			return line, nil
		}
		n, err := d.r.Read(d.scratch[:])
		if n > 0 {
			d.partial = append(d.partial, d.scratch[:n]...)
			continue
		}
		if err == nil {
			err = io.EOF
		}
		return "", err
	}
}

func indexByte(b []byte, c byte) int {
	for i, v := range b {
		if v == c {
			return i
		}
	}
	return -1
}

func (d *Decoder) parseHeader(line string) error {
	names := strings.Split(line, ",")
	if len(names) == 0 || names[0] != "source" {
		return fmt.Errorf("timeline: not a timeline CSV (header starts %q, want \"source\")", names[0])
	}
	d.cols = make([]int, len(names)-1)
	for i, name := range names[1:] {
		d.cols[i] = -1
		for fi, f := range fields {
			if f.name == name {
				d.cols[i] = fi
				break
			}
		}
	}
	d.header = true
	return nil
}

func (d *Decoder) parseRow(line string) (Snapshot, error) {
	var s Snapshot
	parts := strings.Split(line, ",")
	s.Source = parts[0]
	for i, p := range parts[1:] {
		if i >= len(d.cols) || d.cols[i] < 0 || p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return Snapshot{}, fmt.Errorf("timeline: bad value %q in column %q: %w", p, fields[d.cols[i]].name, err)
		}
		fields[d.cols[i]].set(&s, v)
	}
	return s, nil
}

// ReadCSV decodes a whole recorded timeline — the sqlb-top replay path.
func ReadCSV(r io.Reader) ([]Snapshot, error) {
	dec := NewDecoder(r)
	var out []Snapshot
	for {
		s, err := dec.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, s)
	}
}

// Tailer follows a timeline CSV file that another process is appending
// to: Poll drains every complete row written since the last call. It
// never blocks, so a render loop can poll on its own cadence.
type Tailer struct {
	f   *os.File
	dec *Decoder
}

// OpenTail opens path for tailing, starting from the beginning (so a
// recorded run replays fully before live rows arrive).
func OpenTail(path string) (*Tailer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("timeline: %w", err)
	}
	return &Tailer{f: f, dec: NewDecoder(f)}, nil
}

// Poll returns the complete rows appended since the previous Poll (nil
// when none).
func (t *Tailer) Poll() ([]Snapshot, error) {
	var out []Snapshot
	for {
		s, err := t.dec.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, s)
	}
}

// Close releases the file.
func (t *Tailer) Close() error { return t.f.Close() }

package timeline

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"unicode/utf8"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden dashboard frame")

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil, 10); got != "" {
		t.Errorf("empty series: %q", got)
	}
	if got := Sparkline([]float64{1, 2, 3}, 0); got != "" {
		t.Errorf("zero width: %q", got)
	}
	// Monotone series: levels must be non-decreasing, first lowest, last
	// highest.
	got := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if utf8.RuneCountInString(got) != 8 {
		t.Fatalf("width: %q", got)
	}
	runes := []rune(got)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("scaling endpoints: %q", got)
	}
	for i := 1; i < len(runes); i++ {
		if runeLevel(runes[i]) < runeLevel(runes[i-1]) {
			t.Errorf("non-monotone sparkline: %q", got)
		}
	}
	// Longer series than width: only the tail is shown.
	tail := Sparkline([]float64{100, 100, 100, 0, 1}, 2)
	if utf8.RuneCountInString(tail) != 2 {
		t.Errorf("tail windowing: %q", tail)
	}
	// A flat series renders as a low bar, not blanks.
	if got := Sparkline([]float64{5, 5, 5}, 3); got != "▁▁▁" {
		t.Errorf("flat series: %q", got)
	}
}

func runeLevel(r rune) int {
	for i, l := range sparkLevels {
		if l == r {
			return i
		}
	}
	return -1
}

func TestBar(t *testing.T) {
	if got := Bar(0.5, 1, 4); got != "[██··]" {
		t.Errorf("half bar: %q", got)
	}
	if got := Bar(2, 1, 4); got != "[████]" {
		t.Errorf("overflow clamps: %q", got)
	}
	if got := Bar(-1, 1, 4); got != "[····]" {
		t.Errorf("negative clamps: %q", got)
	}
	if got := Bar(1, 0, 4); got != "[····]" {
		t.Errorf("zero max: %q", got)
	}
}

func TestStripANSI(t *testing.T) {
	in := "\x1b[31;1mcrit\x1b[0m and \x1b[H\x1b[J\x1b[?25lplain"
	if got := StripANSI(in); got != "crit and plain" {
		t.Errorf("StripANSI = %q", got)
	}
}

// goldenWindow builds a deterministic 24-snapshot window shaped like a
// flash crowd: load and queue rise, satisfaction falls, a few drops late.
func goldenWindow() []Snapshot {
	win := make([]Snapshot, 24)
	for i := range win {
		t := float64(i+1) * 50
		ramp := float64(i) / 23
		win[i] = Snapshot{
			Time:             t,
			Source:           "sim",
			WorkloadFraction: 0.4 + 0.6*ramp,
			QPSIn:            120 + 200*ramp,
			QPSOut:           120 + 150*ramp,
			Dropped:          math.Floor(3 * ramp),
			QueueDepth:       math.Floor(40 * ramp),
			LatencyMean:      0.08 + 0.3*ramp,
			LatencyP50:       0.06 + 0.2*ramp,
			LatencyP95:       0.2 + 0.9*ramp,
			LatencyP99:       0.4 + 1.8*ramp,
			ProvSat:          0.72 - 0.2*ramp,
			ConsSat:          0.64 - 0.1*ramp,
			AllocSat:         0.97,
			SatFairness:      0.94 - 0.05*ramp,
			UtilMean:         0.45 + 0.5*ramp,
			UtilFairness:     0.9 - 0.1*ramp,
			UtilGini:         0.12 + 0.3*ramp,
			UtilClassLow:     0.3 + 0.65*ramp,
			UtilClassMed:     0.45 + 0.5*ramp,
			UtilClassHigh:    0.5 + 0.4*ramp,
			AliveProviders:   100 - math.Floor(6*ramp),
			AliveConsumers:   50,
			Departures:       math.Floor(6 * ramp),
			Joins:            1,
		}
	}
	return win
}

// TestDashboardGoldenFrame is the headless render smoke test: a fixed
// window renders at a fixed width, ANSI codes are stripped, and the plain
// text must match the checked-in golden frame byte for byte. Regenerate
// with `go test ./internal/timeline -run Golden -update` after deliberate
// layout changes.
func TestDashboardGoldenFrame(t *testing.T) {
	win := goldenWindow()
	d := &Dashboard{Width: 100, Color: true}
	frame := StripANSI(d.Frame(win, Assess(win)))

	golden := filepath.Join("testdata", "frame.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(frame), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden frame)", err)
	}
	if frame != string(want) {
		t.Errorf("frame drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", frame, want)
	}

	// Frame invariants that hold at any width: no line exceeds the frame
	// width, every frame carries the health verdict.
	for _, line := range strings.Split(strings.TrimRight(frame, "\n"), "\n") {
		if n := utf8.RuneCountInString(line); n > 100 {
			t.Errorf("line exceeds width (%d runes): %q", n, line)
		}
	}
	if !strings.Contains(frame, "health") {
		t.Error("frame is missing the health line")
	}
}

func TestDashboardEmptyWindow(t *testing.T) {
	d := &Dashboard{}
	frame := StripANSI(d.Frame(nil, Assess(nil)))
	if !strings.Contains(frame, "waiting for snapshots") {
		t.Errorf("empty frame = %q", frame)
	}
}

func TestDashboardColorToggle(t *testing.T) {
	win := goldenWindow()
	plain := (&Dashboard{Width: 100}).Frame(win, Assess(win))
	if strings.Contains(plain, "\x1b[") {
		t.Error("colorless frame contains escape sequences")
	}
	colored := (&Dashboard{Width: 100, Color: true}).Frame(win, Assess(win))
	if !strings.Contains(colored, "\x1b[") {
		t.Error("colored frame has no escape sequences")
	}
	if StripANSI(colored) != plain {
		t.Error("color must only add escapes, not change the text")
	}
}

func TestFmtSecs(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "    -  "},
		{5e-6, "  5.0µs"},
		{0.004, "  4.0ms"},
		{2.5, " 2.50s "},
	}
	for _, c := range cases {
		if got := fmtSecs(c.v); got != c.want {
			t.Errorf("fmtSecs(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

// Package timeline is the streaming observability layer: a unified
// Snapshot type over the simulator's §4 samples and the serving driver's
// interval reports, a bounded-memory Collector that aggregates snapshots
// on a fixed interval and fans them out to pluggable sinks, a streaming
// CSV sink/decoder pair (write rows as they are produced, tail them back
// live), a calculator that turns a snapshot window into health signals
// and threshold-based recommendations, and the ANSI dashboard renderer
// behind cmd/sqlb-top.
//
// The layer is strictly an observer: producers push copies of their state
// through Sink.Append and never read anything back, so enabling a
// timeline cannot perturb a run (sim.TestTimelineDeterminism pins the
// engine's Result byte-identical with and without a sink attached).
package timeline

// Snapshot is one observation interval of a running system — either one
// §4 metric sample of a simulation or one wall-clock interval of the
// serving driver. Fields a source cannot fill stay zero; the CSV codec,
// the aggregator, and the dashboard all work off the fields table below,
// so the three stay in sync by construction.
type Snapshot struct {
	// Time is the snapshot instant: sim-seconds for the simulator,
	// wall-clock seconds since Run for the serving driver.
	Time float64
	// Source labels the producer: "sim" or "serve".
	Source string

	// WorkloadFraction is the offered load as a fraction of total system
	// capacity (sim only; the serving driver's offered load is QPSIn).
	WorkloadFraction float64
	// QPSIn and QPSOut are the arrival and completion rates over the
	// interval (issued/completed for sim, submitted/mediated for serving).
	QPSIn  float64
	QPSOut float64
	// Dropped, Rejected, and Errors count interval events: queries no
	// provider could take, admission-control rejections (ErrOverloaded;
	// serving only), and wiring errors.
	Dropped  float64
	Rejected float64
	Errors   float64
	// QueueDepth is the instantaneous backlog: queries in flight on the
	// providers for sim, submit-queue occupancy for serving.
	QueueDepth float64

	// LatencyMean is the mean response/mediation latency over the
	// interval; the quantiles are cumulative over the run so far (cutting
	// per-interval quantiles would need a histogram per interval).
	LatencyMean float64
	LatencyP50  float64
	LatencyP95  float64
	LatencyP99  float64

	// ProvSat, ConsSat, and AllocSat are the mean provider satisfaction
	// δs(p), consumer satisfaction δs(c), and provider allocation
	// satisfaction δas(p) over the alive participants.
	ProvSat  float64
	ConsSat  float64
	AllocSat float64
	// SatFairness is the Jain fairness of provider satisfaction.
	SatFairness float64

	// UtilMean/UtilFairness/UtilGini summarize Ut(p) over the alive
	// providers; Gini is the imbalance gauge the dashboard renders.
	UtilMean     float64
	UtilFairness float64
	UtilGini     float64
	// UtilClassLow/Med/High are the mean utilizations per provider
	// capacity class — the dashboard's per-class bars.
	UtilClassLow  float64
	UtilClassMed  float64
	UtilClassHigh float64

	// AliveProviders and AliveConsumers count the remaining participants;
	// Departures and Joins are the cumulative churn ledgers.
	AliveProviders float64
	AliveConsumers float64
	Departures     float64
	Joins          float64
}

// aggKind says how a field folds when several raw snapshots aggregate
// into one interval row.
type aggKind int

const (
	aggMean aggKind = iota // gauges: average over the bucket
	aggSum                 // interval deltas: add up
	aggLast                // cumulative counters and levels: last wins
	aggMax                 // peaks: the worst instant of the bucket
)

// field is one Snapshot column: its CSV header name, accessor, and
// aggregation rule.
type field struct {
	name string
	get  func(*Snapshot) float64
	set  func(*Snapshot, float64)
	agg  aggKind
}

// fields is the single source of truth for the Snapshot schema. Order is
// the CSV column order; append new fields at the end so recorded
// timelines stay readable by column name.
var fields = []field{
	{"time", func(s *Snapshot) float64 { return s.Time }, func(s *Snapshot, v float64) { s.Time = v }, aggLast},
	{"workload", func(s *Snapshot) float64 { return s.WorkloadFraction }, func(s *Snapshot, v float64) { s.WorkloadFraction = v }, aggMean},
	{"qps_in", func(s *Snapshot) float64 { return s.QPSIn }, func(s *Snapshot, v float64) { s.QPSIn = v }, aggMean},
	{"qps_out", func(s *Snapshot) float64 { return s.QPSOut }, func(s *Snapshot, v float64) { s.QPSOut = v }, aggMean},
	{"dropped", func(s *Snapshot) float64 { return s.Dropped }, func(s *Snapshot, v float64) { s.Dropped = v }, aggSum},
	{"rejected", func(s *Snapshot) float64 { return s.Rejected }, func(s *Snapshot, v float64) { s.Rejected = v }, aggSum},
	{"errors", func(s *Snapshot) float64 { return s.Errors }, func(s *Snapshot, v float64) { s.Errors = v }, aggSum},
	{"queue_depth", func(s *Snapshot) float64 { return s.QueueDepth }, func(s *Snapshot, v float64) { s.QueueDepth = v }, aggMax},
	{"latency_mean", func(s *Snapshot) float64 { return s.LatencyMean }, func(s *Snapshot, v float64) { s.LatencyMean = v }, aggMean},
	{"latency_p50", func(s *Snapshot) float64 { return s.LatencyP50 }, func(s *Snapshot, v float64) { s.LatencyP50 = v }, aggLast},
	{"latency_p95", func(s *Snapshot) float64 { return s.LatencyP95 }, func(s *Snapshot, v float64) { s.LatencyP95 = v }, aggLast},
	{"latency_p99", func(s *Snapshot) float64 { return s.LatencyP99 }, func(s *Snapshot, v float64) { s.LatencyP99 = v }, aggLast},
	{"prov_sat", func(s *Snapshot) float64 { return s.ProvSat }, func(s *Snapshot, v float64) { s.ProvSat = v }, aggMean},
	{"cons_sat", func(s *Snapshot) float64 { return s.ConsSat }, func(s *Snapshot, v float64) { s.ConsSat = v }, aggMean},
	{"alloc_sat", func(s *Snapshot) float64 { return s.AllocSat }, func(s *Snapshot, v float64) { s.AllocSat = v }, aggMean},
	{"sat_fairness", func(s *Snapshot) float64 { return s.SatFairness }, func(s *Snapshot, v float64) { s.SatFairness = v }, aggMean},
	{"util_mean", func(s *Snapshot) float64 { return s.UtilMean }, func(s *Snapshot, v float64) { s.UtilMean = v }, aggMean},
	{"util_fairness", func(s *Snapshot) float64 { return s.UtilFairness }, func(s *Snapshot, v float64) { s.UtilFairness = v }, aggMean},
	{"util_gini", func(s *Snapshot) float64 { return s.UtilGini }, func(s *Snapshot, v float64) { s.UtilGini = v }, aggMean},
	{"util_class_low", func(s *Snapshot) float64 { return s.UtilClassLow }, func(s *Snapshot, v float64) { s.UtilClassLow = v }, aggMean},
	{"util_class_med", func(s *Snapshot) float64 { return s.UtilClassMed }, func(s *Snapshot, v float64) { s.UtilClassMed = v }, aggMean},
	{"util_class_high", func(s *Snapshot) float64 { return s.UtilClassHigh }, func(s *Snapshot, v float64) { s.UtilClassHigh = v }, aggMean},
	{"alive_providers", func(s *Snapshot) float64 { return s.AliveProviders }, func(s *Snapshot, v float64) { s.AliveProviders = v }, aggLast},
	{"alive_consumers", func(s *Snapshot) float64 { return s.AliveConsumers }, func(s *Snapshot, v float64) { s.AliveConsumers = v }, aggLast},
	{"departures", func(s *Snapshot) float64 { return s.Departures }, func(s *Snapshot, v float64) { s.Departures = v }, aggLast},
	{"joins", func(s *Snapshot) float64 { return s.Joins }, func(s *Snapshot, v float64) { s.Joins = v }, aggLast},
}

// Sink consumes a stream of snapshots. Append is called from the
// producer's snapshot path (the sim event loop, the serving snapshot
// goroutine), so implementations should be cheap and must not call back
// into the producer. Close flushes and releases resources; no Append
// follows a Close.
type Sink interface {
	Append(s Snapshot) error
	Close() error
}

// SinkFunc adapts a function to the Sink interface (Close is a no-op) —
// the in-process hook tests and embedders use.
type SinkFunc func(s Snapshot) error

// Append calls f.
func (f SinkFunc) Append(s Snapshot) error { return f(s) }

// Close is a no-op.
func (f SinkFunc) Close() error { return nil }

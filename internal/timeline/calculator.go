package timeline

import "fmt"

// Health levels, ordered by severity.
const (
	LevelOK   = "ok"
	LevelWarn = "warn"
	LevelCrit = "crit"
)

// Thresholds the calculator judges a snapshot window against. Exported
// so the dashboard and tests state them once; the defaults follow the
// behaviours the experiment book records (providers flee past ~220% of
// optimal utilization, satisfaction collapse precedes departure
// cascades).
const (
	// SaturationUtil is the mean utilization above which the fleet is
	// considered saturated (queues grow without bound past 1.0).
	SaturationUtil = 0.95
	// StarvationUtil is the mean utilization below which a loaded system
	// is leaving capacity idle.
	StarvationUtil = 0.15
	// ImbalanceGini is the utilization Gini above which load is
	// considered imbalanced across providers.
	ImbalanceGini = 0.35
	// RejectRateWarn and DropRateWarn are the fractions of incoming
	// queries rejected (admission control) or dropped (no capable
	// provider) that trigger a recommendation.
	RejectRateWarn = 0.01
	DropRateWarn   = 0.01
	// SatTrendWarn is the per-window satisfaction drop that reads as
	// "degrading": mean provider δs falling by more than this across the
	// visible window.
	SatTrendWarn = 0.05
)

// Health is the calculator's digest of a snapshot window: the gauges the
// dashboard renders plus threshold-based recommendations, most severe
// first — the snapshot→calculator→TUI stage after epm-go.
type Health struct {
	// Level is the overall verdict: ok, warn, or crit.
	Level string
	// UtilMean and Imbalance are the latest utilization mean and Gini.
	UtilMean  float64
	Imbalance float64
	// SatTrend is the change of mean provider satisfaction across the
	// window (last − first of a least-squares fit; negative = degrading).
	SatTrend float64
	// DropRate and RejectRate are window totals over window arrivals.
	DropRate   float64
	RejectRate float64
	// Recommendations are the triggered advice lines (empty = healthy).
	Recommendations []string
}

// Assess digests a snapshot window (oldest first, as Collector.Window
// returns it) into health signals and recommendations.
func Assess(window []Snapshot) Health {
	var h Health
	h.Level = LevelOK
	if len(window) == 0 {
		return h
	}
	last := window[len(window)-1]
	h.UtilMean = last.UtilMean
	h.Imbalance = last.UtilGini
	h.SatTrend = satTrend(window)

	var in, dropped, rejected float64
	for i := range window {
		// QPSIn is a rate; scale back to a count by the span each
		// snapshot covers so rates and deltas mix correctly.
		in += window[i].QPSIn * span(window, i)
		dropped += window[i].Dropped
		rejected += window[i].Rejected
	}
	if in > 0 {
		h.DropRate = dropped / in
		h.RejectRate = rejected / in
	}

	warn := func(format string, args ...any) {
		h.Recommendations = append(h.Recommendations, fmt.Sprintf(format, args...))
		if h.Level == LevelOK {
			h.Level = LevelWarn
		}
	}
	crit := func(format string, args ...any) {
		h.Recommendations = append(h.Recommendations, fmt.Sprintf(format, args...))
		h.Level = LevelCrit
	}

	if h.UtilMean > SaturationUtil {
		crit("providers saturated (util %.2f): add capacity, lower the offered load, or expect overutilization departures", h.UtilMean)
	}
	if h.RejectRate > RejectRateWarn {
		crit("admission control rejecting %.1f%% of arrivals: raise -queue/-workers/-batch or lower -qps", 100*h.RejectRate)
	}
	if h.DropRate > DropRateWarn {
		warn("%.1f%% of queries dropped: some classes have no alive capable provider — check selectivity and churn", 100*h.DropRate)
	}
	if h.Imbalance > ImbalanceGini {
		warn("utilization imbalance (gini %.2f): load concentrates on few providers — review the allocation method", h.Imbalance)
	}
	if h.SatTrend < -SatTrendWarn {
		warn("provider satisfaction falling (%+.3f over window): departure cascade risk under autonomy", h.SatTrend)
	}
	if h.UtilMean < StarvationUtil && last.QPSIn > 0 && h.Level == LevelOK {
		warn("fleet underutilized (util %.2f): capacity far exceeds offered load", h.UtilMean)
	}
	return h
}

// satTrend fits mean provider satisfaction over time by least squares and
// returns the fitted change across the window — robust to single-sample
// noise, unlike last-minus-first.
func satTrend(window []Snapshot) float64 {
	if len(window) < 2 {
		return 0
	}
	var sumT, sumV, sumTT, sumTV float64
	for i := range window {
		t, v := window[i].Time, window[i].ProvSat
		sumT += t
		sumV += v
		sumTT += t * t
		sumTV += t * v
	}
	n := float64(len(window))
	den := n*sumTT - sumT*sumT
	if den == 0 {
		return 0
	}
	slope := (n*sumTV - sumT*sumV) / den
	return slope * (window[len(window)-1].Time - window[0].Time)
}

// span estimates the time covered by window[i]: the gap to its
// predecessor, or to its successor for the first snapshot.
func span(window []Snapshot, i int) float64 {
	switch {
	case i > 0:
		return window[i].Time - window[i-1].Time
	case len(window) > 1:
		return window[1].Time - window[0].Time
	default:
		return 1
	}
}

package allocator

import (
	"sqlb/internal/core"
	"sqlb/internal/randx"
)

// CapacityBased is the classic query-load-balancing baseline (Section
// 6.2.1, refs [13,18,21]): each query goes to the providers with the
// highest available capacity, i.e. the least utilized, with no regard for
// anyone's intentions. Ties break on the larger capacity (more headroom)
// and then on the provider ID, keeping allocations deterministic.
type CapacityBased struct{}

// NewCapacityBased returns the Capacity-based baseline.
func NewCapacityBased() *CapacityBased { return &CapacityBased{} }

// Name implements Allocator.
func (*CapacityBased) Name() string { return "Capacity based" }

// Allocate implements Allocator.
func (*CapacityBased) Allocate(req *Request) []int {
	utils := req.Scratch.F1(len(req.Pq))
	for i, p := range req.Pq {
		utils[i] = p.Utilization(req.Now)
	}
	return core.SelectTopNScratch(req.Scratch, len(req.Pq), req.N(), func(a, b int) bool {
		if utils[a] != utils[b] {
			return utils[a] < utils[b]
		}
		if req.Pq[a].Capacity != req.Pq[b].Capacity {
			return req.Pq[a].Capacity > req.Pq[b].Capacity
		}
		return a < b
	})
}

// MariposaLike is the economic baseline of Section 6.2.2, modelled on
// Mariposa [22]: a broker requests bids, each provider bids a price that
// reflects how much it wants the query (more-adapted providers bid
// cheaper), the bid is adjusted by the provider's current load ("bid ×
// load" — Mariposa's crude form of load balancing), and the broker takes
// the cheapest adjusted bids. The load factor is floored so an idle
// provider's bid stays comparable rather than collapsing to zero, and the
// backlog only registers over a long horizon — the crudeness the paper
// observes: queries concentrate on the most-adapted providers until their
// queues are already severe, which is what overutilizes them (Table 3).
type MariposaLike struct {
	// MinLoadFactor floors the load multiplier (default 0.5). Keeping the
	// floor high makes the balancing crude: an idle provider's bid is
	// discounted at most 2×, so a cheap (well-adapted) provider keeps
	// winning until its overload outweighs its price advantage — the
	// concentration that overutilizes adapted providers in Table 3. A low
	// floor would instead turn the scheme into an aggressive balancer.
	MinLoadFactor float64
	// LoadHorizon is the backlog horizon (seconds) after which a queue
	// inflates the bid as strongly as rate saturation does (default 60 —
	// sluggish on purpose; compare model.Config.LoadHorizon, which is 3:
	// Mariposa providers only repel queries once their queue is a minute
	// deep, so the adapted ones run far past capacity for long stretches).
	LoadHorizon float64
}

// NewMariposaLike returns the Mariposa-like baseline with defaults.
func NewMariposaLike() *MariposaLike { return &MariposaLike{MinLoadFactor: 0.5, LoadHorizon: 60} }

// Name implements Allocator.
func (*MariposaLike) Name() string { return "Mariposa-like" }

// Bid returns the provider's raw price for the query: linear in how little
// it wants the query, kept strictly positive. Preference 1 bids 0.1,
// preference -1 bids 1.1.
func (m *MariposaLike) Bid(pref float64) float64 {
	return (1-pref)/2 + 0.1
}

// Allocate implements Allocator.
func (m *MariposaLike) Allocate(req *Request) []int {
	minLoad := m.MinLoadFactor
	if minLoad <= 0 {
		minLoad = 0.5
	}
	horizon := m.LoadHorizon
	if horizon <= 0 {
		horizon = 60
	}
	bids := req.Scratch.F1(len(req.Pq))
	for i, p := range req.Pq {
		pref := p.Preference(req.Query.Class)
		load := p.Utilization(req.Now)
		if b := p.Backlog(req.Now) / horizon; b > load {
			load = b
		}
		if load < minLoad {
			load = minLoad
		}
		bids[i] = m.Bid(pref) * load
	}
	return core.SelectTopNScratch(req.Scratch, len(req.Pq), req.N(), func(a, b int) bool {
		if bids[a] != bids[b] {
			return bids[a] < bids[b]
		}
		return a < b
	})
}

// Random allocates uniformly at random; a control strategy for tests and
// ablations, not part of the paper's comparison.
type Random struct {
	rng *randx.Rand
}

// NewRandom returns a Random allocator seeded deterministically.
func NewRandom(seed uint64) *Random { return &Random{rng: randx.New(seed)} }

// Name implements Allocator.
func (*Random) Name() string { return "Random" }

// Allocate implements Allocator.
func (r *Random) Allocate(req *Request) []int {
	n := req.N()
	perm := r.rng.Perm(len(req.Pq))
	return perm[:n]
}

package allocator

import (
	"math"
	"sort"
	"testing"

	"sqlb/internal/core"
	"sqlb/internal/model"
	"sqlb/internal/randx"
)

// Property tests: every allocator's partial top-n selection must agree
// exactly with a naive reference oracle that fully stable-sorts the same
// keys, across randomized Pq sizes, scores (quantized to force ties),
// loads, and the boundary counts q.n ∈ {0, 1, |Pq|, |Pq|+5}.

// randomRequest builds a population of the given size with randomized
// intentions, satisfactions, and provider loads. Intentions are quantized
// so that score ties actually occur.
func randomRequest(t *testing.T, rng *randx.Rand, providers, n int) *Request {
	t.Helper()
	cfg := model.DefaultConfig()
	cfg.Consumers = 2
	cfg.Providers = providers
	pop := model.NewPopulation(cfg, randx.New(rng.Uint64()), 0)
	q := &model.Query{ID: 1, Consumer: pop.Consumers[0], Class: rng.Pick(len(pop.Classes)), Units: 130, N: n}
	np := len(pop.Providers)
	req := &Request{
		Query:       q,
		Pq:          pop.Providers,
		CI:          make([]float64, np),
		PI:          make([]float64, np),
		ConsumerSat: math.Round(rng.Float64()*4) / 4,
		ProviderSat: make([]float64, np),
		Now:         rng.Uniform(0, 50),
	}
	for i, p := range pop.Providers {
		req.CI[i] = math.Round(rng.Uniform(-1, 1)*4) / 4
		req.PI[i] = math.Round(rng.Uniform(-1, 1)*4) / 4
		req.ProviderSat[i] = math.Round(rng.Float64()*4) / 4
		if rng.Bool(0.5) {
			p.Assign(rng.Uniform(0, req.Now), rng.Uniform(50, 500))
		}
	}
	return req
}

// oracleOrder fully stable-sorts provider indexes under less — the
// pre-partial-selection reference behaviour.
func oracleOrder(total int, less func(a, b int) bool) []int {
	idx := make([]int, total)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return less(idx[a], idx[b]) })
	return idx
}

func sqlbOmegas(req *Request, fixed *float64) []float64 {
	om := make([]float64, len(req.Pq))
	for i := range om {
		if fixed != nil {
			om[i] = *fixed
		} else {
			om[i] = core.Omega(req.ConsumerSat, req.ProviderSat[i])
		}
	}
	return om
}

// oracleSQLB re-implements SQLB.Allocate with a full stable sort over
// Definition 9 scores.
func oracleSQLB(req *Request, fixed *float64) []int {
	om := sqlbOmegas(req, fixed)
	scores := make([]float64, len(req.Pq))
	for i := range scores {
		scores[i] = core.Score(req.PI[i], req.CI[i], om[i], core.DefaultEpsilon)
	}
	order := oracleOrder(len(req.Pq), func(a, b int) bool {
		if scores[a] != scores[b] {
			return scores[a] > scores[b]
		}
		return a < b
	})
	return order[:req.N()]
}

// oracleCapacity re-implements CapacityBased.Allocate with a full sort.
func oracleCapacity(req *Request) []int {
	order := oracleOrder(len(req.Pq), func(a, b int) bool {
		ua, ub := req.Pq[a].Utilization(req.Now), req.Pq[b].Utilization(req.Now)
		if ua != ub {
			return ua < ub
		}
		if req.Pq[a].Capacity != req.Pq[b].Capacity {
			return req.Pq[a].Capacity > req.Pq[b].Capacity
		}
		return a < b
	})
	return order[:req.N()]
}

// oracleMariposa re-implements MariposaLike.Allocate with a full sort.
func oracleMariposa(req *Request, m *MariposaLike) []int {
	bids := make([]float64, len(req.Pq))
	for i, p := range req.Pq {
		load := p.Utilization(req.Now)
		if b := p.Backlog(req.Now) / 60; b > load {
			load = b
		}
		if load < 0.5 {
			load = 0.5
		}
		bids[i] = m.Bid(p.Preference(req.Query.Class)) * load
	}
	order := oracleOrder(len(req.Pq), func(a, b int) bool {
		if bids[a] != bids[b] {
			return bids[a] < bids[b]
		}
		return a < b
	})
	return order[:req.N()]
}

// oracleEconomic re-implements SQLBEconomic.Allocate with a full sort.
func oracleEconomic(req *Request) []int {
	values := make([]float64, len(req.Pq))
	for i := range req.Pq {
		om := core.Omega(req.ConsumerSat, req.ProviderSat[i])
		values[i] = om*req.PI[i] + (1-om)*req.CI[i]
	}
	order := oracleOrder(len(req.Pq), func(a, b int) bool {
		if values[a] != values[b] {
			return values[a] > values[b]
		}
		return a < b
	})
	return order[:req.N()]
}

// oracleKnBest re-implements KnBest.Allocate: full score sort, keep k·n,
// full load sort, keep n.
func oracleKnBest(req *Request, factor int) []int {
	om := sqlbOmegas(req, nil)
	full := core.Rank(req.PI, req.CI, om, 0)
	kn := req.N() * factor
	if kn > len(full) {
		kn = len(full)
	}
	short := full[:kn]
	order := oracleOrder(len(short), func(a, b int) bool {
		ua := req.Pq[short[a].Index].OperationalLoad(req.Now)
		ub := req.Pq[short[b].Index].OperationalLoad(req.Now)
		if ua != ub {
			return ua < ub
		}
		return short[a].Index < short[b].Index
	})
	out := make([]int, 0, req.N())
	for i := 0; i < req.N() && i < len(order); i++ {
		out = append(out, short[order[i]].Index)
	}
	return out
}

func checkAgainstOracle(t *testing.T, name string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: selected %v, oracle %v", name, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: selected %v, oracle %v", name, got, want)
		}
	}
}

func TestAllocatorsAgreeWithFullSortOracle(t *testing.T) {
	rng := randx.New(31)
	for trial := 0; trial < 60; trial++ {
		providers := 1 + rng.Pick(40)
		for _, qn := range []int{0, 1, providers, providers + 5} {
			req := randomRequest(t, rng, providers, qn)
			fixed := 0.25
			checkAgainstOracle(t, "SQLB",
				NewSQLB().Allocate(req), oracleSQLB(req, nil))
			checkAgainstOracle(t, "SQLB(fixed-omega)",
				NewSQLBFixedOmega(fixed).Allocate(req), oracleSQLB(req, &fixed))
			checkAgainstOracle(t, "Capacity based",
				NewCapacityBased().Allocate(req), oracleCapacity(req))
			checkAgainstOracle(t, "Mariposa-like",
				NewMariposaLike().Allocate(req), oracleMariposa(req, NewMariposaLike()))
			checkAgainstOracle(t, "SQLB-econ",
				NewSQLBEconomic().Allocate(req), oracleEconomic(req))
			checkAgainstOracle(t, "KnBest",
				NewKnBest().Allocate(req), oracleKnBest(req, 3))
		}
	}
}

// TestAllocatorPermutationInvariance: reordering Pq (and the parallel
// intention/satisfaction slices) must select the same providers — up to
// the documented lower-index tiebreak, which the all-distinct keys of this
// fixture never exercise — regardless of their positions.
func TestAllocatorPermutationInvariance(t *testing.T) {
	rng := randx.New(33)
	for trial := 0; trial < 40; trial++ {
		providers := 2 + rng.Pick(30)
		qn := 1 + rng.Pick(providers)
		req := randomRequest(t, rng, providers, qn)
		// Distinct continuous draws so no tiebreaks fire — including the
		// provider-side keys (class preference feeding Mariposa bids, fresh
		// load feeding utilization), which the population otherwise draws
		// from discrete bands that tie.
		for i, p := range req.Pq {
			req.CI[i] = rng.Uniform(-1, 1)
			req.PI[i] = rng.Uniform(-1, 1)
			req.ProviderSat[i] = rng.Float64()
			p.SetPreference(req.Query.Class, rng.Uniform(-1, 1))
			p.Assign(req.Now-1, rng.Uniform(50, 500))
		}

		perm := rng.Perm(providers)
		permuted := &Request{
			Query:       req.Query,
			Pq:          make([]*model.Provider, providers),
			CI:          make([]float64, providers),
			PI:          make([]float64, providers),
			ConsumerSat: req.ConsumerSat,
			ProviderSat: make([]float64, providers),
			Now:         req.Now,
		}
		for i, p := range perm {
			permuted.Pq[i] = req.Pq[p]
			permuted.CI[i] = req.CI[p]
			permuted.PI[i] = req.PI[p]
			permuted.ProviderSat[i] = req.ProviderSat[p]
		}

		for _, a := range []Allocator{
			NewSQLB(), NewCapacityBased(), NewMariposaLike(), NewSQLBEconomic(),
		} {
			base := a.Allocate(req)
			moved := a.Allocate(permuted)
			baseIDs := make([]int, len(base))
			for i, idx := range base {
				baseIDs[i] = req.Pq[idx].ID
			}
			movedIDs := make([]int, len(moved))
			for i, idx := range moved {
				movedIDs[i] = permuted.Pq[idx].ID
			}
			sort.Ints(baseIDs)
			sort.Ints(movedIDs)
			checkAgainstOracle(t, a.Name()+" permutation", movedIDs, baseIDs)
		}
	}
}

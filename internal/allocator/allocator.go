// Package allocator defines the query-allocation strategy interface of the
// mediator and implements the methods compared in the paper's evaluation
// (Section 6.2): SQLB itself, the Capacity-based baseline (allocate to the
// least-utilized providers), and the Mariposa-like economic baseline
// (bid × load broker). It also provides a Random control used in tests and
// two extensions the paper flags as related/future work: a KnBest-style
// strategy (ref [17]) and an economic SQLB variant whose bids are computed
// from intentions (Section 7).
package allocator

import (
	"sqlb/internal/core"
	"sqlb/internal/model"
)

// Request carries everything a strategy may consult for one allocation:
// the query, the matchmade provider set Pq, the expressed intentions, and
// the mediator-observed (intention-based) satisfactions that Equation 6
// uses. Strategies that ignore intentions (Capacity-based) simply do not
// read those fields.
type Request struct {
	// Query is the query to allocate.
	Query *model.Query
	// Pq is the set of providers able to treat the query.
	Pq []*model.Provider
	// CI[i] is the consumer's expressed intention for allocating the query
	// to Pq[i] (Definition 7, clamped to [-1,1]).
	CI []float64
	// PI[i] is Pq[i]'s expressed intention for performing the query
	// (Definition 8, clamped to [-1,1]).
	PI []float64
	// ConsumerSat is the mediator-observed, intention-based δs(q.c).
	ConsumerSat float64
	// ProviderSat[i] is the mediator-observed, intention-based δs(Pq[i]).
	ProviderSat []float64
	// Now is the current simulation time (drives utilization reads).
	Now float64
	// Scratch, when non-nil, lends the strategy reusable buffers for its
	// intermediate vectors so steady-state allocation is zero (the mediator
	// wires its own scratch through every request). Strategies must treat
	// it per the core.Scratch buffer contract; the selected set they return
	// may be carved from it and is then valid only until the next
	// allocation on the same mediator. A nil Scratch keeps the historical
	// allocate-per-call behaviour — external callers building a Request by
	// hand need not care.
	Scratch *core.Scratch
}

// N returns min(q.n, |Pq|), the number of providers to select.
func (r *Request) N() int {
	n := 1
	if r.Query != nil && r.Query.N > 0 {
		n = r.Query.N
	}
	if n > len(r.Pq) {
		n = len(r.Pq)
	}
	return n
}

// Allocator is a query-allocation strategy: given a request it returns the
// indexes (into Pq) of the providers that get the query, best first. An
// implementation must return min(q.n, |Pq|) distinct indexes whenever Pq is
// non-empty (queries are treated if at all possible, Section 2).
type Allocator interface {
	// Name identifies the method in reports ("SQLB", "Capacity based", …).
	Name() string
	// Allocate selects the providers for the request.
	Allocate(req *Request) []int
}

package allocator

import (
	"sqlb/internal/core"
)

// SQLB is the paper's Satisfaction-based Query Load Balancing method
// (Section 5): providers are scored by Definition 9 with the per-provider
// adaptive ω of Equation 6 and the q.n best-scored are selected
// (Algorithm 1).
type SQLB struct {
	// Epsilon is ε of Definition 9; 0 means core.DefaultEpsilon.
	Epsilon float64
	// FixedOmega, when non-nil, overrides Equation 6 with a constant ω —
	// the paper's note that ω can be set by application kind (e.g. ω = 0
	// for cooperative providers where only result quality matters). Used
	// by the ablation benchmarks.
	FixedOmega *float64
}

// NewSQLB returns the adaptive-ω SQLB method with the default ε.
func NewSQLB() *SQLB { return &SQLB{} }

// NewSQLBFixedOmega returns an SQLB variant with a constant ω ∈ [0,1].
func NewSQLBFixedOmega(omega float64) *SQLB {
	return &SQLB{FixedOmega: &omega}
}

// Name implements Allocator.
func (s *SQLB) Name() string {
	if s.FixedOmega != nil {
		return "SQLB(fixed-omega)"
	}
	return "SQLB"
}

// Allocate implements Allocator with the scoring/ranking/selection steps of
// Algorithm 1 (the intention collection, lines 2-5, happens in the mediator
// before this call). Only the q.n best-ranked providers are materialized
// (core.RankTop) — the full R⃗_q is never built on this hot path.
func (s *SQLB) Allocate(req *Request) []int {
	omegas := req.Scratch.F1(len(req.Pq))
	for i := range omegas {
		if s.FixedOmega != nil {
			omegas[i] = *s.FixedOmega
		} else {
			sat := 0.0
			if i < len(req.ProviderSat) {
				sat = req.ProviderSat[i]
			}
			omegas[i] = core.Omega(req.ConsumerSat, sat)
		}
	}
	ranking := core.RankTopScratch(req.Scratch, req.N(), req.PI, req.CI, omegas, s.Epsilon)
	return core.SelectScratch(req.Scratch, req.N(), ranking)
}

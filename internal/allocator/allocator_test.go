package allocator

import (
	"testing"

	"sqlb/internal/model"
	"sqlb/internal/randx"
)

// testPop builds a small deterministic population for allocator tests.
func testPop(t *testing.T, providers int) *model.Population {
	t.Helper()
	cfg := model.DefaultConfig()
	cfg.Consumers = 2
	cfg.Providers = providers
	pop := model.NewPopulation(cfg, randx.New(99), 0)
	return pop
}

func testRequest(pop *model.Population, n int) *Request {
	q := &model.Query{ID: 1, Consumer: pop.Consumers[0], Class: 0, Units: 130, N: n}
	np := len(pop.Providers)
	req := &Request{
		Query:       q,
		Pq:          pop.Providers,
		CI:          make([]float64, np),
		PI:          make([]float64, np),
		ConsumerSat: 0.5,
		ProviderSat: make([]float64, np),
		Now:         10,
	}
	for i := range req.ProviderSat {
		req.ProviderSat[i] = 0.5
	}
	return req
}

func TestRequestN(t *testing.T) {
	pop := testPop(t, 4)
	if got := testRequest(pop, 2).N(); got != 2 {
		t.Errorf("N = %d, want 2", got)
	}
	if got := testRequest(pop, 9).N(); got != 4 {
		t.Errorf("N capped = %d, want 4 (|Pq|)", got)
	}
	if got := testRequest(pop, 0).N(); got != 1 {
		t.Errorf("N floor = %d, want 1", got)
	}
	empty := &Request{Query: &model.Query{N: 3}}
	if got := empty.N(); got != 0 {
		t.Errorf("N over empty Pq = %d, want 0", got)
	}
}

func TestSQLBPrefersMutualIntention(t *testing.T) {
	pop := testPop(t, 3)
	req := testRequest(pop, 1)
	req.PI = []float64{0.9, -0.5, 0.9}
	req.CI = []float64{-0.5, 0.9, 0.9}
	got := NewSQLB().Allocate(req)
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("SQLB selected %v, want [2] (the mutually-wanted provider)", got)
	}
}

func TestSQLBAdaptiveOmegaFavorsLessSatisfiedSide(t *testing.T) {
	pop := testPop(t, 2)
	req := testRequest(pop, 1)
	// Provider 0: provider loves it, consumer mildly dislikes.
	// Provider 1: consumer loves it, provider mildly dislikes.
	req.PI = []float64{0.9, 0.3}
	req.CI = []float64{0.3, 0.9}
	// Dissatisfied providers, happy consumer → ω near 1 → provider
	// intentions dominate → provider 0 wins.
	req.ConsumerSat = 1
	req.ProviderSat = []float64{0, 0}
	if got := NewSQLB().Allocate(req); got[0] != 0 {
		t.Errorf("ω→1 should favor provider intentions, selected %v", got)
	}
	// Satisfied providers, miserable consumer → ω near 0 → consumer
	// intentions dominate → provider 1 wins.
	req.ConsumerSat = 0
	req.ProviderSat = []float64{1, 1}
	if got := NewSQLB().Allocate(req); got[0] != 1 {
		t.Errorf("ω→0 should favor consumer intentions, selected %v", got)
	}
}

func TestSQLBFixedOmega(t *testing.T) {
	pop := testPop(t, 2)
	req := testRequest(pop, 1)
	req.PI = []float64{0.9, 0.3}
	req.CI = []float64{0.3, 0.9}
	// ω = 0: only the consumer's view counts (the cooperative-provider
	// setting from Section 5.3).
	if got := NewSQLBFixedOmega(0).Allocate(req); got[0] != 1 {
		t.Errorf("fixed ω=0 should select the consumer favorite, got %v", got)
	}
	if got := NewSQLBFixedOmega(1).Allocate(req); got[0] != 0 {
		t.Errorf("fixed ω=1 should select the provider favorite, got %v", got)
	}
	if name := NewSQLBFixedOmega(0).Name(); name != "SQLB(fixed-omega)" {
		t.Errorf("unexpected name %q", name)
	}
}

func TestSQLBSelectsRequestedCount(t *testing.T) {
	pop := testPop(t, 5)
	req := testRequest(pop, 3)
	req.PI = []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	req.CI = []float64{0.5, 0.4, 0.3, 0.2, 0.1}
	got := NewSQLB().Allocate(req)
	if len(got) != 3 {
		t.Fatalf("selected %d providers, want 3", len(got))
	}
	seen := map[int]bool{}
	for _, idx := range got {
		if idx < 0 || idx >= 5 || seen[idx] {
			t.Fatalf("invalid selection %v", got)
		}
		seen[idx] = true
	}
}

func TestCapacityBasedPicksLeastUtilized(t *testing.T) {
	pop := testPop(t, 3)
	// Load providers 0 and 1; leave 2 idle.
	pop.Providers[0].Assign(0, 500)
	pop.Providers[1].Assign(0, 200)
	req := testRequest(pop, 1)
	got := NewCapacityBased().Allocate(req)
	if got[0] != 2 {
		t.Errorf("capacity-based selected %v, want idle provider 2", got)
	}
	if NewCapacityBased().Name() != "Capacity based" {
		t.Error("unexpected name")
	}
}

func TestCapacityBasedTieBreaksOnCapacity(t *testing.T) {
	pop := testPop(t, 6)
	req := testRequest(pop, 1)
	// All idle (Ut = 0): the biggest capacity must win.
	got := NewCapacityBased().Allocate(req)
	best := pop.Providers[got[0]]
	for _, p := range pop.Providers {
		if p.Capacity > best.Capacity {
			t.Fatalf("selected capacity %v but %v exists", best.Capacity, p.Capacity)
		}
	}
}

func TestMariposaBidShape(t *testing.T) {
	m := NewMariposaLike()
	if bid := m.Bid(1); bid != 0.1 {
		t.Errorf("bid at pref 1 = %v, want 0.1", bid)
	}
	if bid := m.Bid(-1); bid != 1.1 {
		t.Errorf("bid at pref -1 = %v, want 1.1", bid)
	}
	if m.Bid(0.5) >= m.Bid(-0.5) {
		t.Error("more-adapted providers must bid cheaper")
	}
}

func TestMariposaConcentratesOnAdaptedProviders(t *testing.T) {
	pop := testPop(t, 3)
	// Same idle load everywhere; provider 1 loves the query class.
	pop.Providers[0].SetPreference(0, -0.5)
	pop.Providers[1].SetPreference(0, 0.9)
	pop.Providers[2].SetPreference(0, 0.1)
	req := testRequest(pop, 1)
	got := NewMariposaLike().Allocate(req)
	if got[0] != 1 {
		t.Errorf("Mariposa-like selected %v, want the adapted provider 1", got)
	}
}

func TestMariposaLoadEventuallyRepels(t *testing.T) {
	pop := testPop(t, 2)
	pop.Providers[0].SetPreference(0, 0.9)  // adapted but will be drowned
	pop.Providers[1].SetPreference(0, -0.2) // unattractive but idle
	// Overload provider 0 far past the price advantage (price ratio is
	// ~0.15/0.7 ≈ 0.2, so load ratio must exceed ~5×).
	for i := 0; i < 50; i++ {
		pop.Providers[0].Assign(float64(i)/10, 300)
	}
	req := testRequest(pop, 1)
	req.Now = 5
	got := NewMariposaLike().Allocate(req)
	if got[0] != 1 {
		t.Errorf("Mariposa-like ignored crushing load: selected %v", got)
	}
}

func TestRandomAllocatorValidAndDeterministic(t *testing.T) {
	pop := testPop(t, 5)
	a := NewRandom(7)
	b := NewRandom(7)
	reqA := testRequest(pop, 2)
	reqB := testRequest(pop, 2)
	for i := 0; i < 10; i++ {
		ga := a.Allocate(reqA)
		gb := b.Allocate(reqB)
		if len(ga) != 2 || len(gb) != 2 {
			t.Fatalf("selection sizes %d/%d, want 2", len(ga), len(gb))
		}
		if ga[0] != gb[0] || ga[1] != gb[1] {
			t.Fatal("same-seeded Random allocators diverged")
		}
		if ga[0] == ga[1] {
			t.Fatal("Random selected the same provider twice")
		}
	}
	if NewRandom(1).Name() != "Random" {
		t.Error("unexpected name")
	}
}

func TestKnBestBalancesWithinBestScored(t *testing.T) {
	pop := testPop(t, 6)
	req := testRequest(pop, 1)
	// Providers 0..2 have high mutual intentions, 3..5 low; load 0 heavily.
	req.PI = []float64{0.9, 0.85, 0.8, -0.5, -0.5, -0.5}
	req.CI = []float64{0.9, 0.85, 0.8, -0.5, -0.5, -0.5}
	pop.Providers[0].Assign(0, 2000)
	req.Now = 5
	got := NewKnBest().Allocate(req)
	if got[0] == 0 {
		t.Error("KnBest should avoid the loaded provider among the k·n best")
	}
	if got[0] != 1 && got[0] != 2 {
		t.Errorf("KnBest selected %v, want one of the well-scored idle providers", got)
	}
	if NewKnBest().Name() != "KnBest" {
		t.Error("unexpected name")
	}
}

func TestKnBestCountAndDefaults(t *testing.T) {
	pop := testPop(t, 4)
	req := testRequest(pop, 3)
	req.PI = []float64{0.5, 0.5, 0.5, 0.5}
	req.CI = []float64{0.5, 0.5, 0.5, 0.5}
	k := &KnBest{KFactor: 0} // invalid factor falls back to 3
	got := k.Allocate(req)
	if len(got) != 3 {
		t.Errorf("KnBest selected %d, want 3", len(got))
	}
}

func TestSQLBEconomicPrefersHighLinearValue(t *testing.T) {
	pop := testPop(t, 3)
	req := testRequest(pop, 1)
	req.PI = []float64{0.8, 0.2, -0.9}
	req.CI = []float64{0.7, 0.3, 1}
	got := NewSQLBEconomic().Allocate(req)
	if got[0] != 0 {
		t.Errorf("SQLB-econ selected %v, want 0 (highest ω·pi+(1-ω)·ci)", got)
	}
	if NewSQLBEconomic().Name() != "SQLB-econ" {
		t.Error("unexpected name")
	}
}

func TestAllAllocatorsReturnExactlyN(t *testing.T) {
	pop := testPop(t, 7)
	allocs := []Allocator{
		NewSQLB(), NewCapacityBased(), NewMariposaLike(),
		NewRandom(3), NewKnBest(), NewSQLBEconomic(),
	}
	for _, a := range allocs {
		for n := 1; n <= 8; n++ {
			req := testRequest(pop, n)
			req.PI = make([]float64, 7)
			req.CI = make([]float64, 7)
			got := a.Allocate(req)
			want := n
			if want > 7 {
				want = 7
			}
			if len(got) != want {
				t.Errorf("%s: selected %d for q.n=%d, want %d", a.Name(), len(got), n, want)
			}
			seen := map[int]bool{}
			for _, idx := range got {
				if idx < 0 || idx >= 7 || seen[idx] {
					t.Errorf("%s: invalid selection %v", a.Name(), got)
					break
				}
				seen[idx] = true
			}
		}
	}
}

package allocator

import (
	"sqlb/internal/core"
)

// KnBest is the KnBest-inspired strategy of the authors' companion work
// (DASFAA 2007, the paper's ref [17], cited as complementary): first keep
// the k·n best providers by SQLB score, then pick the n least utilized
// among them. It trades a little intention satisfaction for better load
// spreading at high workloads.
type KnBest struct {
	// KFactor is k: how many candidates per requested provider survive the
	// intention round (default 3).
	KFactor int
	// Epsilon is ε of the underlying Definition 9 scoring.
	Epsilon float64
}

// NewKnBest returns the KnBest strategy with k = 3.
func NewKnBest() *KnBest { return &KnBest{KFactor: 3} }

// Name implements Allocator.
func (*KnBest) Name() string { return "KnBest" }

// Allocate implements Allocator.
func (k *KnBest) Allocate(req *Request) []int {
	factor := k.KFactor
	if factor < 1 {
		factor = 3
	}
	n := req.N()
	omegas := req.Scratch.F1(len(req.Pq))
	for i := range omegas {
		sat := 0.0
		if i < len(req.ProviderSat) {
			sat = req.ProviderSat[i]
		}
		omegas[i] = core.Omega(req.ConsumerSat, sat)
	}
	// Only the k·n score survivors are materialized; the load round then
	// picks the n least loaded among them.
	kn := n * factor
	short := core.RankTopScratch(req.Scratch, kn, req.PI, req.CI, omegas, k.Epsilon)
	loads := req.Scratch.F3(len(short))
	for i, r := range short {
		loads[i] = req.Pq[r.Index].OperationalLoad(req.Now)
	}
	// RankTopScratch is done with I1 by the time it returns, so the load
	// round may reuse it; the final set goes to I2 like every strategy.
	picked := core.SelectTopNScratch(req.Scratch, len(short), n, func(a, b int) bool {
		if loads[a] != loads[b] {
			return loads[a] < loads[b]
		}
		return short[a].Index < short[b].Index
	})
	out := req.Scratch.I2(len(picked))
	for i, p := range picked {
		out[i] = short[p].Index
	}
	return out
}

// SQLBEconomic is the economic SQLB variant the paper sketches as future
// work (Section 7: "one can combine them to obtain an economic version of
// SQLB, by computing bids w.r.t. intentions"). Providers implicitly bid
// value v = ω·pi + (1−ω)·ci — an arithmetic (linear-utility) balance of the
// two intentions instead of Definition 9's geometric one — and the broker
// takes the highest-value bids. Comparing it against geometric SQLB is one
// of the design-choice ablations of DESIGN.md.
type SQLBEconomic struct{}

// NewSQLBEconomic returns the economic SQLB variant.
func NewSQLBEconomic() *SQLBEconomic { return &SQLBEconomic{} }

// Name implements Allocator.
func (*SQLBEconomic) Name() string { return "SQLB-econ" }

// Allocate implements Allocator.
func (*SQLBEconomic) Allocate(req *Request) []int {
	values := req.Scratch.F1(len(req.Pq))
	for i := range req.Pq {
		sat := 0.0
		if i < len(req.ProviderSat) {
			sat = req.ProviderSat[i]
		}
		omega := core.Omega(req.ConsumerSat, sat)
		pi, ci := 0.0, 0.0
		if i < len(req.PI) {
			pi = req.PI[i]
		}
		if i < len(req.CI) {
			ci = req.CI[i]
		}
		values[i] = omega*pi + (1-omega)*ci
	}
	return core.SelectTopNScratch(req.Scratch, len(req.Pq), req.N(), func(a, b int) bool {
		if values[a] != values[b] {
			return values[a] > values[b]
		}
		return a < b
	})
}

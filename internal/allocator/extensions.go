package allocator

import (
	"sort"

	"sqlb/internal/core"
)

// KnBest is the KnBest-inspired strategy of the authors' companion work
// (DASFAA 2007, the paper's ref [17], cited as complementary): first keep
// the k·n best providers by SQLB score, then pick the n least utilized
// among them. It trades a little intention satisfaction for better load
// spreading at high workloads.
type KnBest struct {
	// KFactor is k: how many candidates per requested provider survive the
	// intention round (default 3).
	KFactor int
	// Epsilon is ε of the underlying Definition 9 scoring.
	Epsilon float64
}

// NewKnBest returns the KnBest strategy with k = 3.
func NewKnBest() *KnBest { return &KnBest{KFactor: 3} }

// Name implements Allocator.
func (*KnBest) Name() string { return "KnBest" }

// Allocate implements Allocator.
func (k *KnBest) Allocate(req *Request) []int {
	factor := k.KFactor
	if factor < 1 {
		factor = 3
	}
	n := req.N()
	omegas := make([]float64, len(req.Pq))
	for i := range omegas {
		sat := 0.0
		if i < len(req.ProviderSat) {
			sat = req.ProviderSat[i]
		}
		omegas[i] = core.Omega(req.ConsumerSat, sat)
	}
	ranking := core.Rank(req.PI, req.CI, omegas, k.Epsilon)
	kn := n * factor
	if kn > len(ranking) {
		kn = len(ranking)
	}
	short := append([]core.Ranked(nil), ranking[:kn]...)
	sort.SliceStable(short, func(a, b int) bool {
		ua := req.Pq[short[a].Index].OperationalLoad(req.Now)
		ub := req.Pq[short[b].Index].OperationalLoad(req.Now)
		if ua != ub {
			return ua < ub
		}
		return short[a].Index < short[b].Index
	})
	out := make([]int, 0, n)
	for i := 0; i < n && i < len(short); i++ {
		out = append(out, short[i].Index)
	}
	return out
}

// SQLBEconomic is the economic SQLB variant the paper sketches as future
// work (Section 7: "one can combine them to obtain an economic version of
// SQLB, by computing bids w.r.t. intentions"). Providers implicitly bid
// value v = ω·pi + (1−ω)·ci — an arithmetic (linear-utility) balance of the
// two intentions instead of Definition 9's geometric one — and the broker
// takes the highest-value bids. Comparing it against geometric SQLB is one
// of the design-choice ablations of DESIGN.md.
type SQLBEconomic struct{}

// NewSQLBEconomic returns the economic SQLB variant.
func NewSQLBEconomic() *SQLBEconomic { return &SQLBEconomic{} }

// Name implements Allocator.
func (*SQLBEconomic) Name() string { return "SQLB-econ" }

// Allocate implements Allocator.
func (*SQLBEconomic) Allocate(req *Request) []int {
	type cand struct {
		idx   int
		value float64
	}
	cands := make([]cand, len(req.Pq))
	for i := range req.Pq {
		sat := 0.0
		if i < len(req.ProviderSat) {
			sat = req.ProviderSat[i]
		}
		omega := core.Omega(req.ConsumerSat, sat)
		pi, ci := 0.0, 0.0
		if i < len(req.PI) {
			pi = req.PI[i]
		}
		if i < len(req.CI) {
			ci = req.CI[i]
		}
		cands[i] = cand{idx: i, value: omega*pi + (1-omega)*ci}
	}
	sort.SliceStable(cands, func(a, b int) bool {
		if cands[a].value != cands[b].value {
			return cands[a].value > cands[b].value
		}
		return cands[a].idx < cands[b].idx
	})
	return take(cands, req.N(), func(c cand) int { return c.idx })
}

package model

import (
	"errors"
	"fmt"
	"math"
)

// Config captures the experimental setup of the paper (Table 2 plus the
// Section 6.1 population description). DefaultConfig returns the published
// values; experiments scale or override fields as needed.
type Config struct {
	// Consumers and Providers are the population sizes (paper: 200 / 400).
	Consumers int
	Providers int

	// ConsumerK is the consumer satisfaction window (k last issued
	// queries, paper: 200); ProviderK the provider window (k last proposed
	// queries, paper: 500).
	ConsumerK int
	ProviderK int

	// InitialSatisfaction seeds every tracker (paper: 0.5); PriorSamples
	// is the virtual-sample weight with which the seed blends into the
	// window mean (see internal/satisfaction).
	InitialSatisfaction float64
	PriorSamples        int

	// Upsilon is υ of Definition 7 for all consumers (paper experiments:
	// 1, i.e. intentions ≡ preferences). Epsilon is ε of Definitions 7-9.
	Upsilon float64
	Epsilon float64

	// UtilizationWindow is W in seconds for Ut(p) (see DESIGN.md §2.1).
	UtilizationWindow float64
	// LoadHorizon is the backlog horizon (seconds) of the providers'
	// operational load (model.Provider.OperationalLoad): a provider
	// considers itself fully loaded once its queued work reaches this many
	// seconds, even if its assigned rate is below capacity.
	LoadHorizon float64

	// QueryClasses lists the workload's query classes (paper: 130 and 150
	// treatment units). QueryN is q.n (paper: 1).
	QueryClasses []QueryClass
	QueryN       int

	// HighCapacity is the service rate of a high-capacity provider in
	// units/second; medium is a third and low a seventh of it (Section
	// 6.1: high = 3× medium = 7× low). 100 units/s makes a high-capacity
	// provider serve the two query classes in 1.3 s and 1.5 s as published.
	HighCapacity float64

	// InterestShares, AdaptShares, CapacityShares give the fraction of
	// providers in the low/medium/high class of each dimension (indexed by
	// ClassLevel). Paper: interest 10/30/60, adaptation 5/60/35,
	// capacity 10/60/30.
	InterestShares [3]float64
	AdaptShares    [3]float64
	CapacityShares [3]float64

	// InterestBands and AdaptBands are the [lo,hi] preference bands per
	// class level from which preferences are drawn uniformly.
	InterestBands [3][2]float64
	AdaptBands    [3][2]float64

	// ReputationBand is the band from which static provider reputations
	// are drawn (unused when υ = 1).
	ReputationBand [2]float64

	// ReputationFeedbackAlpha, when positive, enables the feedback-driven
	// reputation extension: after each completed query the issuing
	// consumer rates every serving provider with its private preference,
	// folded into rep(p) with this EWMA factor. 0 (the default, and the
	// paper's setting) keeps reputations static.
	ReputationFeedbackAlpha float64

	// CapabilitySelectivity opens the heterogeneous-capability scenarios
	// the paper abstracts away (Section 2 assumes a sound and complete
	// matchmaking procedure, refs [11,14], and the experiments make every
	// provider capable of every query). A value s ∈ (0,1) makes each
	// provider advertise max(1, round(s·|classes|)) query classes drawn
	// uniformly; 0 (the default) and values ≥ 1 reproduce the paper's
	// all-capable setup. The matchmaker then finds Pq from the advertised
	// capability sets instead of returning the whole population.
	CapabilitySelectivity float64
	// GeneralistShare is the fraction of providers that advertise every
	// query class even under CapabilitySelectivity < 1 — the
	// specialists-vs-generalists scenario. 0 (default) makes every
	// provider a specialist when selectivity is active.
	GeneralistShare float64
	// ClassSkew shapes the query-class popularity: class i is drawn with
	// weight 1/(i+1)^ClassSkew (Zipf-like). 0 (the default, and the
	// paper's setting) keeps the uniform class mix of Section 6.1.
	ClassSkew float64

	// HashedConsumerPrefs switches consumer preferences from stored to
	// procedural: instead of materializing prf_c(p) for every (consumer,
	// provider) pair — O(|C|·|P|) floats, which at 1M consumers × 100k
	// providers would be 800 GB — each consumer draws one 64-bit seed and
	// prf_c(p) is derived on demand by hashing (seed, p.ID) into a uniform
	// draw from p's interest band. The marginal distribution is the same
	// as the stored setup's (uniform within the band, independent across
	// pairs), preferences stay fixed for a consumer's lifetime, and
	// SetPreference still works through a per-consumer override map. The
	// RNG draw sequence differs from the stored mode (one draw per
	// consumer instead of |P|), so this is opt-in for the
	// population-scale experiments; the default keeps every published run
	// byte-identical.
	HashedConsumerPrefs bool
}

// DefaultConfig returns the paper's Table 2 / Section 6.1 configuration.
func DefaultConfig() Config {
	return Config{
		Consumers:           200,
		Providers:           400,
		ConsumerK:           200,
		ProviderK:           500,
		InitialSatisfaction: 0.5,
		PriorSamples:        50,
		Upsilon:             1,
		Epsilon:             1,
		UtilizationWindow:   60,
		LoadHorizon:         3,
		QueryClasses:        []QueryClass{{Units: 130}, {Units: 150}},
		QueryN:              1,
		HighCapacity:        100,
		InterestShares:      [3]float64{Low: 0.10, Medium: 0.30, High: 0.60},
		AdaptShares:         [3]float64{Low: 0.05, Medium: 0.60, High: 0.35},
		CapacityShares:      [3]float64{Low: 0.10, Medium: 0.60, High: 0.30},
		InterestBands: [3][2]float64{
			Low:    {-1, -0.54},
			Medium: {-0.54, 0.34},
			High:   {0.34, 1},
		},
		AdaptBands: [3][2]float64{
			Low:    {-1, 0.2},
			Medium: {-0.6, 0.6},
			High:   {-0.2, 1},
		},
		ReputationBand: [2]float64{0, 1},
	}
}

// Scale returns a copy of the configuration with the population scaled by
// factor (≥ 1 participant of each kind is kept). The provider window k
// scales along with the provider count: the expected number of performed
// queries inside a provider's last-k-proposals window is k/|P| (every query
// is proposed to everyone), and that ratio — not k itself — drives the
// satisfaction dynamics the evaluation depends on. The consumer window is
// left alone because each consumer's issue rate is scale-invariant.
func (c Config) Scale(factor float64) Config {
	if factor <= 0 {
		factor = 1
	}
	scaled := c
	scaled.Consumers = maxInt(1, int(float64(c.Consumers)*factor+0.5))
	scaled.Providers = maxInt(1, int(float64(c.Providers)*factor+0.5))
	scaled.ProviderK = maxInt(10, int(float64(c.ProviderK)*factor+0.5))
	return scaled
}

// WithClasses returns a copy of the configuration carrying k query classes
// whose treatment units are spread linearly over the paper's [130,150]
// band, preserving the published mean of 140 units per query. k < 2
// returns the configuration unchanged (the paper's two classes).
func (c Config) WithClasses(k int) Config {
	if k < 2 {
		return c
	}
	out := c
	out.QueryClasses = make([]QueryClass, k)
	lo, hi := 130.0, 150.0
	for i := range out.QueryClasses {
		out.QueryClasses[i] = QueryClass{Units: lo + (hi-lo)*float64(i)/float64(k-1)}
	}
	return out
}

// Heterogeneous reports whether the capability scenarios are active: a
// CapabilitySelectivity strictly between 0 and 1 makes providers advertise
// proper subsets of the query classes.
func (c Config) Heterogeneous() bool {
	return c.CapabilitySelectivity > 0 && c.CapabilitySelectivity < 1
}

// CapabilityCount returns how many query classes a specialist provider
// advertises under the current selectivity: max(1, round(s·|classes|)).
func (c Config) CapabilityCount() int {
	n := len(c.QueryClasses)
	if !c.Heterogeneous() {
		return n
	}
	m := int(c.CapabilitySelectivity*float64(n) + 0.5)
	if m < 1 {
		m = 1
	}
	if m > n {
		m = n
	}
	return m
}

// ClassWeights returns the query-class popularity weights induced by
// ClassSkew (weight_i ∝ 1/(i+1)^skew), or nil for the paper's uniform mix.
func (c Config) ClassWeights() []float64 {
	if c.ClassSkew <= 0 || len(c.QueryClasses) < 2 {
		return nil
	}
	w := make([]float64, len(c.QueryClasses))
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), c.ClassSkew)
	}
	return w
}

// MeanQueryUnitsWeighted returns the expected treatment units of one query
// under the ClassSkew-induced class mix (equal to MeanQueryUnits when the
// mix is uniform). The arrival-rate calibration uses it so a workload
// fraction keeps meaning "offered work / total capacity" under skew.
func (c Config) MeanQueryUnitsWeighted() float64 {
	w := c.ClassWeights()
	if w == nil {
		return c.MeanQueryUnits()
	}
	var sum, wsum float64
	for i, qc := range c.QueryClasses {
		sum += w[i] * qc.Units
		wsum += w[i]
	}
	if wsum == 0 {
		return c.MeanQueryUnits()
	}
	return sum / wsum
}

// CapacityFor returns the service rate for a capacity class.
func (c Config) CapacityFor(level ClassLevel) float64 {
	switch level {
	case High:
		return c.HighCapacity
	case Medium:
		return c.HighCapacity / 3
	default:
		return c.HighCapacity / 7
	}
}

// MeanQueryUnits returns the expected treatment units of one query under a
// uniform class mix.
func (c Config) MeanQueryUnits() float64 {
	if len(c.QueryClasses) == 0 {
		return 0
	}
	sum := 0.0
	for _, qc := range c.QueryClasses {
		sum += qc.Units
	}
	return sum / float64(len(c.QueryClasses))
}

// Validate checks the configuration for structural errors.
func (c Config) Validate() error {
	var errs []error
	if c.Consumers < 1 {
		errs = append(errs, errors.New("config: need at least one consumer"))
	}
	if c.Providers < 1 {
		errs = append(errs, errors.New("config: need at least one provider"))
	}
	if c.ConsumerK < 1 || c.ProviderK < 1 {
		errs = append(errs, errors.New("config: window sizes must be >= 1"))
	}
	if len(c.QueryClasses) == 0 {
		errs = append(errs, errors.New("config: need at least one query class"))
	}
	for i, qc := range c.QueryClasses {
		if qc.Units <= 0 {
			errs = append(errs, fmt.Errorf("config: query class %d has non-positive units", i))
		}
	}
	if c.QueryN < 1 {
		errs = append(errs, errors.New("config: q.n must be >= 1"))
	}
	if c.HighCapacity <= 0 {
		errs = append(errs, errors.New("config: high capacity must be positive"))
	}
	if c.UtilizationWindow <= 0 {
		errs = append(errs, errors.New("config: utilization window must be positive"))
	}
	if c.Upsilon < 0 || c.Upsilon > 1 {
		errs = append(errs, errors.New("config: upsilon must be in [0,1]"))
	}
	if !(c.Epsilon > 0) {
		errs = append(errs, errors.New("config: epsilon must be > 0"))
	}
	if c.CapabilitySelectivity < 0 {
		errs = append(errs, errors.New("config: capability selectivity must be >= 0"))
	}
	if c.GeneralistShare < 0 || c.GeneralistShare > 1 {
		errs = append(errs, errors.New("config: generalist share must be in [0,1]"))
	}
	if c.ClassSkew < 0 {
		errs = append(errs, errors.New("config: class skew must be >= 0"))
	}
	for name, shares := range map[string][3]float64{
		"interest": c.InterestShares, "adaptation": c.AdaptShares, "capacity": c.CapacityShares,
	} {
		sum := shares[0] + shares[1] + shares[2]
		if sum < 0.999 || sum > 1.001 {
			errs = append(errs, fmt.Errorf("config: %s shares sum to %v, want 1", name, sum))
		}
	}
	return errors.Join(errs...)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

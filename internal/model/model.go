// Package model defines the data model of the SQLB mediation system
// (Section 2 of the paper): queries q = ⟨c, d, n⟩, autonomous consumers and
// providers with private preferences, provider capacity and utilization,
// and the population builder that realizes the experimental setup of
// Table 2 (participant classes, preference bands, capacity heterogeneity).
package model

import "fmt"

// ClassLevel is the low/medium/high classification the paper uses for three
// independent provider dimensions: the consumers' interest in the provider,
// the provider's adaptation to incoming queries, and its capacity.
type ClassLevel int

// Class levels, ordered.
const (
	Low ClassLevel = iota
	Medium
	High
)

// String returns the paper's class label.
func (c ClassLevel) String() string {
	switch c {
	case Low:
		return "low"
	case Medium:
		return "med"
	case High:
		return "high"
	}
	return fmt.Sprintf("ClassLevel(%d)", int(c))
}

// ClassLevels lists the three levels in display order.
var ClassLevels = []ClassLevel{Low, Medium, High}

// QueryClass describes one class of queries: the treatment units it
// consumes (absolute work; a provider of capacity cap units/s serves it in
// Units/cap seconds).
type QueryClass struct {
	// Units is the work the query consumes, in treatment units.
	Units float64
}

// Query is the q = ⟨c, d, n⟩ triple of Section 2. The task description d is
// abstracted to the query class index (the matchmaker works on it); N is
// q.n, the number of providers the consumer wishes to allocate the query to.
type Query struct {
	// ID identifies the query within a run.
	ID uint64
	// Consumer is q.c, the issuing consumer.
	Consumer *Consumer
	// Class indexes the workload's query classes (the abstraction of q.d).
	Class int
	// Units is the work this query consumes at a provider.
	Units float64
	// N is q.n ∈ N*, the desired number of providers.
	N int
	// IssuedAt is the simulation time at which the consumer issued q.
	IssuedAt float64
}

// DepartureReason enumerates why an autonomous participant left the system
// (Section 6.3.2).
type DepartureReason int

// Departure reasons. ReasonNone marks a participant still in the system.
// ReasonOutage is not a Section 6.3.2 autonomy decision but a scheduled
// scenario event (an outage or maintenance wave); unlike the autonomy
// reasons it is reversible — a rejoin wave re-registers the provider.
const (
	ReasonNone DepartureReason = iota
	ReasonDissatisfaction
	ReasonStarvation
	ReasonOverutilization
	ReasonOutage
)

// String returns the reason label used in Table 3.
func (r DepartureReason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonDissatisfaction:
		return "dissatisfaction"
	case ReasonStarvation:
		return "starvation"
	case ReasonOverutilization:
		return "overutilization"
	case ReasonOutage:
		return "outage"
	}
	return fmt.Sprintf("DepartureReason(%d)", int(r))
}

// DepartureReasons lists the three autonomy reasons in Table 3 order.
// ReasonOutage is deliberately excluded: Table 3 accounts for voluntary
// departures, and adding a scenario row would change the recorded artifact
// layout. Use AllDepartureReasons where scheduled churn must show up.
var DepartureReasons = []DepartureReason{ReasonDissatisfaction, ReasonStarvation, ReasonOverutilization}

// AllDepartureReasons adds the scenario-driven outage reason to the
// autonomy reasons — the list CLIs iterate when printing departure
// breakdowns of churn scenarios.
var AllDepartureReasons = []DepartureReason{ReasonDissatisfaction, ReasonStarvation, ReasonOverutilization, ReasonOutage}

package model

import (
	"math"
	"testing"

	"sqlb/internal/randx"
)

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if cfg.Consumers != 200 || cfg.Providers != 400 {
		t.Errorf("population = %d/%d, want 200/400 (Table 2)", cfg.Consumers, cfg.Providers)
	}
	if cfg.ConsumerK != 200 || cfg.ProviderK != 500 {
		t.Errorf("windows = %d/%d, want 200/500 (Table 2)", cfg.ConsumerK, cfg.ProviderK)
	}
	if cfg.InitialSatisfaction != 0.5 {
		t.Errorf("initial satisfaction = %v, want 0.5", cfg.InitialSatisfaction)
	}
}

func TestConfigValidateErrors(t *testing.T) {
	bad := DefaultConfig()
	bad.Consumers = 0
	bad.QueryN = 0
	bad.Epsilon = 0
	bad.InterestShares = [3]float64{0.5, 0.5, 0.5}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected validation errors")
	}
}

func TestCapacityRatios(t *testing.T) {
	cfg := DefaultConfig()
	high := cfg.CapacityFor(High)
	med := cfg.CapacityFor(Medium)
	low := cfg.CapacityFor(Low)
	// Section 6.1: high = 3× medium and 7× low.
	if math.Abs(high/med-3) > 1e-9 {
		t.Errorf("high/med = %v, want 3", high/med)
	}
	if math.Abs(high/low-7) > 1e-9 {
		t.Errorf("high/low = %v, want 7", high/low)
	}
	// High-capacity providers serve the two classes in 1.3 s and 1.5 s.
	if got := cfg.QueryClasses[0].Units / high; math.Abs(got-1.3) > 1e-9 {
		t.Errorf("class-0 service time at high capacity = %v, want 1.3", got)
	}
	if got := cfg.QueryClasses[1].Units / high; math.Abs(got-1.5) > 1e-9 {
		t.Errorf("class-1 service time at high capacity = %v, want 1.5", got)
	}
}

func TestConfigScale(t *testing.T) {
	cfg := DefaultConfig().Scale(0.25)
	if cfg.Consumers != 50 || cfg.Providers != 100 {
		t.Errorf("scaled population = %d/%d, want 50/100", cfg.Consumers, cfg.Providers)
	}
	if cfg.ProviderK != 125 {
		t.Errorf("scaled provider window = %d, want 125 (k/|P| preserved)", cfg.ProviderK)
	}
	if cfg.ConsumerK != 200 {
		t.Errorf("consumer window = %d, should not scale", cfg.ConsumerK)
	}
	tiny := DefaultConfig().Scale(0.0001)
	if tiny.Consumers < 1 || tiny.Providers < 1 {
		t.Error("scaling must keep at least one participant of each kind")
	}
	same := DefaultConfig().Scale(0)
	if same.Consumers != 200 {
		t.Error("non-positive factor should be treated as 1")
	}
}

func TestPopulationClassProportions(t *testing.T) {
	cfg := DefaultConfig()
	pop := NewPopulation(cfg, randx.New(7), 0)

	count := func(dim func(*Provider) ClassLevel) [3]int {
		var c [3]int
		for _, p := range pop.Providers {
			c[dim(p)]++
		}
		return c
	}
	interest := count(func(p *Provider) ClassLevel { return p.InterestClass })
	if interest[Low] != 40 || interest[Medium] != 120 || interest[High] != 240 {
		t.Errorf("interest classes = %v, want [40 120 240]", interest)
	}
	adapt := count(func(p *Provider) ClassLevel { return p.AdaptClass })
	if adapt[Low] != 20 || adapt[Medium] != 240 || adapt[High] != 140 {
		t.Errorf("adaptation classes = %v, want [20 240 140]", adapt)
	}
	capc := count(func(p *Provider) ClassLevel { return p.CapClass })
	if capc[Low] != 40 || capc[Medium] != 240 || capc[High] != 120 {
		t.Errorf("capacity classes = %v, want [40 240 120]", capc)
	}
}

func TestPopulationPreferenceBands(t *testing.T) {
	cfg := DefaultConfig()
	pop := NewPopulation(cfg, randx.New(11), 0)
	for _, p := range pop.Providers {
		band := cfg.AdaptBands[p.AdaptClass]
		for class := range cfg.QueryClasses {
			pref := p.Preference(class)
			if pref < band[0]-1e-9 || pref > band[1]+1e-9 {
				t.Fatalf("provider %d pref %v outside band %v of class %v", p.ID, pref, band, p.AdaptClass)
			}
		}
	}
	for _, c := range pop.Consumers {
		for _, p := range pop.Providers {
			band := cfg.InterestBands[p.InterestClass]
			pref := c.Preference(p, 0)
			if pref < band[0]-1e-9 || pref > band[1]+1e-9 {
				t.Fatalf("consumer %d pref %v for provider %d outside band %v", c.ID, pref, p.ID, band)
			}
		}
	}
}

func TestPopulationDeterminism(t *testing.T) {
	cfg := DefaultConfig().Scale(0.1)
	a := NewPopulation(cfg, randx.New(42), 0)
	b := NewPopulation(cfg, randx.New(42), 0)
	for i := range a.Providers {
		pa, pb := a.Providers[i], b.Providers[i]
		if pa.Capacity != pb.Capacity || pa.InterestClass != pb.InterestClass ||
			pa.Preference(0) != pb.Preference(0) || pa.Reputation != pb.Reputation {
			t.Fatalf("provider %d differs across identical seeds", i)
		}
	}
	for i := range a.Consumers {
		if a.Consumers[i].Preference(a.Providers[0], 0) != b.Consumers[i].Preference(b.Providers[0], 0) {
			t.Fatalf("consumer %d differs across identical seeds", i)
		}
	}
}

func TestTotalCapacityAndAliveness(t *testing.T) {
	cfg := DefaultConfig().Scale(0.05) // 10 consumers, 20 providers
	pop := NewPopulation(cfg, randx.New(3), 0)
	total := pop.TotalCapacity()
	if total <= 0 {
		t.Fatal("total capacity must be positive")
	}
	if got := pop.AliveCapacity(); got != total {
		t.Errorf("alive capacity %v != total %v at start", got, total)
	}
	departed := pop.Providers[0]
	departed.Alive = false
	departed.DepartReason = ReasonStarvation
	if got := pop.AliveCapacity(); got != total-departed.Capacity {
		t.Errorf("alive capacity %v after departure, want %v", got, total-departed.Capacity)
	}
	if got := len(pop.AliveProviders()); got != len(pop.Providers)-1 {
		t.Errorf("alive providers = %d, want %d", got, len(pop.Providers)-1)
	}
	pop.Consumers[0].Alive = false
	if got := len(pop.AliveConsumers()); got != len(pop.Consumers)-1 {
		t.Errorf("alive consumers = %d, want %d", got, len(pop.Consumers)-1)
	}
}

func TestProviderAssignAndBacklog(t *testing.T) {
	cfg := DefaultConfig()
	pop := NewPopulation(cfg, randx.New(1), 0)
	var p *Provider
	for _, cand := range pop.Providers {
		if cand.CapClass == High {
			p = cand
			break
		}
	}
	if p == nil {
		t.Fatal("no high-capacity provider")
	}
	// First query: starts immediately, 130 units at 100 u/s = 1.3 s.
	done := p.Assign(0, 130)
	if math.Abs(done-1.3) > 1e-9 {
		t.Errorf("completion = %v, want 1.3", done)
	}
	// Second query queues FIFO behind the first.
	done2 := p.Assign(0.5, 150)
	if math.Abs(done2-(1.3+1.5)) > 1e-9 {
		t.Errorf("completion = %v, want 2.8", done2)
	}
	if got := p.Backlog(1.0); math.Abs(got-1.8) > 1e-9 {
		t.Errorf("backlog = %v, want 1.8", got)
	}
	if got := p.Backlog(5.0); got != 0 {
		t.Errorf("backlog after drain = %v, want 0", got)
	}
	if p.QueriesPerformed != 2 {
		t.Errorf("QueriesPerformed = %d, want 2", p.QueriesPerformed)
	}
}

func TestProviderServiceTimeByClass(t *testing.T) {
	cfg := DefaultConfig()
	pop := NewPopulation(cfg, randx.New(5), 0)
	for _, p := range pop.Providers {
		want := 130 / p.Capacity
		if got := p.ServiceTime(130); math.Abs(got-want) > 1e-12 {
			t.Fatalf("service time = %v, want %v", got, want)
		}
	}
}

func TestSetPreferenceClamps(t *testing.T) {
	cfg := DefaultConfig().Scale(0.05)
	pop := NewPopulation(cfg, randx.New(9), 0)
	c := pop.Consumers[0]
	c.SetPreference(0, 5)
	if got := c.Preference(pop.Providers[0], 0); got != 1 {
		t.Errorf("preference = %v, want clamped 1", got)
	}
	c.SetPreference(-1, 0.5) // out-of-range id ignored
	p := pop.Providers[0]
	p.SetPreference(0, -5)
	if got := p.Preference(0); got != -1 {
		t.Errorf("preference = %v, want clamped -1", got)
	}
	p.SetPreference(99, 0.5) // out-of-range class ignored
	if got := p.Preference(99); got != 0 {
		t.Errorf("out-of-range class preference = %v, want 0", got)
	}
}

func TestClassLevelAndReasonStrings(t *testing.T) {
	if Low.String() != "low" || Medium.String() != "med" || High.String() != "high" {
		t.Error("unexpected class level labels")
	}
	if ReasonDissatisfaction.String() != "dissatisfaction" ||
		ReasonStarvation.String() != "starvation" ||
		ReasonOverutilization.String() != "overutilization" ||
		ReasonNone.String() != "none" {
		t.Error("unexpected reason labels")
	}
	if ClassLevel(9).String() == "" || DepartureReason(9).String() == "" {
		t.Error("out-of-range enums must still print")
	}
}

func TestMeanQueryUnits(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.MeanQueryUnits(); math.Abs(got-140) > 1e-9 {
		t.Errorf("mean units = %v, want 140", got)
	}
	empty := Config{}
	if got := empty.MeanQueryUnits(); got != 0 {
		t.Errorf("mean units of empty class list = %v, want 0", got)
	}
}

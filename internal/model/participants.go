package model

import (
	"sqlb/internal/satisfaction"
)

// Consumer is an autonomous query issuer. Its preference for allocating a
// query to each provider is private; what it reveals is its intention
// (Definition 7), computed by trading preferences for reputation via υ.
type Consumer struct {
	// ID indexes the consumer within the population.
	ID int
	// Upsilon is υ ∈ [0,1]: the weight of own preferences versus provider
	// reputation when forming intentions (Definition 7). The paper's
	// experiments use υ = 1 (intentions ≡ preferences).
	Upsilon float64
	// Epsilon is ε > 0 of Definition 7.
	Epsilon float64

	// Tracker holds the consumer's §3.1 characteristics over its k last
	// issued queries, fed with the intentions it expressed. Intentions are
	// public, so this is simultaneously the consumer's own view and the
	// mediator-observed view used by ω (Equation 6).
	Tracker *satisfaction.ConsumerTracker

	// SmoothSat and SmoothAdq are the consumer's long-run self-assessment:
	// EWMA readings of the tracker, seeded at the initial satisfaction and
	// updated periodically (Section 3 frames the characteristics as a
	// regular long-run assessment). Departure decisions use these.
	SmoothSat float64
	SmoothAdq float64

	// Alive is false once the consumer has left the system.
	Alive bool
	// DepartedAt and DepartReason record the departure, if any.
	DepartedAt   float64
	DepartReason DepartureReason

	// prefs[p.ID] is prf_c(·, p), drawn from the interest band of p's
	// interest class. Per the experimental setup the preference depends on
	// the provider, not on the query class. Nil when the population runs
	// with hashed preferences (Config.HashedConsumerPrefs): then prefSeed
	// derives prf_c(p) on demand and prefOverride carries any scripted
	// overrides.
	prefs        []float64
	hashedPrefs  bool
	prefSeed     uint64
	prefOverride map[int]float64
}

// Preference returns prf_c(q, p) ∈ [-1,1], the consumer's private
// preference for allocating a query of the given class to provider p.
func (c *Consumer) Preference(p *Provider, queryClass int) float64 {
	if p == nil || p.ID < 0 {
		return 0
	}
	if c.hashedPrefs {
		if c.prefOverride != nil {
			if v, ok := c.prefOverride[p.ID]; ok {
				return v
			}
		}
		band := p.interestBand
		return band[0] + (band[1]-band[0])*hashUnit(c.prefSeed, uint64(p.ID))
	}
	if p.ID >= len(c.prefs) {
		return 0
	}
	return c.prefs[p.ID]
}

// SetPreference overrides prf_c(·, p); used by examples that script
// preference changes and by tests.
func (c *Consumer) SetPreference(providerID int, pref float64) {
	if providerID < 0 {
		return
	}
	if c.hashedPrefs {
		if c.prefOverride == nil {
			c.prefOverride = make(map[int]float64)
		}
		c.prefOverride[providerID] = satisfaction.Clamp(pref)
		return
	}
	if providerID < len(c.prefs) {
		c.prefs[providerID] = satisfaction.Clamp(pref)
	}
}

// hashUnit maps (seed, x) to a uniform draw in [0,1) with a splitmix64-style
// finalizer: cheap, stateless, and stable across runs, which is what lets a
// hashed-preference consumer answer prf_c(p) without storing |P| floats.
func hashUnit(seed, x uint64) float64 {
	v := seed + x*0x9E3779B97F4A7C15
	v ^= v >> 30
	v *= 0xBF58476D1CE4E5B9
	v ^= v >> 27
	v *= 0x94D049BB133111EB
	v ^= v >> 31
	return float64(v>>11) / (1 << 53)
}

// Provider is an autonomous query performer with finite capacity. Its
// preference for performing each query class is private; what it reveals is
// its intention (Definition 8), trading preferences for utilization
// according to its private, preference-based satisfaction.
type Provider struct {
	// ID indexes the provider within the population.
	ID int
	// Capacity is the service rate in treatment units per second.
	Capacity float64
	// Epsilon is ε > 0 of Definition 8.
	Epsilon float64

	// InterestClass is how interesting consumers find this provider
	// (drives the consumer preference band), AdaptClass how adapted the
	// provider is to incoming queries (drives its own preference band),
	// CapClass its capacity class. The three dimensions are independent.
	InterestClass ClassLevel
	AdaptClass    ClassLevel
	CapClass      ClassLevel

	// Reputation is rep(p) ∈ [-1,1] as seen by consumers (Definition 7).
	Reputation float64

	// Public tracks §3.2 characteristics fed with the *intentions* the
	// provider showed — the mediator-visible view that Equation 6 uses.
	Public *satisfaction.ProviderTracker
	// Private tracks the same characteristics fed with the provider's
	// *preferences* — the view Figures 4(b)-(c) measure. Only the provider
	// can compute it.
	Private *satisfaction.ProviderTracker

	// SmoothSat and SmoothAdq are the provider's long-run self-assessment:
	// EWMA readings of the Private tracker, seeded at the initial
	// satisfaction. The instantaneous windowed satisfaction rests on the
	// few queries performed within the last-k proposals and is therefore
	// noisy; the long-run EWMA — level × frequency of desired queries —
	// is what the provider trades against utilization in Definition 8 and
	// what its departure decision consults. Its stationary value is
	// (1−P₀)·r̄, where P₀ is the fraction of assessments with an empty
	// performed set and r̄ the preference level of performed queries: a
	// preference-blind allocator drives it to ≈0.71·δa (the Figure 4(c)
	// punishment), an intention-aware one to ≈0.9.
	SmoothSat float64
	SmoothAdq float64
	// SmoothUt is the long-run EWMA of the provider's load, seeded at the
	// initial satisfaction level (0.5 — "so far, so normal"). The load
	// reading is max(Ut, backlog/W): the windowed assigned rate, or the
	// queued work normalized by the utilization window when the queue has
	// outgrown it — a provider whose backlog keeps growing is overcommitted
	// even if its inflow rate looks moderate. The starvation and
	// overutilization departure rules consult this value: a provider
	// leaves over a *sustained* condition, not over one window reading
	// (a single 140-unit query spikes a low-capacity provider's 60-second
	// window by ≈0.16).
	SmoothUt float64

	// Util is the provider's utilization window (Ut of Section 2).
	Util *UtilizationWindow
	// LoadHorizon is the backlog horizon (seconds) of OperationalLoad.
	LoadHorizon float64

	// BusyUntil is the virtual time at which the provider's FIFO queue
	// drains; the service substrate for response-time measurement.
	BusyUntil float64
	// QueriesPerformed counts queries this provider has executed.
	QueriesPerformed uint64

	// Alive is false once the provider has left the system.
	Alive bool
	// DepartedAt and DepartReason record the departure, if any.
	DepartedAt   float64
	DepartReason DepartureReason

	// prefs[class] is prf_p(q) for each query class, drawn from the
	// adaptation band.
	prefs []float64

	// interestBand is the [lo,hi] interest band of the provider's interest
	// class; hashed-preference consumers derive prf_c(p) from it.
	interestBand [2]float64

	// caps is the advertised capability set as a bitset over query-class
	// indexes; nil means "all classes" (the paper's experimental setup, in
	// which every provider can perform every query — Section 6.1). The
	// matchmaker's task-description match (the abstraction of q.d in
	// Section 2) reduces to a bit test against this set.
	caps []uint64
}

// CanServe reports whether the provider advertises the query class — the
// sound-and-complete matchmaking predicate of Section 2 (refs [11,14]).
// A provider with no explicit capability set serves every class.
func (p *Provider) CanServe(queryClass int) bool {
	if p.caps == nil {
		return queryClass >= 0
	}
	if queryClass < 0 || queryClass >= len(p.caps)*64 {
		return false
	}
	return p.caps[queryClass/64]&(1<<(uint(queryClass)%64)) != 0
}

// Generalist reports whether the provider advertises every class (no
// explicit capability set).
func (p *Provider) Generalist() bool { return p.caps == nil }

// SetCapabilities replaces the provider's advertised capability set with
// the given class indexes out of total classes. An empty list with
// total > 0 yields a provider that serves nothing; call ClearCapabilities
// to restore the all-classes default.
func (p *Provider) SetCapabilities(classes []int, total int) {
	if total < 1 {
		total = 1
	}
	p.caps = make([]uint64, (total+63)/64)
	for _, c := range classes {
		if c >= 0 && c < total {
			p.caps[c/64] |= 1 << (uint(c) % 64)
		}
	}
}

// ClearCapabilities restores the all-classes default.
func (p *Provider) ClearCapabilities() { p.caps = nil }

// CapabilityClasses returns the advertised class indexes in ascending
// order, or nil for a generalist. total bounds the enumeration (pass the
// workload's class count).
func (p *Provider) CapabilityClasses(total int) []int {
	if p.caps == nil {
		return nil
	}
	out := []int{}
	for c := 0; c < total && c < len(p.caps)*64; c++ {
		if p.caps[c/64]&(1<<(uint(c)%64)) != 0 {
			out = append(out, c)
		}
	}
	return out
}

// Preference returns prf_p(q) ∈ [-1,1] for a query of the given class.
func (p *Provider) Preference(queryClass int) float64 {
	if queryClass < 0 || queryClass >= len(p.prefs) {
		return 0
	}
	return p.prefs[queryClass]
}

// SetPreference overrides prf_p for one query class; used by the
// adaptivity example (the courier company changing campaigns) and tests.
func (p *Provider) SetPreference(queryClass int, pref float64) {
	if queryClass >= 0 && queryClass < len(p.prefs) {
		p.prefs[queryClass] = satisfaction.Clamp(pref)
	}
}

// Utilization returns Ut(p) at time now: assigned work over the trailing
// window divided by capacity. This is the Section 2 utilization the §4
// metrics and the Section 6.3.2 starvation/overutilization rules read.
func (p *Provider) Utilization(now float64) float64 {
	return p.Util.Utilization(now)
}

// OperationalLoad is the load signal a provider trades against its
// preferences in Definition 8: the maximum of the windowed utilization and
// the queued work normalized by the load horizon. The backlog term is what
// makes willingness collapse *before* rate saturation — without it a
// provider with any positive intention keeps outranking every unwilling
// provider while its queue grows without bound, which would wreck response
// times (the paper: providers show positive intentions only when not
// overutilized, which "helps to keep good response times").
func (p *Provider) OperationalLoad(now float64) float64 {
	load := p.Util.Utilization(now)
	h := p.LoadHorizon
	if h <= 0 {
		h = 5
	}
	if b := p.Backlog(now) / h; b > load {
		load = b
	}
	return load
}

// Assign enqueues units of work at time now on the provider's FIFO queue
// and returns the completion time. It also feeds the utilization window.
func (p *Provider) Assign(now, units float64) (completion float64) {
	start := now
	if p.BusyUntil > start {
		start = p.BusyUntil
	}
	completion = start + units/p.Capacity
	p.BusyUntil = completion
	p.Util.Add(now, units)
	p.QueriesPerformed++
	return completion
}

// Backlog returns the seconds of queued work at time now.
func (p *Provider) Backlog(now float64) float64 {
	if p.BusyUntil <= now {
		return 0
	}
	return p.BusyUntil - now
}

// ServiceTime returns how long this provider needs for units of work.
func (p *Provider) ServiceTime(units float64) float64 {
	return units / p.Capacity
}

// MeasuredLoad is the Ut(p) reading the §4 metrics and the departure rules
// observe: the windowed assigned rate, or the queued work normalized by
// the utilization window when the queue has outgrown it. For a balanced
// provider the two coincide with its workload share (the paper's "optimal
// utilization is 0.8 at 80% workload"); for an overcommitted one the
// backlog term exposes the overload that a rate reading hides.
func (p *Provider) MeasuredLoad(now float64) float64 {
	load := p.Utilization(now)
	if b := p.Backlog(now) / p.Util.Window(); b > load {
		load = b
	}
	return load
}

// Smooth folds the current Private tracker readings and load into the
// provider's long-run self-assessment with EWMA factor alpha.
func (p *Provider) Smooth(alpha, now float64) {
	p.SmoothSat += alpha * (p.Private.Satisfaction() - p.SmoothSat)
	p.SmoothAdq += alpha * (p.Private.Adequation() - p.SmoothAdq)
	p.SmoothUt += alpha * (p.MeasuredLoad(now) - p.SmoothUt)
}

// Smooth folds the current tracker readings into the consumer's long-run
// self-assessment with EWMA factor alpha.
func (c *Consumer) Smooth(alpha float64) {
	c.SmoothSat += alpha * (c.Tracker.Satisfaction() - c.SmoothSat)
	c.SmoothAdq += alpha * (c.Tracker.Adequation() - c.SmoothAdq)
}

// RecordFeedback folds one consumer rating ∈ [-1,1] into the provider's
// reputation with EWMA factor alpha. This is the feedback-driven reputation
// extension (the paper notes reputation "has a major role to play" in how
// participants work out intentions but keeps its computation external);
// with it enabled, rep(p) converges to the mean consumer preference for p,
// which is what makes the υ < 1 settings of Definition 7 meaningful in
// simulations.
func (p *Provider) RecordFeedback(rating, alpha float64) {
	rating = satisfaction.Clamp(rating)
	if alpha <= 0 || alpha > 1 {
		return
	}
	p.Reputation += alpha * (rating - p.Reputation)
}

package model

// UtilizationWindow computes Ut(p), the provider utilization of Section 2,
// as the work assigned to the provider during the trailing window divided
// by the capacity the provider offers over that window:
//
//	Ut(p) = Σ units assigned in (now-W, now] / (cap(p) · W)
//
// The paper delegates the exact formula to ref [16]; this assigned-load
// definition preserves the two properties the evaluation relies on (see
// DESIGN.md): a balanced allocation at x% system workload yields Ut ≈ x/100
// for every provider, and a concentrating method can push Ut arbitrarily
// above 1. Before one full window has elapsed the effective horizon is the
// elapsed time, so early measurements are not diluted by the empty past.
type UtilizationWindow struct {
	window   float64
	capacity float64
	start    float64
	events   []utilEvent // FIFO deque, head..len valid
	head     int
	sum      float64
}

type utilEvent struct {
	at    float64
	units float64
}

// NewUtilizationWindow returns a window of w seconds for a provider of the
// given capacity (units/second), observing from time start.
func NewUtilizationWindow(w, capacity, start float64) *UtilizationWindow {
	u := &UtilizationWindow{}
	u.Init(w, capacity, start)
	return u
}

// Init (re)initializes the window in place; population builders use it to
// lay windows out in one bulk array instead of allocating per provider.
func (u *UtilizationWindow) Init(w, capacity, start float64) {
	if w <= 0 {
		w = 1
	}
	if capacity <= 0 {
		capacity = 1e-9
	}
	*u = UtilizationWindow{window: w, capacity: capacity, start: start}
}

// Add records units of work assigned at time now.
func (u *UtilizationWindow) Add(now, units float64) {
	u.evict(now)
	u.events = append(u.events, utilEvent{at: now, units: units})
	u.sum += units
}

// Utilization returns Ut at time now.
func (u *UtilizationWindow) Utilization(now float64) float64 {
	u.evict(now)
	eff := now - u.start
	if eff > u.window {
		eff = u.window
	}
	if eff <= 0 {
		eff = 1e-9
	}
	if u.sum <= 0 {
		return 0
	}
	return u.sum / (u.capacity * eff)
}

// AssignedRate returns the raw assigned work rate (units/second) over the
// effective window; utilization times capacity.
func (u *UtilizationWindow) AssignedRate(now float64) float64 {
	return u.Utilization(now) * u.capacity
}

func (u *UtilizationWindow) evict(now float64) {
	cutoff := now - u.window
	for u.head < len(u.events) && u.events[u.head].at <= cutoff {
		u.sum -= u.events[u.head].units
		u.head++
	}
	// Compact once the dead prefix dominates, to keep memory bounded.
	if u.head > 64 && u.head*2 >= len(u.events) {
		n := copy(u.events, u.events[u.head:])
		u.events = u.events[:n]
		u.head = 0
	}
	if u.sum < 0 { // float drift guard
		u.sum = 0
	}
}

// Window returns the configured window length in seconds.
func (u *UtilizationWindow) Window() float64 { return u.window }

// Pending returns the number of live events held (for tests).
func (u *UtilizationWindow) Pending() int { return len(u.events) - u.head }

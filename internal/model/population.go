package model

import (
	"sqlb/internal/randx"
	"sqlb/internal/satisfaction"
)

// Population is the set of consumers and providers registered to the
// mediator, built per the Section 6.1 setup.
type Population struct {
	Consumers []*Consumer
	Providers []*Provider
	Classes   []QueryClass
	Config    Config
}

// NewPopulation builds a population from the configuration, drawing class
// memberships and preferences from rng. startTime anchors the utilization
// windows (normally 0).
//
// Memory layout: participants, trackers, utilization windows, ring storage,
// and preference vectors are all carved from a handful of bulk arrays
// instead of being allocated one object at a time. Participants created
// together therefore sit adjacent in memory — the access order of the
// mediation loop — and building a 100k-provider population is a few large
// allocations instead of ~1M small ones. The *Provider/*Consumer pointer
// API is unchanged (the pointers index into the bulk arrays, and population
// membership is fixed after construction: churn toggles Alive, it never
// appends). The RNG draw sequence is exactly the per-object constructor's,
// so every seeded run is byte-identical to the previous layout.
func NewPopulation(cfg Config, rng *randx.Rand, startTime float64) *Population {
	pop := &Population{
		Consumers: make([]*Consumer, cfg.Consumers),
		Providers: make([]*Provider, cfg.Providers),
		Classes:   append([]QueryClass(nil), cfg.QueryClasses...),
		Config:    cfg,
	}

	interest := assignClasses(cfg.Providers, cfg.InterestShares, rng)
	adapt := assignClasses(cfg.Providers, cfg.AdaptShares, rng)
	capc := assignClasses(cfg.Providers, cfg.CapacityShares, rng)

	provK, consK := cfg.ProviderK, cfg.ConsumerK
	if provK < 1 {
		provK = 1
	}
	if consK < 1 {
		consK = 1
	}
	arena := satisfaction.NewArena(2*consK*cfg.Consumers, 2*provK*cfg.Providers)
	providers := make([]Provider, cfg.Providers)
	provTrackers := make([]satisfaction.ProviderTracker, 2*cfg.Providers)
	utils := make([]UtilizationWindow, cfg.Providers)
	nClasses := len(cfg.QueryClasses)
	provPrefs := make([]float64, cfg.Providers*nClasses)

	for i := range providers {
		p := &providers[i]
		*p = Provider{
			ID:            i,
			Epsilon:       cfg.Epsilon,
			InterestClass: interest[i],
			AdaptClass:    adapt[i],
			CapClass:      capc[i],
			Capacity:      cfg.CapacityFor(capc[i]),
			Reputation:    rng.Uniform(cfg.ReputationBand[0], cfg.ReputationBand[1]),
			Public:        &provTrackers[2*i],
			Private:       &provTrackers[2*i+1],
			SmoothSat:     cfg.InitialSatisfaction,
			SmoothAdq:     cfg.InitialSatisfaction,
			SmoothUt:      cfg.InitialSatisfaction,
			Alive:         true,
			interestBand:  cfg.InterestBands[interest[i]],
		}
		p.Public.Init(arena, cfg.ProviderK, cfg.InitialSatisfaction, cfg.PriorSamples)
		p.Private.Init(arena, cfg.ProviderK, cfg.InitialSatisfaction, cfg.PriorSamples)
		p.Util = &utils[i]
		p.Util.Init(cfg.UtilizationWindow, p.Capacity, startTime)
		p.LoadHorizon = cfg.LoadHorizon
		band := cfg.AdaptBands[p.AdaptClass]
		p.prefs = provPrefs[i*nClasses : (i+1)*nClasses : (i+1)*nClasses]
		for c := range p.prefs {
			p.prefs[c] = rng.Uniform(band[0], band[1])
		}
		pop.Providers[i] = p
	}

	assignCapabilities(pop.Providers, cfg, rng)

	consumers := make([]Consumer, cfg.Consumers)
	consTrackers := make([]satisfaction.ConsumerTracker, cfg.Consumers)
	var consPrefs []float64
	if !cfg.HashedConsumerPrefs {
		consPrefs = make([]float64, cfg.Consumers*cfg.Providers)
	}
	for i := range consumers {
		c := &consumers[i]
		*c = Consumer{
			ID:        i,
			Upsilon:   cfg.Upsilon,
			Epsilon:   cfg.Epsilon,
			Tracker:   &consTrackers[i],
			SmoothSat: cfg.InitialSatisfaction,
			SmoothAdq: cfg.InitialSatisfaction,
			Alive:     true,
		}
		c.Tracker.Init(arena, cfg.ConsumerK, cfg.InitialSatisfaction, cfg.PriorSamples)
		if cfg.HashedConsumerPrefs {
			c.hashedPrefs = true
			c.prefSeed = rng.Uint64()
		} else {
			c.prefs = consPrefs[i*cfg.Providers : (i+1)*cfg.Providers : (i+1)*cfg.Providers]
			for j, p := range pop.Providers {
				band := cfg.InterestBands[p.InterestClass]
				c.prefs[j] = rng.Uniform(band[0], band[1])
			}
		}
		pop.Consumers[i] = c
	}
	return pop
}

// assignCapabilities draws each provider's advertised capability set for
// the heterogeneous scenarios (Config.CapabilitySelectivity): a provider is
// a generalist with probability GeneralistShare, otherwise it advertises
// CapabilityCount classes drawn uniformly without replacement. In the
// paper's homogeneous setup (selectivity 0 or ≥ 1) nothing is drawn at
// all, so the RNG stream — and therefore every downstream draw for a given
// seed — is byte-identical to the pre-capability implementation.
func assignCapabilities(providers []*Provider, cfg Config, rng *randx.Rand) {
	if !cfg.Heterogeneous() {
		return
	}
	total := len(cfg.QueryClasses)
	m := cfg.CapabilityCount()
	for _, p := range providers {
		if cfg.GeneralistShare > 0 && rng.Bool(cfg.GeneralistShare) {
			continue // stays a generalist (nil capability set)
		}
		perm := rng.Perm(total)
		p.SetCapabilities(perm[:m], total)
	}
}

// assignClasses deals n memberships according to shares (indexed by
// ClassLevel) and shuffles them so the three dimensions stay independent.
func assignClasses(n int, shares [3]float64, rng *randx.Rand) []ClassLevel {
	out := make([]ClassLevel, 0, n)
	counts := [3]int{}
	for lvl := 0; lvl < 2; lvl++ {
		counts[lvl] = int(shares[lvl]*float64(n) + 0.5)
	}
	counts[2] = n - counts[0] - counts[1]
	if counts[2] < 0 {
		counts[2] = 0
		counts[1] = n - counts[0]
		if counts[1] < 0 {
			counts[1] = 0
			counts[0] = n
		}
	}
	for lvl, cnt := range counts {
		for i := 0; i < cnt; i++ {
			out = append(out, ClassLevel(lvl))
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// TotalCapacity is the aggregate capacity of all providers (units/second),
// the paper's "total system capacity".
func (pop *Population) TotalCapacity() float64 {
	sum := 0.0
	for _, p := range pop.Providers {
		sum += p.Capacity
	}
	return sum
}

// AliveCapacity is the aggregate capacity of providers still registered.
func (pop *Population) AliveCapacity() float64 {
	sum := 0.0
	for _, p := range pop.Providers {
		if p.Alive {
			sum += p.Capacity
		}
	}
	return sum
}

// AliveProviders returns the providers still registered to the mediator.
func (pop *Population) AliveProviders() []*Provider {
	out := make([]*Provider, 0, len(pop.Providers))
	for _, p := range pop.Providers {
		if p.Alive {
			out = append(out, p)
		}
	}
	return out
}

// AliveConsumers returns the consumers still registered to the mediator.
func (pop *Population) AliveConsumers() []*Consumer {
	out := make([]*Consumer, 0, len(pop.Consumers))
	for _, c := range pop.Consumers {
		if c.Alive {
			out = append(out, c)
		}
	}
	return out
}

// ProviderValues maps providers to a metric value set; when aliveOnly is
// set, departed providers are skipped. Used by the §4 metric sampling.
func (pop *Population) ProviderValues(aliveOnly bool, f func(*Provider) float64) []float64 {
	out := make([]float64, 0, len(pop.Providers))
	for _, p := range pop.Providers {
		if aliveOnly && !p.Alive {
			continue
		}
		out = append(out, f(p))
	}
	return out
}

// ConsumerValues maps consumers to a metric value set.
func (pop *Population) ConsumerValues(aliveOnly bool, f func(*Consumer) float64) []float64 {
	out := make([]float64, 0, len(pop.Consumers))
	for _, c := range pop.Consumers {
		if aliveOnly && !c.Alive {
			continue
		}
		out = append(out, f(c))
	}
	return out
}

package model

import (
	"sqlb/internal/randx"
	"sqlb/internal/satisfaction"
)

// Population is the set of consumers and providers registered to the
// mediator, built per the Section 6.1 setup.
type Population struct {
	Consumers []*Consumer
	Providers []*Provider
	Classes   []QueryClass
	Config    Config
}

// NewPopulation builds a population from the configuration, drawing class
// memberships and preferences from rng. startTime anchors the utilization
// windows (normally 0).
func NewPopulation(cfg Config, rng *randx.Rand, startTime float64) *Population {
	pop := &Population{
		Consumers: make([]*Consumer, cfg.Consumers),
		Providers: make([]*Provider, cfg.Providers),
		Classes:   append([]QueryClass(nil), cfg.QueryClasses...),
		Config:    cfg,
	}

	interest := assignClasses(cfg.Providers, cfg.InterestShares, rng)
	adapt := assignClasses(cfg.Providers, cfg.AdaptShares, rng)
	capc := assignClasses(cfg.Providers, cfg.CapacityShares, rng)

	for i := range pop.Providers {
		p := &Provider{
			ID:            i,
			Epsilon:       cfg.Epsilon,
			InterestClass: interest[i],
			AdaptClass:    adapt[i],
			CapClass:      capc[i],
			Capacity:      cfg.CapacityFor(capc[i]),
			Reputation:    rng.Uniform(cfg.ReputationBand[0], cfg.ReputationBand[1]),
			Public:        satisfaction.NewProviderTracker(cfg.ProviderK, cfg.InitialSatisfaction, cfg.PriorSamples),
			Private:       satisfaction.NewProviderTracker(cfg.ProviderK, cfg.InitialSatisfaction, cfg.PriorSamples),
			SmoothSat:     cfg.InitialSatisfaction,
			SmoothAdq:     cfg.InitialSatisfaction,
			SmoothUt:      cfg.InitialSatisfaction,
			Alive:         true,
		}
		p.Util = NewUtilizationWindow(cfg.UtilizationWindow, p.Capacity, startTime)
		p.LoadHorizon = cfg.LoadHorizon
		band := cfg.AdaptBands[p.AdaptClass]
		p.prefs = make([]float64, len(cfg.QueryClasses))
		for c := range p.prefs {
			p.prefs[c] = rng.Uniform(band[0], band[1])
		}
		pop.Providers[i] = p
	}

	assignCapabilities(pop.Providers, cfg, rng)

	for i := range pop.Consumers {
		c := &Consumer{
			ID:        i,
			Upsilon:   cfg.Upsilon,
			Epsilon:   cfg.Epsilon,
			Tracker:   satisfaction.NewConsumerTracker(cfg.ConsumerK, cfg.InitialSatisfaction, cfg.PriorSamples),
			SmoothSat: cfg.InitialSatisfaction,
			SmoothAdq: cfg.InitialSatisfaction,
			Alive:     true,
			prefs:     make([]float64, cfg.Providers),
		}
		for j, p := range pop.Providers {
			band := cfg.InterestBands[p.InterestClass]
			c.prefs[j] = rng.Uniform(band[0], band[1])
		}
		pop.Consumers[i] = c
	}
	return pop
}

// assignCapabilities draws each provider's advertised capability set for
// the heterogeneous scenarios (Config.CapabilitySelectivity): a provider is
// a generalist with probability GeneralistShare, otherwise it advertises
// CapabilityCount classes drawn uniformly without replacement. In the
// paper's homogeneous setup (selectivity 0 or ≥ 1) nothing is drawn at
// all, so the RNG stream — and therefore every downstream draw for a given
// seed — is byte-identical to the pre-capability implementation.
func assignCapabilities(providers []*Provider, cfg Config, rng *randx.Rand) {
	if !cfg.Heterogeneous() {
		return
	}
	total := len(cfg.QueryClasses)
	m := cfg.CapabilityCount()
	for _, p := range providers {
		if cfg.GeneralistShare > 0 && rng.Bool(cfg.GeneralistShare) {
			continue // stays a generalist (nil capability set)
		}
		perm := rng.Perm(total)
		p.SetCapabilities(perm[:m], total)
	}
}

// assignClasses deals n memberships according to shares (indexed by
// ClassLevel) and shuffles them so the three dimensions stay independent.
func assignClasses(n int, shares [3]float64, rng *randx.Rand) []ClassLevel {
	out := make([]ClassLevel, 0, n)
	counts := [3]int{}
	for lvl := 0; lvl < 2; lvl++ {
		counts[lvl] = int(shares[lvl]*float64(n) + 0.5)
	}
	counts[2] = n - counts[0] - counts[1]
	if counts[2] < 0 {
		counts[2] = 0
		counts[1] = n - counts[0]
		if counts[1] < 0 {
			counts[1] = 0
			counts[0] = n
		}
	}
	for lvl, cnt := range counts {
		for i := 0; i < cnt; i++ {
			out = append(out, ClassLevel(lvl))
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// TotalCapacity is the aggregate capacity of all providers (units/second),
// the paper's "total system capacity".
func (pop *Population) TotalCapacity() float64 {
	sum := 0.0
	for _, p := range pop.Providers {
		sum += p.Capacity
	}
	return sum
}

// AliveCapacity is the aggregate capacity of providers still registered.
func (pop *Population) AliveCapacity() float64 {
	sum := 0.0
	for _, p := range pop.Providers {
		if p.Alive {
			sum += p.Capacity
		}
	}
	return sum
}

// AliveProviders returns the providers still registered to the mediator.
func (pop *Population) AliveProviders() []*Provider {
	out := make([]*Provider, 0, len(pop.Providers))
	for _, p := range pop.Providers {
		if p.Alive {
			out = append(out, p)
		}
	}
	return out
}

// AliveConsumers returns the consumers still registered to the mediator.
func (pop *Population) AliveConsumers() []*Consumer {
	out := make([]*Consumer, 0, len(pop.Consumers))
	for _, c := range pop.Consumers {
		if c.Alive {
			out = append(out, c)
		}
	}
	return out
}

// ProviderValues maps providers to a metric value set; when aliveOnly is
// set, departed providers are skipped. Used by the §4 metric sampling.
func (pop *Population) ProviderValues(aliveOnly bool, f func(*Provider) float64) []float64 {
	out := make([]float64, 0, len(pop.Providers))
	for _, p := range pop.Providers {
		if aliveOnly && !p.Alive {
			continue
		}
		out = append(out, f(p))
	}
	return out
}

// ConsumerValues maps consumers to a metric value set.
func (pop *Population) ConsumerValues(aliveOnly bool, f func(*Consumer) float64) []float64 {
	out := make([]float64, 0, len(pop.Consumers))
	for _, c := range pop.Consumers {
		if aliveOnly && !c.Alive {
			continue
		}
		out = append(out, f(c))
	}
	return out
}

package model

import (
	"testing"

	"sqlb/internal/randx"
)

func TestCanServeDefaultsToAllClasses(t *testing.T) {
	p := &Provider{}
	if !p.CanServe(0) || !p.CanServe(7) {
		t.Error("generalist must serve every class")
	}
	if p.CanServe(-1) {
		t.Error("negative class must never match")
	}
	if !p.Generalist() {
		t.Error("nil capability set must read as generalist")
	}
}

func TestSetCapabilities(t *testing.T) {
	p := &Provider{}
	p.SetCapabilities([]int{1, 3, 70}, 80)
	for class, want := range map[int]bool{0: false, 1: true, 2: false, 3: true, 70: true, 79: false, 80: false} {
		if got := p.CanServe(class); got != want {
			t.Errorf("CanServe(%d) = %v, want %v", class, got, want)
		}
	}
	if p.Generalist() {
		t.Error("explicit set must not read as generalist")
	}
	if got := p.CapabilityClasses(80); len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 70 {
		t.Errorf("CapabilityClasses = %v, want [1 3 70]", got)
	}
	p.ClearCapabilities()
	if !p.CanServe(5) || !p.Generalist() {
		t.Error("ClearCapabilities must restore the all-classes default")
	}
	// Empty set with a positive total: serves nothing.
	p.SetCapabilities(nil, 4)
	if p.CanServe(0) || p.CanServe(3) {
		t.Error("empty capability set must serve nothing")
	}
}

func TestWithClasses(t *testing.T) {
	cfg := DefaultConfig().WithClasses(5)
	if len(cfg.QueryClasses) != 5 {
		t.Fatalf("classes = %d, want 5", len(cfg.QueryClasses))
	}
	if cfg.QueryClasses[0].Units != 130 || cfg.QueryClasses[4].Units != 150 {
		t.Errorf("units span %v..%v, want 130..150",
			cfg.QueryClasses[0].Units, cfg.QueryClasses[4].Units)
	}
	if got := cfg.MeanQueryUnits(); got != 140 {
		t.Errorf("mean units = %v, want the paper's 140", got)
	}
	if got := len(DefaultConfig().WithClasses(1).QueryClasses); got != 2 {
		t.Errorf("WithClasses(1) left %d classes, want the paper's 2 unchanged", got)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("WithClasses config invalid: %v", err)
	}
}

func TestHeterogeneousPopulationCapabilities(t *testing.T) {
	cfg := DefaultConfig().WithClasses(10)
	cfg.Consumers = 5
	cfg.Providers = 60
	cfg.CapabilitySelectivity = 0.2
	pop := NewPopulation(cfg, randx.New(17), 0)
	want := cfg.CapabilityCount()
	if want != 2 {
		t.Fatalf("CapabilityCount = %d, want 2 (0.2 × 10)", want)
	}
	for _, p := range pop.Providers {
		got := len(p.CapabilityClasses(10))
		if got != want {
			t.Errorf("provider %d advertises %d classes, want %d", p.ID, got, want)
		}
	}
}

func TestGeneralistShare(t *testing.T) {
	cfg := DefaultConfig().WithClasses(8)
	cfg.Consumers = 5
	cfg.Providers = 200
	cfg.CapabilitySelectivity = 0.25
	cfg.GeneralistShare = 0.5
	pop := NewPopulation(cfg, randx.New(23), 0)
	generalists := 0
	for _, p := range pop.Providers {
		if p.Generalist() {
			generalists++
		}
	}
	if generalists < 60 || generalists > 140 {
		t.Errorf("generalists = %d of 200, want ≈100 at share 0.5", generalists)
	}
}

func TestHomogeneousStreamUnperturbed(t *testing.T) {
	// The capability machinery must not consume RNG draws in the paper's
	// homogeneous setup: populations with and without the (inactive)
	// capability fields set must be identical.
	base := DefaultConfig()
	base.Consumers = 4
	base.Providers = 10
	withFields := base
	withFields.CapabilitySelectivity = 0 // inactive
	withFields.ClassSkew = 0
	a := NewPopulation(base, randx.New(31), 0)
	b := NewPopulation(withFields, randx.New(31), 0)
	for i := range a.Providers {
		if a.Providers[i].Reputation != b.Providers[i].Reputation ||
			a.Providers[i].Preference(0) != b.Providers[i].Preference(0) {
			t.Fatalf("provider %d diverged in the homogeneous setup", i)
		}
		if !b.Providers[i].Generalist() {
			t.Fatalf("provider %d not a generalist in the homogeneous setup", i)
		}
	}
	for i := range a.Consumers {
		if a.Consumers[i].Preference(a.Providers[0], 0) != b.Consumers[i].Preference(b.Providers[0], 0) {
			t.Fatalf("consumer %d diverged in the homogeneous setup", i)
		}
	}
}

func TestClassWeights(t *testing.T) {
	cfg := DefaultConfig().WithClasses(4)
	if cfg.ClassWeights() != nil {
		t.Error("zero skew must yield nil (uniform) weights")
	}
	cfg.ClassSkew = 1
	w := cfg.ClassWeights()
	if len(w) != 4 {
		t.Fatalf("weights len = %d, want 4", len(w))
	}
	for i := 1; i < len(w); i++ {
		if w[i] >= w[i-1] {
			t.Errorf("weights not decreasing: w[%d]=%v >= w[%d]=%v", i, w[i], i-1, w[i-1])
		}
	}
	if w[0] != 1 || w[1] != 0.5 {
		t.Errorf("skew-1 weights = %v, want 1, 1/2, 1/3, 1/4", w[:2])
	}
	// Weighted mean units: skew favors class 0 (130 units), pulling the
	// mean below the uniform 140.
	if got := cfg.MeanQueryUnitsWeighted(); !(got < 140 && got > 130) {
		t.Errorf("weighted mean units = %v, want in (130,140)", got)
	}
	if got := DefaultConfig().MeanQueryUnitsWeighted(); got != 140 {
		t.Errorf("uniform weighted mean = %v, want 140", got)
	}
}

func TestConfigValidateCapabilityFields(t *testing.T) {
	bad := DefaultConfig()
	bad.CapabilitySelectivity = -0.1
	bad.GeneralistShare = 1.5
	bad.ClassSkew = -2
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid capability fields accepted")
	}
	good := DefaultConfig().WithClasses(6)
	good.CapabilitySelectivity = 0.1
	good.GeneralistShare = 0.2
	good.ClassSkew = 1.2
	if err := good.Validate(); err != nil {
		t.Fatalf("valid capability fields rejected: %v", err)
	}
}

package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUtilizationBasics(t *testing.T) {
	u := NewUtilizationWindow(10, 100, 0) // W=10s, cap=100 u/s
	if got := u.Utilization(0); got != 0 {
		t.Errorf("fresh utilization = %v, want 0", got)
	}
	// 500 units over the first 5 seconds: Ut = 500/(100·5) = 1.
	u.Add(1, 250)
	u.Add(4, 250)
	if got := u.Utilization(5); math.Abs(got-1) > 1e-9 {
		t.Errorf("early-horizon utilization = %v, want 1", got)
	}
	// At t=20 both events have left the window.
	if got := u.Utilization(20); got != 0 {
		t.Errorf("post-eviction utilization = %v, want 0", got)
	}
}

func TestUtilizationSteadyState(t *testing.T) {
	// A provider of capacity 100 receiving 80 units/s should read Ut ≈ 0.8
	// — the paper's "optimal utilization is 0.8 at 80% workload".
	u := NewUtilizationWindow(30, 100, 0)
	for ti := 0; ti < 300; ti++ {
		u.Add(float64(ti), 80)
	}
	got := u.Utilization(300)
	if math.Abs(got-0.8) > 0.03 {
		t.Errorf("steady-state utilization = %v, want ≈0.8", got)
	}
}

func TestUtilizationOverload(t *testing.T) {
	// Concentrated load can push Ut far above 1 (the Mariposa-like
	// behaviour of Figure 4(g)).
	u := NewUtilizationWindow(30, 100, 0)
	for ti := 0; ti < 60; ti++ {
		u.Add(float64(ti), 350)
	}
	if got := u.Utilization(60); got < 3 {
		t.Errorf("overloaded utilization = %v, want > 3", got)
	}
}

func TestUtilizationEvictionAndCompaction(t *testing.T) {
	u := NewUtilizationWindow(1, 10, 0)
	for ti := 0; ti < 1000; ti++ {
		u.Add(float64(ti), 1)
		u.Utilization(float64(ti))
	}
	if got := u.Pending(); got > 4 {
		t.Errorf("window retains %d events, want <= 4 after compaction", got)
	}
}

func TestUtilizationAssignedRate(t *testing.T) {
	u := NewUtilizationWindow(10, 50, 0)
	u.Add(0.5, 100)
	rate := u.AssignedRate(1)
	if math.Abs(rate-100) > 1e-6 {
		t.Errorf("assigned rate = %v, want 100 units/s over 1s horizon", rate)
	}
}

func TestUtilizationGuards(t *testing.T) {
	u := NewUtilizationWindow(-5, -3, 0) // nonsense inputs clamped
	u.Add(0, 1)
	if got := u.Utilization(0.5); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("guarded utilization = %v, want finite", got)
	}
	if u.Window() != 1 {
		t.Errorf("window = %v, want clamped 1", u.Window())
	}
}

func TestUtilizationNonNegativeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		u := NewUtilizationWindow(5, 10, 0)
		now := 0.0
		for _, v := range raw {
			vv := math.Mod(v, 1000) // tame extreme magnitudes before deriving inputs
			if math.IsNaN(vv) {
				vv = 0
			}
			dt := math.Abs(math.Mod(vv, 3))
			now += dt
			u.Add(now, math.Abs(math.Mod(vv*7, 100)))
			if got := u.Utilization(now); got < 0 || math.IsNaN(got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUtilizationMonotoneEvictionProperty(t *testing.T) {
	// Waiting with no new assignments can only decrease utilization once
	// past the initial horizon growth.
	f := func(units uint16, wait uint8) bool {
		u := NewUtilizationWindow(10, 100, 0)
		u.Add(0, float64(units%1000)+1)
		at10 := u.Utilization(10)
		later := u.Utilization(10 + float64(wait%50))
		return later <= at10+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package workload

import (
	"math"
	"testing"

	"sqlb/internal/model"
	"sqlb/internal/randx"
)

func TestConstantProfile(t *testing.T) {
	p := Constant(0.8)
	for _, tt := range []float64{0, 1, 1e6} {
		if got := p.Fraction(tt); got != 0.8 {
			t.Errorf("Fraction(%v) = %v, want 0.8", tt, got)
		}
	}
}

func TestRampProfile(t *testing.T) {
	r := Ramp{From: 0.3, To: 1.0, Duration: 100}
	tests := []struct{ t, want float64 }{
		{-5, 0.3}, {0, 0.3}, {50, 0.65}, {100, 1.0}, {500, 1.0},
	}
	for _, tt := range tests {
		if got := r.Fraction(tt.t); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Fraction(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
	// Degenerate duration holds the target.
	if got := (Ramp{From: 0.3, To: 1, Duration: 0}).Fraction(0); got != 1 {
		t.Errorf("zero-duration ramp = %v, want To", got)
	}
}

func TestArrivalRate(t *testing.T) {
	// Paper scale: total capacity ≈ 400 providers, mean query 140 units.
	// At 100% workload λ = cap/140.
	cap := 20571.4
	if got := ArrivalRate(1.0, cap, 140); math.Abs(got-cap/140) > 1e-9 {
		t.Errorf("rate = %v, want %v", got, cap/140)
	}
	if got := ArrivalRate(0.5, cap, 140); math.Abs(got-cap/280) > 1e-9 {
		t.Errorf("half-workload rate = %v", got)
	}
	for _, bad := range [][3]float64{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, 1, 1}} {
		if got := ArrivalRate(bad[0], bad[1], bad[2]); got != 0 {
			t.Errorf("degenerate ArrivalRate(%v) = %v, want 0", bad, got)
		}
	}
}

func TestGeneratorQueries(t *testing.T) {
	cfg := model.DefaultConfig()
	cfg.Consumers = 1
	cfg.Providers = 1
	pop := model.NewPopulation(cfg, randx.New(1), 0)
	g := NewGenerator(cfg.QueryClasses, 1, randx.New(2))

	counts := map[int]int{}
	var lastID uint64
	for i := 0; i < 10000; i++ {
		q := g.Next(float64(i), pop.Consumers[0])
		if q.ID <= lastID {
			t.Fatal("query IDs must increase")
		}
		lastID = q.ID
		if q.Consumer != pop.Consumers[0] {
			t.Fatal("wrong consumer")
		}
		if q.N != 1 {
			t.Fatalf("q.n = %d, want 1", q.N)
		}
		if q.Units != cfg.QueryClasses[q.Class].Units {
			t.Fatalf("units %v do not match class %d", q.Units, q.Class)
		}
		if q.IssuedAt != float64(i) {
			t.Fatalf("IssuedAt = %v, want %v", q.IssuedAt, float64(i))
		}
		counts[q.Class]++
	}
	// Uniform class mix: both classes near 50%.
	frac := float64(counts[0]) / 10000
	if math.Abs(frac-0.5) > 0.03 {
		t.Errorf("class-0 fraction = %v, want ≈0.5", frac)
	}
	if g.Issued() != 10000 {
		t.Errorf("Issued = %d, want 10000", g.Issued())
	}
}

func TestGeneratorQNFloor(t *testing.T) {
	g := NewGenerator([]model.QueryClass{{Units: 100}}, 0, randx.New(3))
	cfg := model.DefaultConfig()
	cfg.Consumers = 1
	cfg.Providers = 1
	pop := model.NewPopulation(cfg, randx.New(1), 0)
	if q := g.Next(0, pop.Consumers[0]); q.N != 1 {
		t.Errorf("q.n = %d, want floored 1", q.N)
	}
}

func TestGeneratorClassWeights(t *testing.T) {
	cfg := model.DefaultConfig().WithClasses(4)
	cfg.Consumers = 1
	cfg.Providers = 1
	cfg.ClassSkew = 1
	pop := model.NewPopulation(cfg, randx.New(1), 0)
	g := NewGenerator(cfg.QueryClasses, 1, randx.New(5))
	g.SetClassWeights(cfg.ClassWeights())

	counts := map[int]int{}
	for i := 0; i < 20000; i++ {
		counts[g.Next(float64(i), pop.Consumers[0]).Class]++
	}
	// Zipf(1) over 4 classes: P(0) = 1/(1+1/2+1/3+1/4) = 0.48.
	frac0 := float64(counts[0]) / 20000
	if math.Abs(frac0-0.48) > 0.03 {
		t.Errorf("class-0 fraction = %v, want ≈0.48 under skew 1", frac0)
	}
	for c := 1; c < 4; c++ {
		if counts[c] >= counts[c-1] {
			t.Errorf("class %d drawn %d ≥ class %d drawn %d; skew must rank popularity",
				c, counts[c], c-1, counts[c-1])
		}
	}
	if counts[3] == 0 {
		t.Error("least-popular class never drawn")
	}
}

func TestGeneratorWeightsEdgeCases(t *testing.T) {
	classes := []model.QueryClass{{Units: 100}, {Units: 200}}
	cfg := model.DefaultConfig()
	cfg.Consumers = 1
	cfg.Providers = 1
	pop := model.NewPopulation(cfg, randx.New(1), 0)

	// Mis-sized, all-zero, and nil weight slices all restore uniform.
	for _, w := range [][]float64{{1, 2, 3}, {0, 0}, nil, {-1, -2}} {
		g := NewGenerator(classes, 1, randx.New(6))
		g.SetClassWeights(w)
		seen := map[int]bool{}
		for i := 0; i < 200; i++ {
			seen[g.Next(0, pop.Consumers[0]).Class] = true
		}
		if !seen[0] || !seen[1] {
			t.Errorf("weights %v: both classes should appear under the uniform fallback", w)
		}
	}

	// A zero-weight class is never drawn.
	g := NewGenerator(classes, 1, randx.New(7))
	g.SetClassWeights([]float64{0, 1})
	for i := 0; i < 200; i++ {
		if q := g.Next(0, pop.Consumers[0]); q.Class != 1 {
			t.Fatalf("zero-weight class drawn (class %d)", q.Class)
		}
	}
}

func TestGeneratorSingleClass(t *testing.T) {
	g := NewGenerator([]model.QueryClass{{Units: 42}}, 2, randx.New(4))
	cfg := model.DefaultConfig()
	cfg.Consumers = 1
	cfg.Providers = 1
	pop := model.NewPopulation(cfg, randx.New(1), 0)
	q := g.Next(1, pop.Consumers[0])
	if q.Class != 0 || q.Units != 42 || q.N != 2 {
		t.Errorf("unexpected query %+v", q)
	}
}

// Package workload generates the query workload of the paper's evaluation
// (Section 6.1): queries arrive in a Poisson process whose rate realizes a
// target workload expressed as a fraction of the total system capacity;
// each query belongs to one of the configured classes (130 or 150 treatment
// units) and is issued by a uniformly chosen alive consumer.
package workload

import (
	"sqlb/internal/model"
	"sqlb/internal/randx"
)

// Profile maps simulation time to the target workload fraction of total
// system capacity. The paper uses constant workloads (Figures 4(i), 5, 6,
// Table 3) and a uniform 30%→100% ramp (Figures 4(a)-(h)).
type Profile interface {
	Fraction(t float64) float64
}

// Constant is a fixed workload fraction.
type Constant float64

// Fraction implements Profile.
func (c Constant) Fraction(float64) float64 { return float64(c) }

// Ramp increases the workload linearly from From to To over [0, Duration],
// holding To afterwards — the Section 6.3.1 "starts with a workload of 30%
// that uniformly increases up to 100%".
type Ramp struct {
	From, To float64
	Duration float64
}

// Fraction implements Profile.
func (r Ramp) Fraction(t float64) float64 {
	if r.Duration <= 0 || t >= r.Duration {
		return r.To
	}
	if t <= 0 {
		return r.From
	}
	return r.From + (r.To-r.From)*(t/r.Duration)
}

// ArrivalRate converts a workload fraction into a Poisson arrival rate
// (queries/second): a workload of x means the offered work equals x times
// the total system capacity, so λ = x · totalCapacity / E[units per query].
// The reference capacity is the *initial* total capacity: when providers
// depart, the offered load stays, which is exactly how departures hurt the
// remaining system (Section 6.3.2).
func ArrivalRate(fraction, totalCapacity, meanUnits float64) float64 {
	if fraction <= 0 || totalCapacity <= 0 || meanUnits <= 0 {
		return 0
	}
	return fraction * totalCapacity / meanUnits
}

// Generator mints queries: the configured class mix (uniform by default,
// weighted under skew), the configured q.n, unique IDs, issued by the
// consumer the caller picked.
type Generator struct {
	classes []model.QueryClass
	queryN  int
	rng     *randx.Rand
	nextID  uint64
	// cum is the cumulative class-weight distribution; nil keeps the
	// paper's uniform mix (and the exact historical draw sequence).
	cum []float64
}

// NewGenerator returns a generator over the given classes with the desired
// q.n, drawing a uniform class mix from rng (the Section 6.1 workload).
func NewGenerator(classes []model.QueryClass, queryN int, rng *randx.Rand) *Generator {
	if queryN < 1 {
		queryN = 1
	}
	return &Generator{classes: classes, queryN: queryN, rng: rng}
}

// SetClassWeights switches the generator to a weighted class mix — the
// skewed-popularity scenarios (model.Config.ClassSkew). Weights need not
// be normalized; non-positive entries get zero probability. A nil or
// all-zero slice restores the uniform mix. The weighted path draws exactly
// one Float64 per query, so enabling weights changes the draw per query
// but never the number of draws.
func (g *Generator) SetClassWeights(weights []float64) {
	g.cum = nil
	if len(weights) != len(g.classes) {
		return
	}
	total := 0.0
	cum := make([]float64, len(weights))
	for i, w := range weights {
		if w > 0 {
			total += w
		}
		cum[i] = total
	}
	if total <= 0 {
		return
	}
	for i := range cum {
		cum[i] /= total
	}
	g.cum = cum
}

// Next mints the next query for consumer c at time now.
func (g *Generator) Next(now float64, c *model.Consumer) *model.Query {
	g.nextID++
	class := g.pickClass()
	units := 0.0
	if class < len(g.classes) {
		units = g.classes[class].Units
	}
	return &model.Query{
		ID:       g.nextID,
		Consumer: c,
		Class:    class,
		Units:    units,
		N:        g.queryN,
		IssuedAt: now,
	}
}

// pickClass draws the query class: uniformly (the historical stream) or by
// inverse-CDF over the configured weights.
func (g *Generator) pickClass() int {
	if g.cum != nil {
		u := g.rng.Float64()
		for i, c := range g.cum {
			if u < c {
				return i
			}
		}
		return len(g.cum) - 1
	}
	if len(g.classes) > 1 {
		return g.rng.Pick(len(g.classes))
	}
	return 0
}

// Issued returns how many queries have been minted.
func (g *Generator) Issued() uint64 { return g.nextID }

// Package matchmaking implements the matchmaking step of the mediation
// layer (Figure 1 / line 1 of Algorithm 1): finding Pq, the set of
// providers able to treat a query. The paper assumes a sound and complete
// matchmaking procedure (Section 2, refs [11,14]) and, in its experiments,
// that every provider can perform every query; this package supplies the
// indexed procedure that makes heterogeneous capability scenarios cheap.
//
// The core type is Index, an inverted capability index: one posting list
// per query class, holding the registered providers that advertise the
// class in ascending ID order. The index is maintained incrementally as
// providers register (Add), depart (Remove), or fail (lazy pruning of the
// Alive flag at lookup), in the spirit of maintaining query results under
// updates rather than recomputing them per query (cf. "Conjunctive Queries
// with Free Access Patterns under Updates", PAPERS.md). A mediator lookup
// is then O(|Pq|) — it touches only the candidate subset — instead of the
// O(|P|) full-population scan of the naive procedure.
package matchmaking

import (
	"sort"

	"sqlb/internal/model"
)

// Index is the inverted capability index: postings[class] lists the
// registered providers advertising that class, sorted by ascending
// provider ID — the same order the naive population scan produces, so
// switching the mediator from scan to index leaves every allocation
// byte-identical.
//
// Liveness contract: Remove keeps the lists exact under announced
// departures; a provider whose Alive flag is flipped without a Remove call
// is pruned lazily at the next Lookup of each class it advertised.
// Departures are permanent in the model (Section 6.3.2) — a revived
// provider must be re-registered with Add. Lookups return the index's
// internal slice, valid until the next mutation of that class; callers
// must not modify or retain it across mediations. Index is
// not safe for concurrent use; the discrete-event engine drives it from a
// single goroutine, and a concurrent mediation server must wrap it in its
// commit lock.
type Index struct {
	classes  int
	postings [][]*model.Provider
}

// NewIndex returns an empty index over the given number of query classes.
func NewIndex(classes int) *Index {
	if classes < 1 {
		classes = 1
	}
	return &Index{classes: classes, postings: make([][]*model.Provider, classes)}
}

// BuildIndex indexes every alive provider of the population over the
// population's query classes — the registration snapshot the mediator
// starts from.
func BuildIndex(pop *model.Population) *Index {
	ix := NewIndex(len(pop.Classes))
	for _, p := range pop.Providers {
		if p.Alive {
			ix.Add(p)
		}
	}
	return ix
}

// Classes returns the number of query classes the index covers.
func (ix *Index) Classes() int { return ix.classes }

// Add registers a provider: it is inserted, in ID position, into the
// posting list of every class it advertises. Adding an already-registered
// provider is a no-op per class.
func (ix *Index) Add(p *model.Provider) {
	for c := 0; c < ix.classes; c++ {
		if !p.CanServe(c) {
			continue
		}
		list := ix.postings[c]
		i := sort.Search(len(list), func(i int) bool { return list[i].ID >= p.ID })
		if i < len(list) && list[i] == p {
			continue
		}
		list = append(list, nil)
		copy(list[i+1:], list[i:])
		list[i] = p
		ix.postings[c] = list
	}
}

// Remove deregisters a provider from every class it advertises — the
// incremental maintenance step for announced departures (Section 6.3.2).
// Removing an unregistered provider is a no-op.
func (ix *Index) Remove(p *model.Provider) {
	for c := 0; c < ix.classes; c++ {
		if !p.CanServe(c) {
			continue
		}
		list := ix.postings[c]
		i := sort.Search(len(list), func(i int) bool { return list[i].ID >= p.ID })
		if i >= len(list) || list[i] != p {
			continue
		}
		ix.postings[c] = append(list[:i], list[i+1:]...)
	}
}

// Lookup returns Pq for a query class: the registered, alive providers
// advertising the class in ascending ID order. Providers that departed
// without a Remove call are pruned from the posting list on the way (their
// departure is permanent, so the pruning is sound). Classes outside
// [0, Classes()) have no providers. The returned slice is the index's
// internal list — read-only, valid until the next mutation of the class.
func (ix *Index) Lookup(class int) []*model.Provider {
	if class < 0 || class >= ix.classes {
		return nil
	}
	list := ix.postings[class]
	for _, p := range list {
		if !p.Alive {
			return ix.prune(class)
		}
	}
	return list
}

// prune compacts a posting list around departed providers in place.
func (ix *Index) prune(class int) []*model.Provider {
	list := ix.postings[class]
	kept := list[:0]
	for _, p := range list {
		if p.Alive {
			kept = append(kept, p)
		}
	}
	// Zero the tail so dropped providers do not leak through the backing
	// array.
	for i := len(kept); i < len(list); i++ {
		list[i] = nil
	}
	ix.postings[class] = kept
	return kept
}

// PostingLen returns the current length of a class's posting list,
// including any not-yet-pruned departed providers. Tests and capacity
// planning use it; mediation goes through Lookup.
func (ix *Index) PostingLen(class int) int {
	if class < 0 || class >= ix.classes {
		return 0
	}
	return len(ix.postings[class])
}

// Match implements mediator.Matchmaker (the interface is satisfied
// structurally; this package does not import mediator to keep the
// dependency arrow pointing matchmaking ← mediator-user). The population
// argument is ignored — the index already holds the candidate sets.
func (ix *Index) Match(q *model.Query, _ *model.Population) []*model.Provider {
	return ix.Lookup(q.Class)
}

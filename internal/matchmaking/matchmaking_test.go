package matchmaking

import (
	"testing"

	"sqlb/internal/mediator"
	"sqlb/internal/model"
	"sqlb/internal/randx"
)

// capPop builds a population with nClasses query classes and the given
// capability selectivity (0 = homogeneous generalists).
func capPop(t *testing.T, providers, nClasses int, selectivity float64, seed uint64) *model.Population {
	t.Helper()
	cfg := model.DefaultConfig().WithClasses(nClasses)
	cfg.Consumers = 2
	cfg.Providers = providers
	cfg.CapabilitySelectivity = selectivity
	if err := cfg.Validate(); err != nil {
		t.Fatalf("config: %v", err)
	}
	return model.NewPopulation(cfg, randx.New(seed), 0)
}

func TestBuildIndexHomogeneous(t *testing.T) {
	pop := capPop(t, 12, 4, 0, 1)
	ix := BuildIndex(pop)
	if ix.Classes() != 4 {
		t.Fatalf("classes = %d, want 4", ix.Classes())
	}
	for c := 0; c < 4; c++ {
		pq := ix.Lookup(c)
		if len(pq) != 12 {
			t.Errorf("class %d posting = %d providers, want all 12 (homogeneous)", c, len(pq))
		}
		for i := 1; i < len(pq); i++ {
			if pq[i-1].ID >= pq[i].ID {
				t.Fatalf("class %d posting not in ascending ID order", c)
			}
		}
	}
}

func TestIndexMatchesNaiveScanHeterogeneous(t *testing.T) {
	pop := capPop(t, 40, 8, 0.25, 3)
	ix := BuildIndex(pop)
	oracle := mediator.ByCapability()
	for c := 0; c < 8; c++ {
		q := &model.Query{Class: c}
		want := oracle.Match(q, pop)
		got := ix.Lookup(c)
		if len(got) != len(want) {
			t.Fatalf("class %d: index %d providers, scan %d", c, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("class %d: index[%d] = provider %d, scan has %d", c, i, got[i].ID, want[i].ID)
			}
		}
	}
}

func TestIndexRemoveMaintainsPostings(t *testing.T) {
	pop := capPop(t, 10, 3, 0, 5)
	ix := BuildIndex(pop)
	p := pop.Providers[4]
	p.Alive = false
	ix.Remove(p)
	for c := 0; c < 3; c++ {
		if got := ix.PostingLen(c); got != 9 {
			t.Errorf("class %d posting len = %d after Remove, want 9", c, got)
		}
		for _, q := range ix.Lookup(c) {
			if q == p {
				t.Fatalf("removed provider still matched for class %d", c)
			}
		}
	}
	// Removing again is a no-op.
	ix.Remove(p)
	if got := ix.PostingLen(0); got != 9 {
		t.Errorf("double Remove changed posting len to %d", got)
	}
}

func TestIndexLazyPruneOnExternalDeparture(t *testing.T) {
	// A provider whose Alive flag is flipped without a Remove call (the
	// failure path) must disappear from lookups, and the posting list must
	// compact on the way.
	pop := capPop(t, 8, 2, 0, 9)
	ix := BuildIndex(pop)
	pop.Providers[0].Alive = false
	pop.Providers[7].Alive = false
	pq := ix.Lookup(1)
	if len(pq) != 6 {
		t.Fatalf("lookup after external departures = %d providers, want 6", len(pq))
	}
	for _, p := range pq {
		if !p.Alive {
			t.Fatal("dead provider matched")
		}
	}
	if got := ix.PostingLen(1); got != 6 {
		t.Errorf("posting not compacted: len %d, want 6", got)
	}
	// Class 0 was not looked up; its posting still holds the stale entries
	// until its own next lookup.
	if got := ix.PostingLen(0); got != 8 {
		t.Errorf("untouched posting len = %d, want 8 (lazy)", got)
	}
}

func TestIndexAddReRegisters(t *testing.T) {
	pop := capPop(t, 6, 2, 0, 11)
	ix := BuildIndex(pop)
	p := pop.Providers[2]
	p.Alive = false
	ix.Remove(p)
	p.Alive = true
	ix.Add(p)
	pq := ix.Lookup(0)
	if len(pq) != 6 {
		t.Fatalf("re-registered lookup = %d providers, want 6", len(pq))
	}
	for i := 1; i < len(pq); i++ {
		if pq[i-1].ID >= pq[i].ID {
			t.Fatal("re-registration broke ID order")
		}
	}
	// Double Add is a per-class no-op.
	ix.Add(p)
	if got := ix.PostingLen(0); got != 6 {
		t.Errorf("double Add inflated posting to %d", got)
	}
}

func TestEmptyPostingList(t *testing.T) {
	// A class no provider advertises: the posting list is empty and the
	// mediator turns it into ErrNoProviders (covered in sim and mediator
	// tests); here the lookup itself must return nothing for both an
	// unserved class and out-of-range classes.
	pop := capPop(t, 6, 4, 0.25, 2)
	for _, p := range pop.Providers {
		p.SetCapabilities([]int{0}, 4) // everyone serves only class 0
	}
	ix := BuildIndex(pop)
	if got := len(ix.Lookup(3)); got != 0 {
		t.Errorf("unserved class matched %d providers", got)
	}
	if ix.Lookup(-1) != nil || ix.Lookup(4) != nil {
		t.Error("out-of-range class must match nothing")
	}
	if got := len(ix.Lookup(0)); got != 6 {
		t.Errorf("served class matched %d providers, want 6", got)
	}
}

func TestIndexMatchImplementsMatchmaker(t *testing.T) {
	var _ mediator.Matchmaker = NewIndex(1)
	pop := capPop(t, 5, 2, 0, 8)
	ix := BuildIndex(pop)
	q := &model.Query{Class: 1}
	if got := len(ix.Match(q, pop)); got != 5 {
		t.Errorf("Match returned %d providers, want 5", got)
	}
}

package matchmaking

import (
	"testing"

	"sqlb/internal/mediator"
	"sqlb/internal/model"
	"sqlb/internal/randx"
)

// TestIndexEquivalentToNaiveScanUnderChurn is the tentpole's soundness and
// completeness contract: across randomized populations, capability
// selectivities, class skews, and churn sequences (announced departures,
// unannounced failures, re-registrations), the indexed matchmaker must
// return exactly the same Pq — same providers, same order — as the naive
// full-population predicate scan (mediator.ByCapability).
func TestIndexEquivalentToNaiveScanUnderChurn(t *testing.T) {
	oracle := mediator.ByCapability()
	rng := randx.New(20260729)

	check := func(trial int, ix *Index, pop *model.Population, nClasses int) {
		t.Helper()
		for c := 0; c < nClasses; c++ {
			q := &model.Query{Class: c}
			want := oracle.Match(q, pop)
			got := ix.Lookup(c)
			if len(got) != len(want) {
				t.Fatalf("trial %d class %d: index |Pq| = %d, scan %d", trial, c, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d class %d pos %d: index provider %d, scan provider %d",
						trial, c, i, got[i].ID, want[i].ID)
				}
			}
		}
	}

	for trial := 0; trial < 60; trial++ {
		nClasses := 1 + rng.Pick(12)
		nProviders := 1 + rng.Pick(60)
		cfg := model.DefaultConfig().WithClasses(nClasses)
		cfg.Consumers = 1
		cfg.Providers = nProviders
		cfg.CapabilitySelectivity = rng.Float64() // 0..1: homogeneous through heavy specialism
		cfg.GeneralistShare = rng.Float64() * 0.5
		cfg.ClassSkew = rng.Float64() * 2
		pop := model.NewPopulation(cfg, randx.New(uint64(trial)+1), 0)
		ix := BuildIndex(pop)
		check(trial, ix, pop, nClasses)

		// Churn: a random sequence of announced departures, unannounced
		// failures, and re-registrations, with equivalence re-checked
		// after every step.
		for step := 0; step < 30; step++ {
			p := pop.Providers[rng.Pick(nProviders)]
			switch rng.Pick(3) {
			case 0: // announced departure (engine path: flag + Remove)
				p.Alive = false
				ix.Remove(p)
			case 1: // unannounced failure (lazy-prune path)
				p.Alive = false
			case 2: // re-registration
				p.Alive = true
				ix.Add(p)
			}
			check(trial, ix, pop, nClasses)
		}
	}
}

// TestIndexEquivalentUnderWaveChurn extends the churn property to the
// scenario engine's wave pattern: instead of one provider at a time, an
// outage wave removes a whole batch in one burst (flag + Remove each) and
// a rejoin wave re-registers a batch of the outage victims. Equivalence
// with the naive scan must hold after every wave — batches must not leave
// posting lists in a partially-pruned state.
func TestIndexEquivalentUnderWaveChurn(t *testing.T) {
	oracle := mediator.ByCapability()
	rng := randx.New(20260807)

	for trial := 0; trial < 40; trial++ {
		nClasses := 1 + rng.Pick(10)
		nProviders := 2 + rng.Pick(80)
		cfg := model.DefaultConfig().WithClasses(nClasses)
		cfg.Consumers = 1
		cfg.Providers = nProviders
		cfg.CapabilitySelectivity = 0.1 + rng.Float64()*0.9
		cfg.ClassSkew = rng.Float64()
		pop := model.NewPopulation(cfg, randx.New(uint64(trial)+100), 0)
		ix := BuildIndex(pop)

		check := func(wave int) {
			t.Helper()
			for c := 0; c < nClasses; c++ {
				q := &model.Query{Class: c}
				want := oracle.Match(q, pop)
				got := ix.Lookup(c)
				if len(got) != len(want) {
					t.Fatalf("trial %d wave %d class %d: index |Pq| = %d, scan %d",
						trial, wave, c, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("trial %d wave %d class %d pos %d: index provider %d, scan provider %d",
							trial, wave, c, i, got[i].ID, want[i].ID)
					}
				}
			}
		}

		var down []*model.Provider
		for wave := 0; wave < 8; wave++ {
			if rng.Pick(2) == 0 || len(down) == 0 {
				// Outage wave: a random fraction of the alive pool, picked
				// and removed as one batch (the engine's applyWave shape).
				var alive []*model.Provider
				for _, p := range pop.Providers {
					if p.Alive {
						alive = append(alive, p)
					}
				}
				n := rng.Pick(len(alive) + 1)
				for _, i := range rng.Perm(len(alive))[:n] {
					p := alive[i]
					p.Alive = false
					ix.Remove(p)
					down = append(down, p)
				}
			} else {
				// Rejoin wave: a batch of the departed re-registers.
				n := 1 + rng.Pick(len(down))
				for _, p := range down[:n] {
					p.Alive = true
					ix.Add(p)
				}
				down = down[n:]
			}
			check(wave)
		}
	}
}

// TestIndexEquivalenceWithHandEditedCapabilities covers capability sets
// that the population builder never produces: empty sets, single-class
// specialists, and sets edited after the index was built (rebuilt via
// Remove/Add around the edit, the documented protocol).
func TestIndexEquivalenceWithHandEditedCapabilities(t *testing.T) {
	oracle := mediator.ByCapability()
	nClasses := 5
	cfg := model.DefaultConfig().WithClasses(nClasses)
	cfg.Consumers = 1
	cfg.Providers = 12
	pop := model.NewPopulation(cfg, randx.New(4), 0)

	// Hand-edit before building: provider 0 serves nothing, provider 1
	// serves only class 4, the rest stay generalists.
	pop.Providers[0].SetCapabilities(nil, nClasses)
	pop.Providers[1].SetCapabilities([]int{4}, nClasses)
	ix := BuildIndex(pop)

	for c := 0; c < nClasses; c++ {
		q := &model.Query{Class: c}
		want := oracle.Match(q, pop)
		got := ix.Lookup(c)
		if len(got) != len(want) {
			t.Fatalf("class %d: index |Pq| = %d, scan %d", c, len(got), len(want))
		}
	}

	// Edit after build, with the Remove→edit→Add protocol.
	p := pop.Providers[3]
	ix.Remove(p)
	p.SetCapabilities([]int{0, 2}, nClasses)
	ix.Add(p)
	for c := 0; c < nClasses; c++ {
		q := &model.Query{Class: c}
		want := oracle.Match(q, pop)
		got := ix.Lookup(c)
		if len(got) != len(want) {
			t.Fatalf("after edit, class %d: index |Pq| = %d, scan %d", c, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("after edit, class %d pos %d differs", c, i)
			}
		}
	}
}

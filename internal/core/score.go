// Package core implements the heart of SQLB (VLDB 2007, Section 5.3-5.4):
// the provider score of Definition 9, the adaptive consumer/provider
// balance ω of Equation 6, the provider ranking R⃗_q, and the query
// allocation principle of Algorithm 1.
//
// The score balances the consumer's intention to allocate its query to a
// provider against that provider's intention to perform it. The balance
// exponent ω adapts to the participants' observed (intention-based)
// satisfactions so that whichever side the mediator has satisfied less gets
// more weight — the fairness mechanism that distinguishes SQLB from the
// baselines.
package core

import (
	"math"
)

// DefaultEpsilon is ε of Definition 9 ("usually set to 1").
const DefaultEpsilon = 1.0

// Omega computes ω (Equation 6) from the consumer's and the provider's
// observed satisfaction:
//
//	ω = ((δs(c) − δs(p)) + 1) / 2
//
// Both satisfactions must be the intention-based ones the mediator can see
// (Section 5.3: the allocation module has no access to private
// preferences). ω → 1 gives all weight to the provider's intention (the
// consumer has been doing well), ω → 0 all weight to the consumer's.
func Omega(consumerSat, providerSat float64) float64 {
	return ((clamp01(consumerSat) - clamp01(providerSat)) + 1) / 2
}

// Score computes scr_q(p) (Definition 9) from the provider's intention pi,
// the consumer's intention ci, the balance ω, and ε > 0:
//
//	scr = pi^ω · ci^(1−ω)                       if pi > 0 ∧ ci > 0
//	scr = −((1−pi+ε)^ω · (1−ci+ε)^(1−ω))        otherwise
//
// A provider scores positively only when both sides want the interaction.
func Score(pi, ci, omega, epsilon float64) float64 {
	omega = clamp01(omega)
	if !(epsilon > 0) {
		epsilon = DefaultEpsilon
	}
	if pi > 0 && ci > 0 {
		return pow(pi, omega) * pow(ci, 1-omega)
	}
	return -(pow(1-pi+epsilon, omega) * pow(1-ci+epsilon, 1-omega))
}

// Ranked is one entry of the ranking vector R⃗_q: the index of the provider
// within Pq and its score.
type Ranked struct {
	Index int
	Score float64
}

// Rank scores every provider in Pq and returns R⃗_q, ordered best to worst
// (Section 5.3). pi and ci are the providers' and the consumer's expressed
// intentions, indexed alike; omegas carries the per-provider ω (Equation 6
// uses each provider's own observed satisfaction). Ties break on the lower
// index so rankings are deterministic. pi, ci and omegas must have equal
// length; entries beyond the shortest are ignored defensively.
func Rank(pi, ci, omegas []float64, epsilon float64) []Ranked {
	return RankTop(len(pi), pi, ci, omegas, epsilon)
}

// RankTop returns only the n best entries of R⃗_q, best first, without
// materializing the full sort: scores are computed for every provider but
// the ordering work is delegated to SelectTopN's bounded heap, the win on
// the mediation hot path where q.n ≪ |Pq|. n ≥ |Pq| degrades to the full
// ranking (identical to Rank). Ties break on the lower index exactly as in
// Rank, so RankTop(n, …) is always a prefix of Rank(…).
func RankTop(n int, pi, ci, omegas []float64, epsilon float64) []Ranked {
	return RankTopScratch(nil, n, pi, ci, omegas, epsilon)
}

// RankTopScratch is RankTop with every intermediate — the score vector
// (Scratch.F2), the top-n heap (Scratch.I1), and the returned ranking
// (Scratch.R1) — carved from the scratch, making the whole
// score/rank/select pipeline allocation-free once the buffers are warm.
// The result is valid until the next call that uses R1; a nil scratch
// restores the allocating behaviour of RankTop exactly.
func RankTopScratch(s *Scratch, n int, pi, ci, omegas []float64, epsilon float64) []Ranked {
	total := len(pi)
	if len(ci) < total {
		total = len(ci)
	}
	if len(omegas) < total {
		total = len(omegas)
	}
	scores := s.F2(total)
	for i := 0; i < total; i++ {
		scores[i] = Score(pi[i], ci[i], omegas[i], epsilon)
	}
	idx := SelectTopNScratch(s, total, n, func(a, b int) bool {
		if scores[a] != scores[b] {
			return scores[a] > scores[b]
		}
		return a < b
	})
	ranking := s.R1(len(idx))
	for i, j := range idx {
		ranking[i] = Ranked{Index: j, Score: scores[j]}
	}
	return ranking
}

// Select implements the allocation step of Algorithm 1 (lines 9-10): the
// min(n, N) best-ranked providers get the query (All⃗oc[R⃗_q[i]] ← 1), the
// rest do not. It returns the selected Pq indexes in rank order.
func Select(n int, ranking []Ranked) []int {
	return SelectScratch(nil, n, ranking)
}

// SelectScratch is Select with the selected set carved from the scratch's
// second index buffer (Scratch.I2); valid until the next call that uses
// I2. A nil scratch restores the allocating behaviour of Select exactly.
func SelectScratch(s *Scratch, n int, ranking []Ranked) []int {
	if n < 1 {
		n = 1
	}
	take := n
	if take > len(ranking) {
		take = len(ranking)
	}
	selected := s.I2(take)
	for i := 0; i < take; i++ {
		selected[i] = ranking[i].Index
	}
	return selected
}

func clamp01(v float64) float64 {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func pow(base, exp float64) float64 {
	switch exp {
	case 0:
		return 1
	case 1:
		return base
	}
	return math.Pow(base, exp)
}

package core

import (
	"math"
	"sort"
	"testing"

	"sqlb/internal/randx"
)

// oracleTopN is the naive reference: fully stable-sort all indexes under
// less and take the first n. SelectTopN's bounded heap must agree with it
// exactly, for any input.
func oracleTopN(total, n int, less func(a, b int) bool) []int {
	idx := make([]int, total)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return less(idx[a], idx[b]) })
	if n < 0 {
		n = 0
	}
	if n > total {
		n = total
	}
	return idx[:n]
}

// valueLess orders by value descending with the lower-index tiebreak every
// production call site uses.
func valueLess(vals []float64) func(a, b int) bool {
	return func(a, b int) bool {
		if vals[a] != vals[b] {
			return vals[a] > vals[b]
		}
		return a < b
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSelectTopNAgainstOracle: across randomized sizes, scores quantized to
// force heavy ties, and the boundary n values of the issue (0, 1, total,
// total+5), the heap selection equals the full stable sort.
func TestSelectTopNAgainstOracle(t *testing.T) {
	rng := randx.New(7)
	for trial := 0; trial < 200; trial++ {
		total := rng.Pick(60)
		vals := make([]float64, total)
		for i := range vals {
			// Quantized to one decimal: with up to 60 elements over 21
			// possible values, ties are everywhere.
			vals[i] = math.Round(rng.Uniform(-1, 1)*10) / 10
		}
		ns := []int{0, 1, total / 2, total - 1, total, total + 5}
		for _, n := range ns {
			got := SelectTopN(total, n, valueLess(vals))
			want := oracleTopN(total, n, valueLess(vals))
			if !equalInts(got, want) {
				t.Fatalf("trial %d: SelectTopN(%d, %d) = %v, oracle %v (vals %v)",
					trial, total, n, got, want, vals)
			}
		}
	}
}

// TestSelectTopNPermutationInvariance: permuting the input may only swap
// equal-valued elements (the documented index tiebreak); the multiset of
// selected values is invariant, and with all-distinct values the selected
// identities are too.
func TestSelectTopNPermutationInvariance(t *testing.T) {
	rng := randx.New(8)
	for trial := 0; trial < 100; trial++ {
		total := 1 + rng.Pick(50)
		n := 1 + rng.Pick(total)
		vals := make([]float64, total)
		for i := range vals {
			vals[i] = rng.Float64() // a.s. distinct
		}
		perm := rng.Perm(total)
		pvals := make([]float64, total)
		for i, p := range perm {
			pvals[i] = vals[p] // position i now holds original element perm[i]
		}
		base := SelectTopN(total, n, valueLess(vals))
		permuted := SelectTopN(total, n, valueLess(pvals))
		// Map the permuted selection back to original identities.
		back := make([]int, len(permuted))
		for i, idx := range permuted {
			back[i] = perm[idx]
		}
		sort.Ints(back)
		sorted := append([]int(nil), base...)
		sort.Ints(sorted)
		if !equalInts(back, sorted) {
			t.Fatalf("trial %d: permuted selection %v != base %v", trial, back, sorted)
		}
	}
}

// TestSelectTopNTiesPickLowestIndexes: when every element compares equal,
// the selection must be exactly the n lowest indexes, in order.
func TestSelectTopNTiesPickLowestIndexes(t *testing.T) {
	vals := make([]float64, 20)
	got := SelectTopN(20, 5, valueLess(vals))
	if !equalInts(got, []int{0, 1, 2, 3, 4}) {
		t.Errorf("all-ties selection = %v, want [0 1 2 3 4]", got)
	}
}

// TestRankTopIsPrefixOfRank: RankTop(n, …) must equal the first n entries
// of the full ranking for every n, including the degenerate ones.
func TestRankTopIsPrefixOfRank(t *testing.T) {
	rng := randx.New(9)
	for trial := 0; trial < 50; trial++ {
		total := 1 + rng.Pick(40)
		pi := make([]float64, total)
		ci := make([]float64, total)
		om := make([]float64, total)
		for i := range pi {
			// Quantized to force score ties through Definition 9.
			pi[i] = math.Round(rng.Uniform(-1, 1)*4) / 4
			ci[i] = math.Round(rng.Uniform(-1, 1)*4) / 4
			om[i] = math.Round(rng.Float64()*4) / 4
		}
		full := Rank(pi, ci, om, 1)
		for _, n := range []int{0, 1, total / 2, total, total + 5} {
			got := RankTop(n, pi, ci, om, 1)
			want := n
			if want > total {
				want = total
			}
			if len(got) != want {
				t.Fatalf("RankTop(%d) returned %d entries, want %d", n, len(got), want)
			}
			for i := range got {
				if got[i] != full[i] {
					t.Fatalf("RankTop(%d)[%d] = %+v, full ranking has %+v", n, i, got[i], full[i])
				}
			}
		}
	}
}

// TestSelectTopNEmpty covers the zero-provider and zero-n edges.
func TestSelectTopNEmpty(t *testing.T) {
	if got := SelectTopN(0, 3, func(a, b int) bool { return a < b }); len(got) != 0 {
		t.Errorf("empty input selected %v", got)
	}
	if got := SelectTopN(5, 0, func(a, b int) bool { return a < b }); len(got) != 0 {
		t.Errorf("n=0 selected %v", got)
	}
	if got := SelectTopN(5, -2, func(a, b int) bool { return a < b }); len(got) != 0 {
		t.Errorf("negative n selected %v", got)
	}
}

package core

// Scratch is a reusable buffer set for the allocation hot path. The
// mediation loop (Algorithm 1) runs once per query and historically built
// every intermediate vector — scores, omegas, the top-n heap, the ranking —
// with a fresh make; at |Pq| = 400 that was ~20 KB per mediation. A Scratch
// owns those buffers and grows them to the population's high-water mark
// once, after which the whole scoring/ranking/selection pipeline is
// allocation-free.
//
// A Scratch is NOT safe for concurrent use: it belongs to exactly one
// mediation turn at a time (the mediator owns one; the server's mediation
// lock serializes turns). Slices handed out by the accessors — and the
// results of the *Scratch ranking helpers below — are valid until the next
// call that uses the same buffer. All accessors tolerate a nil receiver by
// falling back to plain make, so every helper degrades to its historical
// allocating behaviour when no scratch is wired.
//
// Buffer assignments within one allocation turn (so callers and helpers do
// not trample each other): RankTopScratch consumes F2, I1, and R1;
// SelectTopNScratch consumes I1; SelectScratch consumes I2. Strategy code
// uses F1/F3 for its own vectors (omegas, utilizations, bids, loads).
type Scratch struct {
	f1, f2, f3 []float64
	i1, i2     []int
	r1         []Ranked
}

// F1 returns the first float buffer resized to n (contents unspecified;
// callers overwrite every slot).
func (s *Scratch) F1(n int) []float64 {
	if s == nil {
		return make([]float64, n)
	}
	s.f1 = growFloats(s.f1, n)
	return s.f1
}

// F2 returns the second float buffer resized to n. RankTopScratch uses it
// for the score vector.
func (s *Scratch) F2(n int) []float64 {
	if s == nil {
		return make([]float64, n)
	}
	s.f2 = growFloats(s.f2, n)
	return s.f2
}

// F3 returns the third float buffer resized to n.
func (s *Scratch) F3(n int) []float64 {
	if s == nil {
		return make([]float64, n)
	}
	s.f3 = growFloats(s.f3, n)
	return s.f3
}

// I1 returns the first index buffer resized to n. SelectTopNScratch builds
// its heap — and therefore its result — in it.
func (s *Scratch) I1(n int) []int {
	if s == nil {
		return make([]int, n)
	}
	s.i1 = growInts(s.i1, n)
	return s.i1
}

// I2 returns the second index buffer resized to n. SelectScratch carves the
// selected set from it.
func (s *Scratch) I2(n int) []int {
	if s == nil {
		return make([]int, n)
	}
	s.i2 = growInts(s.i2, n)
	return s.i2
}

// R1 returns the ranking buffer resized to n.
func (s *Scratch) R1(n int) []Ranked {
	if s == nil {
		return make([]Ranked, n)
	}
	if cap(s.r1) < n {
		s.r1 = make([]Ranked, n)
	}
	s.r1 = s.r1[:n]
	return s.r1
}

func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// sortIdx sorts idx in place under less without allocating. sort.Slice
// costs two heap allocations per call (the reflect-based swapper and the
// comparison closure), which the zero-alloc mediation path cannot afford.
// less must be a strict total order — callers embed an index tiebreak — so
// any correct sort produces the same unique permutation and byte-identity
// with the sort.Slice implementation is preserved by construction.
func sortIdx(idx []int, less func(a, b int) bool) {
	for len(idx) > 12 {
		p := partitionIdx(idx, less)
		// Recurse into the smaller half, loop on the larger: O(log n) stack.
		if p < len(idx)-p-1 {
			sortIdx(idx[:p], less)
			idx = idx[p+1:]
		} else {
			sortIdx(idx[p+1:], less)
			idx = idx[:p]
		}
	}
	// Insertion sort finishes small runs.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && less(idx[j], idx[j-1]); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}

// partitionIdx performs a Lomuto partition around a median-of-three pivot
// and returns the pivot's final position.
func partitionIdx(idx []int, less func(a, b int) bool) int {
	m, last := len(idx)/2, len(idx)-1
	if less(idx[m], idx[0]) {
		idx[m], idx[0] = idx[0], idx[m]
	}
	if less(idx[last], idx[0]) {
		idx[last], idx[0] = idx[0], idx[last]
	}
	if less(idx[last], idx[m]) {
		idx[last], idx[m] = idx[m], idx[last]
	}
	idx[0], idx[m] = idx[m], idx[0]
	pivot := idx[0]
	i := 0
	for j := 1; j <= last; j++ {
		if less(idx[j], pivot) {
			i++
			idx[i], idx[j] = idx[j], idx[i]
		}
	}
	idx[0], idx[i] = idx[i], idx[0]
	return i
}

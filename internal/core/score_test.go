package core

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestOmegaEquation6(t *testing.T) {
	tests := []struct {
		cs, ps, want float64
	}{
		{0.5, 0.5, 0.5}, // equal satisfaction: even balance
		{1, 0, 1},       // happy consumer, miserable provider: provider counts
		{0, 1, 0},       // miserable consumer: consumer counts
		{0.8, 0.6, 0.6},
		{0.2, 0.9, 0.15},
	}
	for _, tt := range tests {
		if got := Omega(tt.cs, tt.ps); !almostEqual(got, tt.want) {
			t.Errorf("Omega(%v,%v) = %v, want %v", tt.cs, tt.ps, got, tt.want)
		}
	}
	// Garbage inputs clamp rather than escape [0,1].
	if got := Omega(5, -3); got < 0 || got > 1 {
		t.Errorf("Omega out of range: %v", got)
	}
	if got := Omega(math.NaN(), 0.5); math.IsNaN(got) {
		t.Error("Omega must not propagate NaN")
	}
}

func TestScoreDefinition9(t *testing.T) {
	// Positive branch: both want it.
	if got := Score(0.8, 0.5, 1, 1); !almostEqual(got, 0.8) {
		t.Errorf("ω=1 score = %v, want provider intention 0.8", got)
	}
	if got := Score(0.8, 0.5, 0, 1); !almostEqual(got, 0.5) {
		t.Errorf("ω=0 score = %v, want consumer intention 0.5", got)
	}
	if got := Score(0.9, 0.4, 0.5, 1); !almostEqual(got, math.Sqrt(0.9*0.4)) {
		t.Errorf("ω=0.5 score = %v, want geometric mean", got)
	}
	// Negative branch whenever either side does not want it.
	if got := Score(-0.5, 0.9, 0.5, 1); got >= 0 {
		t.Errorf("unwilling provider must score negative, got %v", got)
	}
	if got := Score(0.9, -0.5, 0.5, 1); got >= 0 {
		t.Errorf("unwanted provider must score negative, got %v", got)
	}
	// Exact negative-branch value: pi=-1, ci=-1, ω=0.5, ε=1:
	// -( (1+1+1)^0.5 · (1+1+1)^0.5 ) = -3.
	if got := Score(-1, -1, 0.5, 1); !almostEqual(got, -3) {
		t.Errorf("score = %v, want -3", got)
	}
	// ε prevents zero when an intention equals 1 in the negative branch.
	if got := Score(1, -1, 0.5, 1); got == 0 {
		t.Error("ε must keep the negative branch away from 0")
	}
	// Invalid ε falls back to the default.
	if a, b := Score(-0.2, 0.3, 0.5, 0), Score(-0.2, 0.3, 0.5, 1); !almostEqual(a, b) {
		t.Errorf("ε=0 should default to 1: %v vs %v", a, b)
	}
}

func TestScoreMutualDesireBeatsOneSided(t *testing.T) {
	mutual := Score(0.6, 0.6, 0.5, 1)
	oneSided := Score(0.9, -0.1, 0.5, 1)
	if mutual <= oneSided {
		t.Errorf("mutual desire %v should outrank one-sided %v", mutual, oneSided)
	}
}

func TestRankOrdering(t *testing.T) {
	// eWine's Table 1 with intentions (binary, as in the example): only p5
	// has positive intentions on both sides.
	pi := []float64{1, -1, 1, -1, 1}
	ci := []float64{-1, 1, -1, 1, 1}
	om := []float64{0.5, 0.5, 0.5, 0.5, 0.5}
	r := Rank(pi, ci, om, 1)
	if len(r) != 5 {
		t.Fatalf("ranking length = %d", len(r))
	}
	if r[0].Index != 4 {
		t.Errorf("best-ranked = p%d, want p5 (index 4), ranking %v", r[0].Index+1, r)
	}
	if r[0].Score <= 0 {
		t.Errorf("p5 score = %v, want positive", r[0].Score)
	}
	for i := 1; i < len(r); i++ {
		if r[i].Score > r[i-1].Score {
			t.Fatalf("ranking not sorted at %d: %v", i, r)
		}
	}
}

func TestRankDeterministicTies(t *testing.T) {
	pi := []float64{0.5, 0.5, 0.5}
	ci := []float64{0.5, 0.5, 0.5}
	om := []float64{0.5, 0.5, 0.5}
	r := Rank(pi, ci, om, 1)
	for i, want := range []int{0, 1, 2} {
		if r[i].Index != want {
			t.Fatalf("tie-break not by index: %v", r)
		}
	}
}

func TestRankMismatchedLengths(t *testing.T) {
	r := Rank([]float64{1, 1, 1}, []float64{1}, []float64{0.5, 0.5}, 1)
	if len(r) != 1 {
		t.Errorf("ranking over mismatched inputs = %d entries, want 1", len(r))
	}
}

func TestSelectAlgorithm1(t *testing.T) {
	ranking := []Ranked{{Index: 2, Score: 0.9}, {Index: 0, Score: 0.5}, {Index: 1, Score: -1}}
	// q.n = 2 of N = 3.
	if got := Select(2, ranking); len(got) != 2 || got[0] != 2 || got[1] != 0 {
		t.Errorf("Select(2) = %v, want [2 0]", got)
	}
	// q.n > N: all providers selected (Algorithm 1's min(q.n, N)).
	if got := Select(5, ranking); len(got) != 3 {
		t.Errorf("Select(5) over 3 providers = %v, want all 3", got)
	}
	// q.n < 1 treated as 1.
	if got := Select(0, ranking); len(got) != 1 || got[0] != 2 {
		t.Errorf("Select(0) = %v, want [2]", got)
	}
	// Empty ranking selects nothing.
	if got := Select(1, nil); len(got) != 0 {
		t.Errorf("Select over empty ranking = %v, want empty", got)
	}
}

func TestScoreMonotoneInIntentionsProperty(t *testing.T) {
	// In the positive branch the score grows with either intention.
	f := func(pi, ci, d uint8) bool {
		p := float64(pi%100)/100 + 0.005
		c := float64(ci%100)/100 + 0.005
		delta := float64(d%50)/100 + 0.01
		base := Score(p, c, 0.5, 1)
		if p+delta <= 1 && Score(p+delta, c, 0.5, 1) < base-1e-12 {
			return false
		}
		if c+delta <= 1 && Score(p, c+delta, 0.5, 1) < base-1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScoreSignProperty(t *testing.T) {
	f := func(pi, ci, om float64) bool {
		p := math.Mod(pi, 1)
		c := math.Mod(ci, 1)
		o := math.Abs(math.Mod(om, 1))
		got := Score(p, c, o, 1)
		if p > 0 && c > 0 {
			return got > 0
		}
		return got <= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRankCompleteProperty(t *testing.T) {
	// Rank is a permutation of the input indexes.
	f := func(raw []float64) bool {
		n := len(raw)
		pi := make([]float64, n)
		ci := make([]float64, n)
		om := make([]float64, n)
		for i, v := range raw {
			pi[i] = math.Mod(v, 1)
			ci[i] = math.Mod(v*3, 1)
			om[i] = 0.5
		}
		r := Rank(pi, ci, om, 1)
		if len(r) != n {
			return false
		}
		seen := make(map[int]bool, n)
		for _, e := range r {
			if e.Index < 0 || e.Index >= n || seen[e.Index] {
				return false
			}
			seen[e.Index] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package core

// SelectTopN returns the indexes of the n best elements out of [0, total),
// best first, where less reports whether element a ranks strictly better
// than element b. less must be a strict total order — callers embed an
// index tiebreak (lower index wins) so that the result is deterministic
// and unique regardless of evaluation order.
//
// The allocation hot path calls this once per mediation with n = q.n ≪
// |Pq|, so instead of sorting all total elements it keeps a bounded
// max-heap of the n best seen so far: O(total·log n) comparisons rather
// than O(total·log total). When n ≥ total it degrades to a plain full
// sort, which is also the reference behaviour the property tests compare
// against.
func SelectTopN(total, n int, less func(a, b int) bool) []int {
	return SelectTopNScratch(nil, total, n, less)
}

// SelectTopNScratch is SelectTopN with the heap — and therefore the result
// slice — carved from the scratch's first index buffer (Scratch.I1). The
// result is valid until the next call that uses I1; a nil scratch restores
// the allocating behaviour of SelectTopN exactly.
func SelectTopNScratch(s *Scratch, total, n int, less func(a, b int) bool) []int {
	if n < 0 {
		n = 0
	}
	if n > total {
		n = total
	}
	if n == 0 {
		return s.I1(0)
	}
	if n == total {
		idx := s.I1(total)
		for i := range idx {
			idx[i] = i
		}
		sortIdx(idx, less)
		return idx
	}

	// h is a max-heap under less: h[0] is the worst of the n best so far,
	// the element the next candidate has to beat.
	h := s.I1(n)
	for i := range h {
		h[i] = i
	}
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(h, i, less)
	}
	for i := n; i < total; i++ {
		if less(i, h[0]) {
			h[0] = i
			siftDown(h, 0, less)
		}
	}
	sortIdx(h, less)
	return h
}

// siftDown restores the max-heap property (worst element at the root,
// "worse" meaning less reports the other way) for the subtree rooted at i.
func siftDown(h []int, i int, less func(a, b int) bool) {
	for {
		worst := i
		if l := 2*i + 1; l < len(h) && less(h[worst], h[l]) {
			worst = l
		}
		if r := 2*i + 2; r < len(h) && less(h[worst], h[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

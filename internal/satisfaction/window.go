// Package satisfaction implements the participant characterization model of
// SQLB (VLDB 2007), Section 3: adequation δa, satisfaction δs, and allocation
// satisfaction δas, each assessed over a sliding window of the k last
// interactions with the mediator.
//
// Intentions live in [-1,1] (Section 2); the characteristics live in [0,1]
// via the affine map r = (i+1)/2 applied inside Equations 1-2 and
// Definitions 4-5. Because the map is affine, mapping each recorded value and
// averaging is identical to averaging and then mapping; the trackers store
// mapped values, which also makes the 0.5 initial-satisfaction prior of the
// paper's experimental setup (Table 2) natural to express.
package satisfaction

import "math"

// Rate maps an intention i ∈ [-1,1] to the characteristic scale [0,1].
// Out-of-range inputs are clamped first: Section 2 fixes the expressed
// intention range even though the raw Def 7/8 formulas can exceed it.
func Rate(intention float64) float64 {
	return (Clamp(intention) + 1) / 2
}

// Clamp restricts an intention to the expressed range [-1,1] of Section 2.
func Clamp(intention float64) float64 {
	if math.IsNaN(intention) {
		return 0
	}
	if intention > 1 {
		return 1
	}
	if intention < -1 {
		return -1
	}
	return intention
}

// Window is a fixed-capacity sliding window over the k last recorded values
// with a virtual prior: until priorSamples real values have been recorded,
// the mean blends the prior in so that an empty window reports exactly the
// prior and early readings move smoothly away from it. This realizes the
// paper's "initialize them with a satisfaction value of 0.5, which evolves
// with their last k ... queries" (Section 6.1). With priorSamples == 0 the
// window is paper-literal: the mean of an empty set is 0 (Defs 4-5).
type Window struct {
	buf          []float64
	head         int // next slot to overwrite
	n            int
	sum          float64
	prior        float64
	priorSamples int
}

// NewWindow returns a window of capacity k (k >= 1) with the given prior
// and prior weight (in virtual samples).
func NewWindow(k int, prior float64, priorSamples int) *Window {
	w := &Window{}
	w.Init(nil, k, prior, priorSamples)
	return w
}

// Init (re)initializes the window in place with its ring buffer carved from
// the arena (nil arena → a plain allocation). Population builders use this
// to back every window of a cohort with one contiguous float block.
func (w *Window) Init(a *Arena, k int, prior float64, priorSamples int) {
	if k < 1 {
		k = 1
	}
	if priorSamples < 0 {
		priorSamples = 0
	}
	*w = Window{buf: a.floatBuf(k), prior: prior, priorSamples: priorSamples}
}

// Push records a value, evicting the oldest if the window is full.
func (w *Window) Push(v float64) {
	if w.n == len(w.buf) {
		w.sum -= w.buf[w.head]
	} else {
		w.n++
	}
	w.buf[w.head] = v
	w.sum += v
	w.head++
	if w.head == len(w.buf) {
		w.head = 0
	}
}

// Mean returns the prior-blended mean of the window.
func (w *Window) Mean() float64 {
	return blend(w.sum, w.n, w.prior, w.priorSamples)
}

// RawMean returns the plain mean over recorded values and whether the window
// holds any value at all.
func (w *Window) RawMean() (float64, bool) {
	if w.n == 0 {
		return 0, false
	}
	return w.sum / float64(w.n), true
}

// Len returns the number of recorded values, and Cap the window capacity k.
func (w *Window) Len() int { return w.n }

// Cap returns the window capacity k.
func (w *Window) Cap() int { return len(w.buf) }

// blend computes the prior-weighted mean of n samples summing to sum.
func blend(sum float64, n int, prior float64, priorSamples int) float64 {
	if n >= priorSamples {
		if n == 0 {
			return prior
		}
		return sum / float64(n)
	}
	return (prior*float64(priorSamples-n) + sum) / float64(priorSamples)
}

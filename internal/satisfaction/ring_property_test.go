package satisfaction

import (
	"math"
	"testing"

	"sqlb/internal/randx"
)

// Property tests for the O(1) ring buffers: Window and ProviderTracker keep
// running aggregates (sum, performed-sum, counts) that are updated
// incrementally as values slide in and out. The oracles below recompute
// every characteristic from scratch over a plain slice of the full history,
// so any drift in the incremental bookkeeping — a missed eviction, a wrong
// head wrap, a stale performed flag — shows up as a mismatch.

// windowOracle recomputes the prior-blended mean over the last k values of
// the full history.
type windowOracle struct {
	k            int
	prior        float64
	priorSamples int
	history      []float64
}

func (o *windowOracle) push(v float64) { o.history = append(o.history, v) }

func (o *windowOracle) window() []float64 {
	if len(o.history) <= o.k {
		return o.history
	}
	return o.history[len(o.history)-o.k:]
}

func (o *windowOracle) mean() float64 {
	w := o.window()
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	n := len(w)
	if n >= o.priorSamples {
		if n == 0 {
			return o.prior
		}
		return sum / float64(n)
	}
	return (o.prior*float64(o.priorSamples-n) + sum) / float64(o.priorSamples)
}

func (o *windowOracle) rawMean() (float64, bool) {
	w := o.window()
	if len(w) == 0 {
		return 0, false
	}
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	return sum / float64(len(w)), true
}

// trackerOracle recomputes Definitions 4-5 over the last k proposals of the
// full history.
type trackerOracle struct {
	k            int
	prior        float64
	priorSamples int
	history      []entry
}

func (o *trackerOracle) record(shown float64, performed bool) {
	o.history = append(o.history, entry{rated: Rate(shown), performed: performed})
}

func (o *trackerOracle) window() []entry {
	if len(o.history) <= o.k {
		return o.history
	}
	return o.history[len(o.history)-o.k:]
}

func (o *trackerOracle) adequation() float64 {
	w := o.window()
	sum := 0.0
	for _, e := range w {
		sum += e.rated
	}
	n := len(w)
	if n >= o.priorSamples {
		if n == 0 {
			return o.prior
		}
		return sum / float64(n)
	}
	return (o.prior*float64(o.priorSamples-n) + sum) / float64(o.priorSamples)
}

func (o *trackerOracle) satisfaction() float64 {
	w := o.window()
	perfSum, perfN := 0.0, 0
	for _, e := range w {
		if e.performed {
			perfSum += e.rated
			perfN++
		}
	}
	if len(w) < o.priorSamples {
		pw := float64(o.priorSamples - len(w))
		return (o.prior*pw + perfSum) / (pw + float64(perfN))
	}
	if perfN == 0 {
		return 0
	}
	return perfSum / float64(perfN)
}

// eq compares with a tolerance for the float drift the incremental sums
// accumulate relative to a fresh summation.
func eq(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) < 1e-9
}

func TestWindowMatchesOracle(t *testing.T) {
	rng := randx.New(0x5eed)
	for trial := 0; trial < 50; trial++ {
		k := 1 + int(rng.Uint64()%20)
		priorSamples := int(rng.Uint64() % 10)
		prior := rng.Float64()
		w := NewWindow(k, prior, priorSamples)
		o := &windowOracle{k: k, prior: prior, priorSamples: priorSamples}
		if got, want := w.Mean(), o.mean(); !eq(got, want) {
			t.Fatalf("trial %d empty: Mean=%v oracle=%v (k=%d ps=%d)", trial, got, want, k, priorSamples)
		}
		steps := 3*k + int(rng.Uint64()%20)
		for i := 0; i < steps; i++ {
			v := rng.Float64()
			w.Push(v)
			o.push(v)
			if got, want := w.Mean(), o.mean(); !eq(got, want) {
				t.Fatalf("trial %d step %d: Mean=%v oracle=%v (k=%d ps=%d)", trial, i, got, want, k, priorSamples)
			}
			gr, gok := w.RawMean()
			wr, wok := o.rawMean()
			if gok != wok || !eq(gr, wr) {
				t.Fatalf("trial %d step %d: RawMean=(%v,%v) oracle=(%v,%v)", trial, i, gr, gok, wr, wok)
			}
			if w.Len() != len(o.window()) {
				t.Fatalf("trial %d step %d: Len=%d oracle=%d", trial, i, w.Len(), len(o.window()))
			}
		}
	}
}

func TestProviderTrackerMatchesOracle(t *testing.T) {
	rng := randx.New(0xfeed)
	for trial := 0; trial < 50; trial++ {
		k := 1 + int(rng.Uint64()%20)
		priorSamples := int(rng.Uint64() % 10)
		prior := rng.Float64()
		tr := NewProviderTracker(k, prior, priorSamples)
		o := &trackerOracle{k: k, prior: prior, priorSamples: priorSamples}
		steps := 3*k + int(rng.Uint64()%20)
		for i := 0; i < steps; i++ {
			shown := rng.Uniform(-1.2, 1.2) // exercise the clamp too
			performed := rng.Uint64()%3 != 0
			tr.Record(shown, performed)
			o.record(shown, performed)
			if got, want := tr.Adequation(), o.adequation(); !eq(got, want) {
				t.Fatalf("trial %d step %d: Adequation=%v oracle=%v (k=%d ps=%d)", trial, i, got, want, k, priorSamples)
			}
			if got, want := tr.Satisfaction(), o.satisfaction(); !eq(got, want) {
				t.Fatalf("trial %d step %d: Satisfaction=%v oracle=%v (k=%d ps=%d)", trial, i, got, want, k, priorSamples)
			}
			if got, want := tr.Proposed(), len(o.window()); got != want {
				t.Fatalf("trial %d step %d: Proposed=%d oracle=%d", trial, i, got, want)
			}
		}
	}
}

// TestArenaBackedEquivalence pins that arena-carved rings behave exactly
// like individually allocated ones, and that neighbouring rings carved from
// the same arena do not bleed into each other.
func TestArenaBackedEquivalence(t *testing.T) {
	const k, n = 7, 10
	a := NewArena(2*k*n+k*n, k*n)
	plainW := make([]*Window, n)
	arenaW := make([]Window, n)
	plainT := make([]*ProviderTracker, n)
	arenaT := make([]ProviderTracker, n)
	plainC := make([]*ConsumerTracker, n)
	arenaC := make([]ConsumerTracker, n)
	for i := 0; i < n; i++ {
		plainW[i] = NewWindow(k, 0.5, 3)
		arenaW[i].Init(a, k, 0.5, 3)
		plainT[i] = NewProviderTracker(k, 0.5, 3)
		arenaT[i].Init(a, k, 0.5, 3)
		plainC[i] = NewConsumerTracker(k, 0.5, 3)
		arenaC[i].Init(a, k, 0.5, 3)
	}
	rng := randx.New(42)
	intentions := []float64{0.9, -0.3, 0.5, 0.1}
	selected := []int{0, 2}
	for step := 0; step < 40; step++ {
		i := int(rng.Uint64() % uint64(n))
		v := rng.Uniform(-1, 1)
		plainW[i].Push(v)
		arenaW[i].Push(v)
		plainT[i].Record(v, step%2 == 0)
		arenaT[i].Record(v, step%2 == 0)
		plainC[i].RecordAllocation(intentions, selected, 2)
		arenaC[i].RecordAllocation(intentions, selected, 2)
	}
	for i := 0; i < n; i++ {
		if plainW[i].Mean() != arenaW[i].Mean() {
			t.Fatalf("window %d: plain=%v arena=%v", i, plainW[i].Mean(), arenaW[i].Mean())
		}
		if plainT[i].Adequation() != arenaT[i].Adequation() || plainT[i].Satisfaction() != arenaT[i].Satisfaction() {
			t.Fatalf("tracker %d diverged", i)
		}
		if plainC[i].Adequation() != arenaC[i].Adequation() || plainC[i].Satisfaction() != arenaC[i].Satisfaction() {
			t.Fatalf("consumer tracker %d diverged", i)
		}
	}
}

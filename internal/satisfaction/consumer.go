package satisfaction

import "math"

// QueryAdequation computes δa(c,q) (Equation 1): the mapped average of the
// consumer's shown intentions towards the whole set Pq of providers able to
// treat q. It answers "how well does the system correspond to my
// expectations for this query?". Returns 0.5 (indifference) for an empty Pq;
// the simulator only issues feasible queries, so that case is defensive.
func QueryAdequation(intentions []float64) float64 {
	if len(intentions) == 0 {
		return 0.5
	}
	sum := 0.0
	for _, ci := range intentions {
		sum += Clamp(ci)
	}
	return (sum/float64(len(intentions)) + 1) / 2
}

// QuerySatisfaction computes δs(c,q) (Equation 2): the mapped sum of the
// consumer's intentions towards the providers that actually got the query,
// divided by q.n — the number of results the consumer desired. Receiving
// fewer than n results therefore caps the attainable satisfaction, exactly
// as the paper's eWine discussion motivates. n < 1 is treated as 1.
func QuerySatisfaction(selectedIntentions []float64, n int) float64 {
	if n < 1 {
		n = 1
	}
	sum := 0.0
	for _, ci := range selectedIntentions {
		sum += Clamp(ci)
	}
	return (sum/float64(n) + 1) / 2
}

// ConsumerTracker maintains the Section 3.1 characteristics of one consumer
// over its k last issued queries (the set IQ_c^k). The two windows are
// embedded by value so a population of trackers is a single dense array;
// only their ring buffers live elsewhere (in an Arena when one is used).
type ConsumerTracker struct {
	adequation   Window
	satisfaction Window
}

// NewConsumerTracker returns a tracker with window size k, initial
// characteristic value prior (0.5 in the paper's setup) and priorSamples
// virtual prior samples.
func NewConsumerTracker(k int, prior float64, priorSamples int) *ConsumerTracker {
	t := &ConsumerTracker{}
	t.Init(nil, k, prior, priorSamples)
	return t
}

// Init (re)initializes a tracker in place, carving both ring buffers from
// the arena (nil arena → plain allocations). It lets population builders
// lay trackers out in bulk arrays instead of allocating one by one.
func (t *ConsumerTracker) Init(a *Arena, k int, prior float64, priorSamples int) {
	t.adequation.Init(a, k, prior, priorSamples)
	t.satisfaction.Init(a, k, prior, priorSamples)
}

// RecordAllocation records one query allocation: the consumer's intentions
// towards every provider in Pq, the subset of indexes that received the
// query, and the desired number of results q.n. The satisfaction sum is
// folded inline — this sits on the mediation hot path and must not allocate.
func (t *ConsumerTracker) RecordAllocation(intentions []float64, selected []int, n int) {
	t.adequation.Push(QueryAdequation(intentions))
	if n < 1 {
		n = 1
	}
	sum := 0.0
	for _, idx := range selected {
		if idx >= 0 && idx < len(intentions) {
			sum += Clamp(intentions[idx])
		}
	}
	t.satisfaction.Push((sum/float64(n) + 1) / 2)
}

// RecordValues records pre-computed per-query adequation and satisfaction
// values; used when the caller computes Equations 1-2 itself.
func (t *ConsumerTracker) RecordValues(adequation, satisfaction float64) {
	t.adequation.Push(adequation)
	t.satisfaction.Push(satisfaction)
}

// Adequation returns δa(c) (Definition 1) ∈ [0,1].
func (t *ConsumerTracker) Adequation() float64 { return t.adequation.Mean() }

// Satisfaction returns δs(c) (Definition 2) ∈ [0,1].
func (t *ConsumerTracker) Satisfaction() float64 { return t.satisfaction.Mean() }

// AllocationSatisfaction returns δas(c) = δs(c)/δa(c) (Definition 3)
// ∈ [0,∞]. A value > 1 means the allocation method works well for the
// consumer; < 1 means the method punishes it; 1 is neutral. When both δs
// and δa are 0 the method is vacuously neutral and 1 is returned; when only
// δa is 0, +Inf is returned as the definition's upper bound.
func (t *ConsumerTracker) AllocationSatisfaction() float64 {
	return allocationSatisfaction(t.Satisfaction(), t.Adequation())
}

// Queries returns the number of query allocations recorded (≤ k).
func (t *ConsumerTracker) Queries() int { return t.adequation.Len() }

func allocationSatisfaction(sat, adq float64) float64 {
	if adq == 0 {
		if sat == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return sat / adq
}

package satisfaction

// Arena bulk-allocates the ring storage behind many windows and trackers.
// A population of 100k providers owns 200k provider rings and one of 1M
// consumers owns 2M windows; allocating each ring separately costs one heap
// object (and one pointer dereference per access) apiece, which dominates
// both the build time and the resident overhead at that scale. An arena
// instead carves every ring of a cohort out of a few large contiguous
// blocks: participants created together stay adjacent in memory, which is
// exactly the access order of the mediation loop.
//
// Rings are fixed-capacity and never grow, so carved buffers are sliced
// with a full slice expression — an accidental append cannot bleed into a
// neighbour's ring. A nil *Arena is valid everywhere and falls back to
// plain per-ring allocations, keeping NewWindow/NewProviderTracker and any
// external callers untouched.
type Arena struct {
	floats  []float64
	entries []entry
}

// NewArena returns an arena pre-sized for floatCap window slots and
// entryCap provider-tracker slots. Exceeding a reservation is not an error;
// further blocks are allocated in chunks as needed.
func NewArena(floatCap, entryCap int) *Arena {
	a := &Arena{}
	if floatCap > 0 {
		a.floats = make([]float64, floatCap)
	}
	if entryCap > 0 {
		a.entries = make([]entry, entryCap)
	}
	return a
}

// arenaChunk is the minimum block size (in slots) allocated when an arena
// runs dry — large enough that stragglers past the reservation amortize.
const arenaChunk = 1 << 14

// floatBuf carves k float slots; nil arena → plain allocation.
func (a *Arena) floatBuf(k int) []float64 {
	if a == nil {
		return make([]float64, k)
	}
	if len(a.floats) < k {
		n := arenaChunk
		if n < k {
			n = k
		}
		a.floats = make([]float64, n)
	}
	buf := a.floats[:k:k]
	a.floats = a.floats[k:]
	return buf
}

// entryBuf carves k tracker-entry slots; nil arena → plain allocation.
func (a *Arena) entryBuf(k int) []entry {
	if a == nil {
		return make([]entry, k)
	}
	if len(a.entries) < k {
		n := arenaChunk
		if n < k {
			n = k
		}
		a.entries = make([]entry, n)
	}
	buf := a.entries[:k:k]
	a.entries = a.entries[k:]
	return buf
}

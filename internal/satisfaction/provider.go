package satisfaction

// ProviderTracker maintains the Section 3.2 characteristics of one provider
// over the k last queries proposed to it (the set PQ_p^k, vector PPI_p).
// Every proposed query records the provider's shown intention; the subset
// that the provider actually performed (SQ_p^k ⊆ PQ_p^k) additionally feeds
// its satisfaction. When an old proposal slides out of the window it leaves
// both aggregates, so SQ remains a true subset of PQ at all times.
//
// The same tracker is used twice in the system: fed with *intentions* at the
// mediator (the public view that the query-allocation method can see and
// that ω in Equation 6 relies on) and fed with *preferences* privately at
// the provider (the view Figures 4(b)-(c) measure and that Def 8's exponent
// and the departure decisions use). Section 3 notes the definitions apply to
// either with no technical difference.
type ProviderTracker struct {
	entries      []entry
	head         int
	n            int
	propSum      float64
	perfSum      float64
	perfN        int
	prior        float64
	priorSamples int
}

type entry struct {
	rated     float64 // (intention+1)/2 ∈ [0,1]
	performed bool
}

// NewProviderTracker returns a tracker with window capacity k over proposed
// queries, initial characteristic value prior, and a warm-up length of
// priorSamples *proposals*: while fewer than priorSamples queries have been
// proposed, both characteristics blend the prior in (realizing the paper's
// 0.5 initialization); once warm, Definitions 4-5 apply literally — in
// particular δs(p) is 0 when the performed subset SQ_p^k is empty, which is
// the mechanism behind the Figure 4(c) "punishment" of preference-blind
// allocation (a provider that rarely performs reads spells of zero
// satisfaction even when the queries it does get are fine).
func NewProviderTracker(k int, prior float64, priorSamples int) *ProviderTracker {
	t := &ProviderTracker{}
	t.Init(nil, k, prior, priorSamples)
	return t
}

// Init (re)initializes the tracker in place with its entry ring carved from
// the arena (nil arena → a plain allocation), so population builders can lay
// trackers out in bulk arrays backed by one contiguous entry block.
func (t *ProviderTracker) Init(a *Arena, k int, prior float64, priorSamples int) {
	if k < 1 {
		k = 1
	}
	if priorSamples < 0 {
		priorSamples = 0
	}
	*t = ProviderTracker{
		entries:      a.entryBuf(k),
		prior:        prior,
		priorSamples: priorSamples,
	}
}

// Record adds one proposed query with the intention (or preference) the
// provider showed for it, and whether the provider performed it.
func (t *ProviderTracker) Record(shown float64, performed bool) {
	r := Rate(shown)
	if t.n == len(t.entries) {
		old := t.entries[t.head]
		t.propSum -= old.rated
		if old.performed {
			t.perfSum -= old.rated
			t.perfN--
		}
	} else {
		t.n++
	}
	t.entries[t.head] = entry{rated: r, performed: performed}
	t.propSum += r
	if performed {
		t.perfSum += r
		t.perfN++
	}
	t.head++
	if t.head == len(t.entries) {
		t.head = 0
	}
}

// Adequation returns δa(p) (Definition 4) ∈ [0,1]: the mapped average of
// the provider's shown intentions over the k last proposed queries.
func (t *ProviderTracker) Adequation() float64 {
	return blend(t.propSum, t.n, t.prior, t.priorSamples)
}

// Satisfaction returns δs(p) (Definition 5) ∈ [0,1]: the mapped average
// over the performed subset SQ_p^k, 0 when SQ is empty. During the warm-up
// (fewer than priorSamples proposals seen) the prior blends in with weight
// proportional to the remaining warm-up so the tracker starts at exactly
// the configured initial satisfaction.
func (t *ProviderTracker) Satisfaction() float64 {
	if t.n < t.priorSamples {
		w := float64(t.priorSamples - t.n)
		return (t.prior*w + t.perfSum) / (w + float64(t.perfN))
	}
	if t.perfN == 0 {
		return 0
	}
	return t.perfSum / float64(t.perfN)
}

// AllocationSatisfaction returns δas(p) = δs(p)/δa(p) (Definition 6)
// ∈ [0,∞], with the same boundary conventions as the consumer variant.
func (t *ProviderTracker) AllocationSatisfaction() float64 {
	return allocationSatisfaction(t.Satisfaction(), t.Adequation())
}

// Proposed returns the number of proposals currently in the window (≤ k).
func (t *ProviderTracker) Proposed() int { return t.n }

// Performed returns how many of the windowed proposals were performed.
func (t *ProviderTracker) Performed() int { return t.perfN }

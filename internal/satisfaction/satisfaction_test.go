package satisfaction

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestRateAndClamp(t *testing.T) {
	tests := []struct {
		in, want float64
	}{
		{-1, 0}, {0, 0.5}, {1, 1}, {0.5, 0.75},
		{-3, 0}, {3, 1}, // clamped
	}
	for _, tt := range tests {
		if got := Rate(tt.in); !almostEqual(got, tt.want) {
			t.Errorf("Rate(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
	if got := Rate(math.NaN()); !almostEqual(got, 0.5) {
		t.Errorf("Rate(NaN) = %v, want 0.5", got)
	}
}

func TestWindowBasics(t *testing.T) {
	w := NewWindow(3, 0.5, 0)
	if got := w.Mean(); got != 0.5 {
		t.Errorf("empty window with priorSamples=0 returns prior: got %v", got)
	}
	w.Push(1)
	if got := w.Mean(); !almostEqual(got, 1) {
		t.Errorf("after one push mean = %v, want 1", got)
	}
	w.Push(0)
	w.Push(0.5)
	if got := w.Mean(); !almostEqual(got, 0.5) {
		t.Errorf("full window mean = %v, want 0.5", got)
	}
	// Eviction: pushing 1 evicts the first value (1): window = {0, 0.5, 1}.
	w.Push(1)
	if got := w.Mean(); !almostEqual(got, 0.5) {
		t.Errorf("post-eviction mean = %v, want 0.5", got)
	}
	if w.Len() != 3 || w.Cap() != 3 {
		t.Errorf("Len/Cap = %d/%d, want 3/3", w.Len(), w.Cap())
	}
}

func TestWindowPriorBlending(t *testing.T) {
	w := NewWindow(100, 0.5, 4)
	if !almostEqual(w.Mean(), 0.5) {
		t.Errorf("empty mean = %v, want prior 0.5", w.Mean())
	}
	w.Push(1)
	// (0.5*3 + 1)/4 = 0.625
	if !almostEqual(w.Mean(), 0.625) {
		t.Errorf("one-sample blended mean = %v, want 0.625", w.Mean())
	}
	w.Push(1)
	w.Push(1)
	w.Push(1)
	if !almostEqual(w.Mean(), 1) {
		t.Errorf("at priorSamples the prior has vanished: %v", w.Mean())
	}
	w.Push(0)
	if !almostEqual(w.Mean(), 0.8) {
		t.Errorf("past priorSamples mean is pure: %v, want 0.8", w.Mean())
	}
}

func TestWindowRawMean(t *testing.T) {
	w := NewWindow(4, 0.5, 10)
	if _, ok := w.RawMean(); ok {
		t.Error("RawMean of empty window should report not-ok")
	}
	w.Push(0.25)
	if m, ok := w.RawMean(); !ok || !almostEqual(m, 0.25) {
		t.Errorf("RawMean = %v/%v, want 0.25/true", m, ok)
	}
}

func TestWindowTinyCapacity(t *testing.T) {
	w := NewWindow(0, 0.5, 0) // clamped to 1
	if w.Cap() != 1 {
		t.Fatalf("cap = %d, want 1", w.Cap())
	}
	w.Push(0.1)
	w.Push(0.9)
	if got := w.Mean(); !almostEqual(got, 0.9) {
		t.Errorf("mean = %v, want only the last value 0.9", got)
	}
}

func TestQueryAdequationEquation1(t *testing.T) {
	// eWine example, binary intentions: Pq = {p1..p5} with consumer
	// intentions {-1, 1, -1, 1, 1} (trusts p2, p4, p5).
	ci := []float64{-1, 1, -1, 1, 1}
	// mean = 1/5, mapped = (0.2+1)/2 = 0.6
	if got := QueryAdequation(ci); !almostEqual(got, 0.6) {
		t.Errorf("adequation = %v, want 0.6", got)
	}
	if got := QueryAdequation(nil); !almostEqual(got, 0.5) {
		t.Errorf("empty Pq adequation = %v, want indifferent 0.5", got)
	}
}

func TestQuerySatisfactionEquation2(t *testing.T) {
	// Section 3.1.2 discussion: eWine desires n=2 results; allocating only
	// to p2 (intention 1) yields (1/2 + 1)/2 = 0.75 — the missing result
	// caps satisfaction below 1.
	if got := QuerySatisfaction([]float64{1}, 2); !almostEqual(got, 0.75) {
		t.Errorf("satisfaction = %v, want 0.75", got)
	}
	// Both desired results from intention-1 providers: full satisfaction.
	if got := QuerySatisfaction([]float64{1, 1}, 2); !almostEqual(got, 1) {
		t.Errorf("satisfaction = %v, want 1", got)
	}
	// Allocation to an undesired provider drags satisfaction below 0.5.
	if got := QuerySatisfaction([]float64{-1}, 1); !almostEqual(got, 0) {
		t.Errorf("satisfaction = %v, want 0", got)
	}
	// n < 1 treated as 1.
	if got := QuerySatisfaction([]float64{1}, 0); !almostEqual(got, 1) {
		t.Errorf("satisfaction = %v, want 1", got)
	}
}

func TestConsumerTrackerLifecycle(t *testing.T) {
	ct := NewConsumerTracker(2, 0.5, 0)
	if !almostEqual(ct.Adequation(), 0.5) || !almostEqual(ct.Satisfaction(), 0.5) {
		t.Fatal("fresh tracker should report the prior")
	}
	// Query to Pq = {0.8 liked, -0.4 disliked}; allocate to the liked one.
	ct.RecordAllocation([]float64{0.8, -0.4}, []int{0}, 1)
	// δa = ((0.8-0.4)/2 + 1)/2 = 0.6; δs = (0.8 + 1)/2 = 0.9
	if !almostEqual(ct.Adequation(), 0.6) {
		t.Errorf("adequation = %v, want 0.6", ct.Adequation())
	}
	if !almostEqual(ct.Satisfaction(), 0.9) {
		t.Errorf("satisfaction = %v, want 0.9", ct.Satisfaction())
	}
	if got := ct.AllocationSatisfaction(); !almostEqual(got, 1.5) {
		t.Errorf("allocation satisfaction = %v, want 1.5", got)
	}
	if ct.Queries() != 1 {
		t.Errorf("Queries = %d, want 1", ct.Queries())
	}
	// Allocating to the disliked provider once balances the earlier good
	// allocation exactly: window = {δs 0.9, 0.3} vs {δa 0.6, 0.6} → neutral.
	ct.RecordAllocation([]float64{0.8, -0.4}, []int{1}, 1)
	if got := ct.AllocationSatisfaction(); !almostEqual(got, 1) {
		t.Errorf("allocation satisfaction = %v, want neutral 1", got)
	}
	// A second punishing allocation slides the good one out (k=2): the
	// method now punishes the consumer, δas < 1.
	ct.RecordAllocation([]float64{0.8, -0.4}, []int{1}, 1)
	if ct.AllocationSatisfaction() >= 1 {
		t.Errorf("punishing allocation should give δas < 1, got %v", ct.AllocationSatisfaction())
	}
	// Window slides: recording two more identical allocations fully
	// replaces the old pair.
	ct.RecordAllocation([]float64{1}, []int{0}, 1)
	ct.RecordAllocation([]float64{1}, []int{0}, 1)
	if !almostEqual(ct.Adequation(), 1) || !almostEqual(ct.Satisfaction(), 1) {
		t.Errorf("window should have slid to the perfect allocations: δa=%v δs=%v",
			ct.Adequation(), ct.Satisfaction())
	}
}

func TestConsumerTrackerSelectedIndexOutOfRange(t *testing.T) {
	ct := NewConsumerTracker(4, 0.5, 0)
	// Out-of-range indexes are ignored rather than panicking.
	ct.RecordAllocation([]float64{1}, []int{0, 5, -1}, 1)
	if !almostEqual(ct.Satisfaction(), 1) {
		t.Errorf("satisfaction = %v, want 1", ct.Satisfaction())
	}
}

func TestAllocationSatisfactionBoundaries(t *testing.T) {
	if got := allocationSatisfaction(0, 0); !almostEqual(got, 1) {
		t.Errorf("0/0 should be neutral 1, got %v", got)
	}
	if got := allocationSatisfaction(0.5, 0); !math.IsInf(got, 1) {
		t.Errorf(">0/0 should be +Inf, got %v", got)
	}
	if got := allocationSatisfaction(0.3, 0.6); !almostEqual(got, 0.5) {
		t.Errorf("0.3/0.6 = %v, want 0.5", got)
	}
}

func TestProviderTrackerDefinitions(t *testing.T) {
	pt := NewProviderTracker(4, 0, 0)
	// Paper-literal: empty sets give δa = δs = 0 (Defs 4-5).
	if pt.Adequation() != 0 || pt.Satisfaction() != 0 {
		t.Fatal("paper-literal tracker should report 0 when empty")
	}
	// Proposals with intentions {1, -1, 1, 0}; performed the two positive.
	pt.Record(1, true)
	pt.Record(-1, false)
	pt.Record(1, true)
	pt.Record(0, false)
	// δa = mean of rated {1, 0, 1, 0.5} = 0.625
	if !almostEqual(pt.Adequation(), 0.625) {
		t.Errorf("adequation = %v, want 0.625", pt.Adequation())
	}
	// δs over performed {1, 1} = 1
	if !almostEqual(pt.Satisfaction(), 1) {
		t.Errorf("satisfaction = %v, want 1", pt.Satisfaction())
	}
	if got := pt.AllocationSatisfaction(); !almostEqual(got, 1.6) {
		t.Errorf("allocation satisfaction = %v, want 1.6", got)
	}
	if pt.Proposed() != 4 || pt.Performed() != 2 {
		t.Errorf("Proposed/Performed = %d/%d, want 4/2", pt.Proposed(), pt.Performed())
	}
}

func TestProviderTrackerEvictionKeepsSubset(t *testing.T) {
	pt := NewProviderTracker(2, 0, 0)
	pt.Record(1, true) // will be evicted
	pt.Record(-1, false)
	pt.Record(0.5, false) // evicts the performed entry
	if pt.Performed() != 0 {
		t.Errorf("performed entry should have been evicted, Performed = %d", pt.Performed())
	}
	if pt.Satisfaction() != 0 {
		t.Errorf("satisfaction over empty SQ should be 0, got %v", pt.Satisfaction())
	}
	// δa over {-1 → 0, 0.5 → 0.75} = 0.375
	if !almostEqual(pt.Adequation(), 0.375) {
		t.Errorf("adequation = %v, want 0.375", pt.Adequation())
	}
}

func TestProviderTrackerPrior(t *testing.T) {
	pt := NewProviderTracker(500, 0.5, 4)
	if !almostEqual(pt.Satisfaction(), 0.5) || !almostEqual(pt.Adequation(), 0.5) {
		t.Fatal("fresh tracker should report the 0.5 prior")
	}
	// One performed query it loved: satisfaction moves up but is damped.
	pt.Record(1, true)
	want := (0.5*3 + 1) / 4
	if !almostEqual(pt.Satisfaction(), want) {
		t.Errorf("blended satisfaction = %v, want %v", pt.Satisfaction(), want)
	}
	// Unperformed proposals consume warm-up weight: the prior's influence
	// shrinks as proposals accumulate, so the lone performed sample (1)
	// pulls satisfaction further up.
	pt.Record(0, false)
	pt.Record(0, false)
	want = (0.5*1 + 1) / (1 + 1) // warm-up weight 4-3=1, one performed sample
	if !almostEqual(pt.Satisfaction(), want) {
		t.Errorf("satisfaction = %v, want %v", pt.Satisfaction(), want)
	}
	adq := (0.5*1 + 1 + 0.5 + 0.5) / 4
	if !almostEqual(pt.Adequation(), adq) {
		t.Errorf("adequation = %v, want %v", pt.Adequation(), adq)
	}
}

func TestProviderTrackerPostWarmupEmptySQ(t *testing.T) {
	// Once warm, Definition 5 applies literally: empty SQ reads 0.
	pt := NewProviderTracker(10, 0.5, 2)
	pt.Record(0.8, false)
	pt.Record(0.8, false)
	pt.Record(0.8, false)
	if got := pt.Satisfaction(); got != 0 {
		t.Errorf("warm tracker with empty SQ: δs = %v, want 0", got)
	}
	pt.Record(0.8, true)
	if got := pt.Satisfaction(); !almostEqual(got, 0.9) {
		t.Errorf("δs = %v, want 0.9 (single performed sample)", got)
	}
}

func TestProviderTrackerSatisfiedVsDissatisfied(t *testing.T) {
	// A provider performing only queries it does not want ends up
	// dissatisfied relative to its adequation (the Capacity-based failure
	// mode of Table 3).
	pt := NewProviderTracker(100, 0.5, 1)
	for i := 0; i < 50; i++ {
		pt.Record(0.9, false) // wants these, never gets them
		pt.Record(-0.8, true) // gets only these
	}
	if pt.Satisfaction() >= pt.Adequation() {
		t.Errorf("punished provider: δs=%v should be < δa=%v", pt.Satisfaction(), pt.Adequation())
	}
	if pt.AllocationSatisfaction() >= 1 {
		t.Errorf("δas = %v, want < 1", pt.AllocationSatisfaction())
	}
}

func TestWindowMeanBoundsProperty(t *testing.T) {
	f := func(raw []float64, k uint8) bool {
		w := NewWindow(int(k%64)+1, 0.5, 8)
		for _, v := range raw {
			w.Push(Rate(v)) // rated values ∈ [0,1]
		}
		m := w.Mean()
		return m >= -1e-9 && m <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProviderTrackerBoundsProperty(t *testing.T) {
	f := func(raw []float64, flags []bool, k uint8) bool {
		pt := NewProviderTracker(int(k%64)+1, 0.5, 4)
		for i, v := range raw {
			performed := i < len(flags) && flags[i]
			pt.Record(v, performed)
		}
		a, s := pt.Adequation(), pt.Satisfaction()
		if a < -1e-9 || a > 1+1e-9 || s < -1e-9 || s > 1+1e-9 {
			return false
		}
		return pt.Performed() <= pt.Proposed()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConsumerTrackerBoundsProperty(t *testing.T) {
	f := func(raw []float64, n uint8) bool {
		ct := NewConsumerTracker(32, 0.5, 4)
		ints := make([]float64, 0, len(raw))
		for _, v := range raw {
			ints = append(ints, Clamp(v))
		}
		if len(ints) == 0 {
			return true
		}
		ct.RecordAllocation(ints, []int{0}, int(n%4)+1)
		a, s := ct.Adequation(), ct.Satisfaction()
		return a >= -1e-9 && a <= 1+1e-9 && s >= -1e-9 && s <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

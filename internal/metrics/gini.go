package metrics

import "sort"

// Gini returns the Gini coefficient of the values — the utilization-
// imbalance gauge of the timeline dashboard, complementing the Jain
// fairness index: fairness is quadratic-mean based and saturates near 1
// for mild skew, while Gini spreads the interesting range out (0 = every
// provider carries the same load, → 1 as one provider carries
// everything).
//
// Computed over the sorted values as
//
//	G = (2 · Σᵢ i·x₍ᵢ₎) / (n · Σ x) − (n+1)/n    (i = 1…n, x₍ᵢ₎ ascending)
//
// which is O(n log n). Defined for non-negative inputs; negative values
// are clamped to 0 (a utilization reading cannot be negative — this
// keeps the bounds guarantee for defensive callers). The Gini of an
// empty, single-value, or all-zero set is 0: nothing is imbalanced about
// nothing. For n values the result lies in [0, (n−1)/n] ⊂ [0, 1), it is
// scale-invariant (G(a·x) = G(x) for a > 0), and constant sets score
// exactly 0 — the property suite in gini_test.go pins all three.
func Gini(values []float64) float64 {
	if len(values) < 2 {
		return 0
	}
	sorted := make([]float64, len(values))
	for i, v := range values {
		if v < 0 {
			v = 0
		}
		sorted[i] = v
	}
	sort.Float64s(sorted)
	var sum, weighted float64
	for i, v := range sorted {
		sum += v
		weighted += float64(i+1) * v
	}
	if sum == 0 {
		return 0
	}
	n := float64(len(sorted))
	g := 2*weighted/(n*sum) - (n+1)/n
	if g < 0 {
		// Float error on near-constant sets can land a hair below 0.
		g = 0
	}
	return g
}

// Package metrics implements the three system metrics of SQLB (VLDB 2007),
// Section 4: the arithmetic mean µ (efficiency), the Jain fairness index f
// (sensitivity), and the min–max ratio σ (balance).
//
// The metrics are defined over an arbitrary set S of g-values, where g is
// one of the participant characteristics (adequation δa, satisfaction δs,
// allocation satisfaction δas) or the utilization Ut. They are intentionally
// plain functions over []float64 so that any caller — the simulator, the
// experiment harness, or user code — can apply them to any value set.
package metrics

// Mean returns the arithmetic mean µ(g,S) of the values (Equation 3).
// It reflects the effort a query-allocation method makes to maximize (or
// minimize) a set of values. The mean of an empty set is 0.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Fairness returns the Jain fairness index f(g,S) of the values
// (Equation 4, from Jain, Chiu, Hawe, DEC-TR-301):
//
//	f = (Σ g)² / (|S| · Σ g²)
//
// Its value is in [0,1]; 1 means all values are equal (perfectly fair),
// and values near 1/|S| mean one participant holds everything. The index
// is scale-invariant: f(a·g) = f(g) for a > 0. The fairness of an empty
// set, or of an all-zero set, is defined here as 1 (nothing is unfair
// about nothing).
func Fairness(values []float64) float64 {
	if len(values) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, v := range values {
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return 1
	}
	return (sum * sum) / (float64(len(values)) * sumSq)
}

// DefaultBalanceConstant is the pre-fixed constant c0 > 0 of Equation 5.
// The paper only requires c0 > 0; 1 keeps σ well-conditioned for value
// sets that live in [0,1].
const DefaultBalanceConstant = 1.0

// Balance returns the min–max ratio σ(g,S) (Equation 5):
//
//	σ = (min g + c0) / (max g + c0)
//
// with c0 = DefaultBalanceConstant. Values are in [0,1] for non-negative
// inputs; the greater the value, the better balanced the set. σ of an
// empty set is 1.
func Balance(values []float64) float64 {
	return BalanceC(values, DefaultBalanceConstant)
}

// BalanceC is Balance with an explicit constant c0 > 0.
func BalanceC(values []float64, c0 float64) float64 {
	if len(values) == 0 {
		return 1
	}
	min, max := values[0], values[0]
	for _, v := range values[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return (min + c0) / (max + c0)
}

// Summary bundles the three §4 metrics for one value set. The paper states
// the metrics are complementary: using only one loses information, so the
// harness always reports all three together.
type Summary struct {
	Mean     float64
	Fairness float64
	Balance  float64
	N        int
}

// Summarize computes all three metrics over the values.
func Summarize(values []float64) Summary {
	return Summary{
		Mean:     Mean(values),
		Fairness: Fairness(values),
		Balance:  Balance(values),
		N:        len(values),
	}
}

// Min returns the minimum of the values, or 0 for an empty set.
func Min(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	m := values[0]
	for _, v := range values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum of the values, or 0 for an empty set.
func Max(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	m := values[0]
	for _, v := range values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	tests := []struct {
		name   string
		values []float64
		want   float64
	}{
		{"empty", nil, 0},
		{"single", []float64{0.7}, 0.7},
		{"uniform", []float64{0.5, 0.5, 0.5}, 0.5},
		{"mixed", []float64{0, 1}, 0.5},
		{"negatives", []float64{-1, 1}, 0},
		{"paper example m", []float64{0.2, 1, 0.6}, 0.6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.values); !almostEqual(got, tt.want) {
				t.Errorf("Mean(%v) = %v, want %v", tt.values, got, tt.want)
			}
		})
	}
}

func TestFairnessPaperExample(t *testing.T) {
	// Section 4 example: mediator m with δs = {0.2, 1, 0.6} has fairness
	// ≈ 0.77 and m' with {1, 0.7, 0.9} has ≈ 0.97.
	m := Fairness([]float64{0.2, 1, 0.6})
	if math.Abs(m-0.7714) > 0.001 {
		t.Errorf("fairness(m) = %v, want ≈0.771", m)
	}
	// Exact value is 2.6²/(3·2.3) = 0.97971…; the paper reports it
	// rounded to 0.97.
	mp := Fairness([]float64{1, 0.7, 0.9})
	if math.Abs(mp-0.9797) > 0.001 {
		t.Errorf("fairness(m') = %v, want ≈0.9797", mp)
	}
	if mp <= m {
		t.Errorf("m' should be fairer than m: %v <= %v", mp, m)
	}
}

func TestFairnessEdgeCases(t *testing.T) {
	if got := Fairness(nil); got != 1 {
		t.Errorf("Fairness(nil) = %v, want 1", got)
	}
	if got := Fairness([]float64{0, 0, 0}); got != 1 {
		t.Errorf("Fairness(zeros) = %v, want 1", got)
	}
	if got := Fairness([]float64{3}); !almostEqual(got, 1) {
		t.Errorf("Fairness(single) = %v, want 1", got)
	}
	// One participant holds everything: f → 1/n.
	got := Fairness([]float64{1, 0, 0, 0})
	if !almostEqual(got, 0.25) {
		t.Errorf("Fairness(concentrated) = %v, want 0.25", got)
	}
}

func TestBalance(t *testing.T) {
	tests := []struct {
		name   string
		values []float64
		c0     float64
		want   float64
	}{
		{"empty", nil, 1, 1},
		{"equal", []float64{0.4, 0.4}, 1, 1},
		{"spread", []float64{0, 1}, 1, 0.5},
		{"c0 influence", []float64{0, 1}, 0.5, 1.0 / 3.0},
		{"single", []float64{0.9}, 1, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := BalanceC(tt.values, tt.c0); !almostEqual(got, tt.want) {
				t.Errorf("BalanceC(%v, %v) = %v, want %v", tt.values, tt.c0, got, tt.want)
			}
		})
	}
}

func TestMinMax(t *testing.T) {
	vs := []float64{0.3, -1, 2, 0}
	if got := Min(vs); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
	if got := Max(vs); got != 2 {
		t.Errorf("Max = %v, want 2", got)
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("Min/Max of empty set should be 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{0.5, 0.5})
	if s.N != 2 || !almostEqual(s.Mean, 0.5) || !almostEqual(s.Fairness, 1) || !almostEqual(s.Balance, 1) {
		t.Errorf("unexpected summary: %+v", s)
	}
}

// clampSet maps raw quick-generated floats into a bounded positive range so
// the property statements below are well-defined.
func clampSet(raw []float64) []float64 {
	out := make([]float64, 0, len(raw))
	for _, v := range raw {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		out = append(out, math.Mod(math.Abs(v), 1000))
	}
	return out
}

func TestFairnessBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vs := clampSet(raw)
		got := Fairness(vs)
		return got >= 0 && got <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFairnessScaleInvarianceProperty(t *testing.T) {
	f := func(raw []float64, scale float64) bool {
		vs := clampSet(raw)
		s := math.Mod(math.Abs(scale), 100) + 0.001
		scaled := make([]float64, len(vs))
		for i, v := range vs {
			scaled[i] = v * s
		}
		return math.Abs(Fairness(vs)-Fairness(scaled)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFairnessConstantSetProperty(t *testing.T) {
	f := func(v float64, n uint8) bool {
		val := math.Mod(math.Abs(v), 10) + 0.1
		set := make([]float64, int(n%32)+1)
		for i := range set {
			set[i] = val
		}
		return math.Abs(Fairness(set)-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBalanceBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vs := clampSet(raw)
		got := Balance(vs)
		return got > 0 && got <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanBoundedByMinMaxProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vs := clampSet(raw)
		if len(vs) == 0 {
			return true
		}
		m := Mean(vs)
		return m >= Min(vs)-1e-9 && m <= Max(vs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanLinearityProperty(t *testing.T) {
	f := func(raw []float64, a float64) bool {
		vs := clampSet(raw)
		if len(vs) == 0 {
			return true
		}
		s := math.Mod(a, 50)
		shifted := make([]float64, len(vs))
		for i, v := range vs {
			shifted[i] = v + s
		}
		return math.Abs(Mean(shifted)-(Mean(vs)+s)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

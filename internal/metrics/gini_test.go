package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGiniKnownValues(t *testing.T) {
	tests := []struct {
		name   string
		values []float64
		want   float64
	}{
		{"empty", nil, 0},
		{"single", []float64{0.7}, 0},
		{"constant", []float64{0.5, 0.5, 0.5}, 0},
		{"all zeros", []float64{0, 0, 0}, 0},
		// One provider takes everything: G = (n-1)/n.
		{"total concentration", []float64{0, 0, 0, 1}, 0.75},
		// {1,2,3}: sorted weighted sum 1+4+9 = 14, G = 28/18 - 4/3 = 2/9.
		{"arith progression", []float64{3, 1, 2}, 2.0 / 9},
		// Negatives clamp to zero (utilizations cannot be negative; a
		// stray negative reading must not flip the sign of the sum).
		{"negative clamped", []float64{-1, 0, 1}, 2.0 / 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Gini(tt.values); !almostEqual(got, tt.want) {
				t.Errorf("Gini(%v) = %v, want %v", tt.values, got, tt.want)
			}
		})
	}
}

func TestGiniDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Gini(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input reordered: %v", in)
	}
}

// Bounds: 0 <= G <= (n-1)/n < 1 for any non-negative set.
func TestGiniBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vs := clampSet(raw)
		got := Gini(vs)
		if got < 0 || got >= 1 {
			return false
		}
		if n := len(vs); n >= 2 {
			return got <= float64(n-1)/float64(n)+1e-9
		}
		return got == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Scale invariance: Gini measures relative concentration, so multiplying
// every value by a positive constant changes nothing.
func TestGiniScaleInvarianceProperty(t *testing.T) {
	f := func(raw []float64, scale float64) bool {
		vs := clampSet(raw)
		s := math.Mod(math.Abs(scale), 100) + 0.001
		scaled := make([]float64, len(vs))
		for i, v := range vs {
			scaled[i] = v * s
		}
		return math.Abs(Gini(vs)-Gini(scaled)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// A constant set is perfectly equal: G = 0 at any size and level.
func TestGiniConstantSetProperty(t *testing.T) {
	f := func(v float64, n uint8) bool {
		val := math.Mod(math.Abs(v), 10) + 0.1
		set := make([]float64, int(n%32)+1)
		for i := range set {
			set[i] = val
		}
		return math.Abs(Gini(set)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Order invariance: Gini is a set statistic.
func TestGiniPermutationInvarianceProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vs := clampSet(raw)
		rev := make([]float64, len(vs))
		for i, v := range vs {
			rev[len(vs)-1-i] = v
		}
		return math.Abs(Gini(vs)-Gini(rev)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Cross-check against the O(n²) mean-absolute-difference definition:
// G = Σᵢⱼ|xᵢ-xⱼ| / (2n²·mean).
func TestGiniMatchesPairwiseOracleProperty(t *testing.T) {
	oracle := func(vs []float64) float64 {
		n := len(vs)
		if n < 2 {
			return 0
		}
		var sum, diff float64
		for _, v := range vs {
			sum += v
		}
		if sum <= 0 {
			return 0
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				diff += math.Abs(vs[i] - vs[j])
			}
		}
		return diff / (2 * float64(n) * sum)
	}
	f := func(raw []float64) bool {
		vs := clampSet(raw)
		if len(vs) > 64 {
			vs = vs[:64]
		}
		return math.Abs(Gini(vs)-oracle(vs)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Gini and Jain fairness move in opposite directions: a fairer set has a
// lower Gini. Pinned on a monotone family rather than arbitrary pairs
// (the two statistics order some exotic sets differently).
func TestGiniComplementsFairness(t *testing.T) {
	prev := -1.0
	prevFair := 2.0
	for k := 0; k <= 4; k++ {
		// Increasing concentration: k of 8 providers idle.
		vs := make([]float64, 8)
		for i := range vs {
			if i >= k {
				vs[i] = 1
			}
		}
		g := Gini(vs)
		fair := Fairness(vs)
		if g <= prev {
			t.Fatalf("Gini not increasing with concentration: %v then %v", prev, g)
		}
		if fair >= prevFair {
			t.Fatalf("Fairness not decreasing with concentration: %v then %v", prevFair, fair)
		}
		prev, prevFair = g, fair
	}
}

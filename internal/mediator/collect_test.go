package mediator

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"sqlb/internal/model"
	"sqlb/internal/randx"
)

type stubConsumer struct {
	value float64
	delay time.Duration
	err   error
}

func (s stubConsumer) Intention(ctx context.Context, _ *model.Query, _ *model.Provider) (float64, error) {
	if s.delay > 0 {
		select {
		case <-time.After(s.delay):
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	return s.value, s.err
}

type stubProvider struct {
	value float64
	delay time.Duration
	err   error
}

func (s stubProvider) Intention(ctx context.Context, _ *model.Query) (float64, error) {
	if s.delay > 0 {
		select {
		case <-time.After(s.delay):
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	return s.value, s.err
}

func collectFixture(t *testing.T, n int) (*model.Population, *model.Query) {
	t.Helper()
	cfg := model.DefaultConfig()
	cfg.Consumers = 1
	cfg.Providers = n
	pop := model.NewPopulation(cfg, randx.New(5), 0)
	q := &model.Query{ID: 1, Consumer: pop.Consumers[0], Class: 0, Units: 130, N: 1}
	return pop, q
}

func TestCollectAllAnswer(t *testing.T) {
	pop, q := collectFixture(t, 4)
	providers := make([]ProviderClient, 4)
	for i := range providers {
		providers[i] = stubProvider{value: 0.25 * float64(i)}
	}
	c := &Collector{Timeout: time.Second}
	ci, pi, st := c.Collect(context.Background(), q, pop.Providers, stubConsumer{value: 0.7}, providers)
	if st.Degraded() {
		t.Fatalf("full collection reported degraded stats: %+v", st)
	}
	for i := range ci {
		if ci[i] != 0.7 {
			t.Errorf("ci[%d] = %v, want 0.7", i, ci[i])
		}
		if math.Abs(pi[i]-0.25*float64(i)) > 1e-12 {
			t.Errorf("pi[%d] = %v, want %v", i, pi[i], 0.25*float64(i))
		}
	}
}

func TestCollectTimeoutFallsBackToDefault(t *testing.T) {
	pop, q := collectFixture(t, 3)
	providers := []ProviderClient{
		stubProvider{value: 0.9},
		stubProvider{value: 0.9, delay: 500 * time.Millisecond}, // too slow
		stubProvider{value: -0.3},
	}
	c := &Collector{Timeout: 30 * time.Millisecond}
	start := time.Now()
	ci, pi, st := c.Collect(context.Background(), q, pop.Providers, stubConsumer{value: 0.5}, providers)
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Errorf("Collect blocked %v past its timeout", elapsed)
	}
	if pi[0] != 0.9 || pi[2] != -0.3 {
		t.Errorf("fast providers lost: %v", pi)
	}
	if pi[1] != 0 {
		t.Errorf("slow provider should default to 0 (indifference), got %v", pi[1])
	}
	if st.Timeouts != 1 || st.Errors != 0 {
		t.Errorf("stats = %+v, want exactly the slow provider timed out", st)
	}
	if !st.Degraded() {
		t.Error("a timed-out collection must report Degraded")
	}
	_ = ci
}

func TestCollectErrorsBecomeDefaults(t *testing.T) {
	pop, q := collectFixture(t, 2)
	providers := []ProviderClient{
		stubProvider{err: errors.New("unreachable")},
		stubProvider{value: 0.4},
	}
	c := &Collector{Timeout: time.Second, Default: 0}
	_, pi, st := c.Collect(context.Background(), q, pop.Providers, stubConsumer{err: errors.New("boom")}, providers)
	if pi[0] != 0 {
		t.Errorf("failed provider should default, got %v", pi[0])
	}
	if pi[1] != 0.4 {
		t.Errorf("healthy provider lost: %v", pi[1])
	}
	// Two consumer answers and one provider answer errored; the accounting
	// is what stops silent degradation (each error was folded into the
	// Default intention).
	if st.Errors != 3 || st.Timeouts != 0 {
		t.Errorf("stats = %+v, want 3 errors, 0 timeouts", st)
	}
}

func TestCollectNilClients(t *testing.T) {
	pop, q := collectFixture(t, 2)
	c := &Collector{Timeout: 50 * time.Millisecond}
	ci, pi, _ := c.Collect(context.Background(), q, pop.Providers, nil, []ProviderClient{nil, nil})
	for i := range ci {
		if ci[i] != 0 || pi[i] != 0 {
			t.Errorf("nil clients should yield defaults, got ci=%v pi=%v", ci[i], pi[i])
		}
	}
}

func TestCollectCancelledContext(t *testing.T) {
	pop, q := collectFixture(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := &Collector{Timeout: time.Second}
	providers := []ProviderClient{stubProvider{value: 1, delay: time.Hour}, stubProvider{value: 1, delay: time.Hour}}
	done := make(chan struct{})
	go func() {
		c.Collect(ctx, q, pop.Providers, stubConsumer{value: 1, delay: time.Hour}, providers)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Collect did not honor context cancellation")
	}
}

func TestCollectSanitizesGarbage(t *testing.T) {
	pop, q := collectFixture(t, 1)
	c := &Collector{Timeout: time.Second}
	ci, pi, _ := c.Collect(context.Background(), q, pop.Providers,
		stubConsumer{value: 42}, []ProviderClient{stubProvider{value: math.NaN()}})
	if ci[0] != 10 {
		t.Errorf("absurd intention should cap at 10, got %v", ci[0])
	}
	if pi[0] != 0 {
		t.Errorf("NaN intention should become 0, got %v", pi[0])
	}
	// Legitimate raw Def 7/8 values below -1 pass through untouched.
	ci2, _, _ := c.Collect(context.Background(), q, pop.Providers,
		stubConsumer{value: -2.5}, []ProviderClient{stubProvider{value: 0.5}})
	if ci2[0] != -2.5 {
		t.Errorf("raw negative intention should pass, got %v", ci2[0])
	}
}

func TestCollectWithLocalAdapters(t *testing.T) {
	pop, q := collectFixture(t, 6)
	providers := make([]ProviderClient, len(pop.Providers))
	now := func() float64 { return 0 }
	for i, p := range pop.Providers {
		providers[i] = LocalProvider{P: p, Now: now}
	}
	c := &Collector{Timeout: time.Second}
	ci, pi, _ := c.Collect(context.Background(), q, pop.Providers, LocalConsumer{C: pop.Consumers[0]}, providers)
	// The concurrent path must agree with the synchronous fast path.
	wantCI, wantPI := Intentions(0, q, pop.Providers)
	for i := range ci {
		if math.Abs(ci[i]-wantCI[i]) > 1e-12 || math.Abs(pi[i]-wantPI[i]) > 1e-12 {
			t.Fatalf("concurrent/synchronous mismatch at %d: %v/%v vs %v/%v",
				i, ci[i], pi[i], wantCI[i], wantPI[i])
		}
	}
}

func TestLocalProviderNilNow(t *testing.T) {
	pop, q := collectFixture(t, 1)
	lp := LocalProvider{P: pop.Providers[0]}
	if _, err := lp.Intention(context.Background(), q); err != nil {
		t.Fatalf("Intention: %v", err)
	}
}

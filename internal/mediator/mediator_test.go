package mediator

import (
	"errors"
	"slices"
	"sync"
	"testing"

	"sqlb/internal/allocator"
	"sqlb/internal/model"
	"sqlb/internal/randx"
)

func newPop(t *testing.T, consumers, providers int) *model.Population {
	t.Helper()
	cfg := model.DefaultConfig()
	cfg.Consumers = consumers
	cfg.Providers = providers
	return model.NewPopulation(cfg, randx.New(21), 0)
}

func newQuery(pop *model.Population, id uint64, n int) *model.Query {
	return &model.Query{
		ID:       id,
		Consumer: pop.Consumers[0],
		Class:    0,
		Units:    130,
		N:        n,
		IssuedAt: 0,
	}
}

func TestMediatorAllocateHappyPath(t *testing.T) {
	pop := newPop(t, 2, 8)
	med := New(allocator.NewSQLB())
	q := newQuery(pop, 1, 1)
	alloc, err := med.Allocate(0, q, pop)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if len(alloc.Pq) != 8 {
		t.Errorf("Pq size = %d, want all 8 alive providers", len(alloc.Pq))
	}
	if len(alloc.Selected) != 1 {
		t.Fatalf("selected %d providers, want 1", len(alloc.Selected))
	}
	if len(alloc.CI) != 8 || len(alloc.PI) != 8 {
		t.Errorf("intention vectors sized %d/%d, want 8/8", len(alloc.CI), len(alloc.PI))
	}
	sel := alloc.SelectedProviders()
	if len(sel) != 1 || sel[0] != alloc.Pq[alloc.Selected[0]] {
		t.Error("SelectedProviders does not match Selected indexes")
	}
}

func TestMediatorRecordsAllParticipants(t *testing.T) {
	pop := newPop(t, 1, 5)
	med := New(allocator.NewSQLB())
	q := newQuery(pop, 1, 2)
	alloc, err := med.Allocate(0, q, pop)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if got := pop.Consumers[0].Tracker.Queries(); got != 1 {
		t.Errorf("consumer recorded %d queries, want 1", got)
	}
	performed := 0
	for _, p := range pop.Providers {
		if p.Public.Proposed() != 1 {
			t.Errorf("provider %d public proposals = %d, want 1 (result notification)", p.ID, p.Public.Proposed())
		}
		if p.Private.Proposed() != 1 {
			t.Errorf("provider %d private proposals = %d, want 1", p.ID, p.Private.Proposed())
		}
		performed += p.Public.Performed()
	}
	if performed != len(alloc.Selected) {
		t.Errorf("performed entries = %d, want %d", performed, len(alloc.Selected))
	}
}

func TestMediatorSkipsDepartedProviders(t *testing.T) {
	pop := newPop(t, 1, 4)
	pop.Providers[0].Alive = false
	pop.Providers[1].Alive = false
	med := New(allocator.NewCapacityBased())
	alloc, err := med.Allocate(0, newQuery(pop, 1, 1), pop)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if len(alloc.Pq) != 2 {
		t.Errorf("Pq size = %d, want 2 alive", len(alloc.Pq))
	}
	for _, p := range alloc.Pq {
		if !p.Alive {
			t.Error("departed provider matched")
		}
	}
}

func TestMediatorNoProviders(t *testing.T) {
	pop := newPop(t, 1, 2)
	for _, p := range pop.Providers {
		p.Alive = false
	}
	med := New(allocator.NewSQLB())
	if _, err := med.Allocate(0, newQuery(pop, 1, 1), pop); err == nil {
		t.Fatal("expected ErrNoProviders")
	}
}

func TestMediatorNoProvidersIsErrNoProviders(t *testing.T) {
	// The wrapped error must stay matchable with errors.Is — the contract
	// the engine's drop accounting relies on.
	pop := newPop(t, 1, 2)
	med := New(allocator.NewSQLB())
	med.Match = CapabilityMatcher{Capable: func(*model.Provider, int) bool { return false }}
	_, err := med.Allocate(0, newQuery(pop, 1, 1), pop)
	if !errors.Is(err, ErrNoProviders) {
		t.Fatalf("err = %v, want ErrNoProviders (empty posting list)", err)
	}
}

func TestByCapability(t *testing.T) {
	pop := newPop(t, 1, 6)
	for _, p := range pop.Providers {
		p.SetCapabilities([]int{p.ID % 2}, 2) // even IDs serve class 0, odd class 1
	}
	m := ByCapability()
	q := newQuery(pop, 1, 1)
	q.Class = 0
	pq := m.Match(q, pop)
	if len(pq) != 3 {
		t.Fatalf("|Pq| = %d, want the 3 even-ID providers", len(pq))
	}
	for i, p := range pq {
		if p.ID%2 != 0 {
			t.Errorf("provider %d should not serve class 0", p.ID)
		}
		if i > 0 && pq[i-1].ID >= p.ID {
			t.Error("Pq not in ascending ID order")
		}
	}
}

func TestMediatorNoStrategy(t *testing.T) {
	pop := newPop(t, 1, 2)
	med := &Mediator{}
	if _, err := med.Allocate(0, newQuery(pop, 1, 1), pop); err == nil {
		t.Fatal("expected configuration error")
	}
}

func TestCapabilityMatcher(t *testing.T) {
	pop := newPop(t, 1, 6)
	med := &Mediator{
		Strategy: allocator.NewSQLB(),
		Match: CapabilityMatcher{Capable: func(p *model.Provider, class int) bool {
			return p.ID%2 == 0 // only even providers serve class 0
		}},
	}
	alloc, err := med.Allocate(0, newQuery(pop, 1, 1), pop)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if len(alloc.Pq) != 3 {
		t.Errorf("Pq size = %d, want 3", len(alloc.Pq))
	}
	for _, p := range alloc.Pq {
		if p.ID%2 != 0 {
			t.Errorf("provider %d should not have matched", p.ID)
		}
	}
	// Nil predicate matches everyone.
	med.Match = CapabilityMatcher{}
	alloc, err = med.Allocate(0, newQuery(pop, 2, 1), pop)
	if err != nil || len(alloc.Pq) != 6 {
		t.Errorf("nil predicate matched %d, want 6 (err %v)", len(alloc.Pq), err)
	}
}

func TestMediatorQNGreaterThanN(t *testing.T) {
	pop := newPop(t, 1, 3)
	med := New(allocator.NewSQLB())
	alloc, err := med.Allocate(0, newQuery(pop, 1, 10), pop)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if len(alloc.Selected) != 3 {
		t.Errorf("selected %d, want all 3 (q.n > N)", len(alloc.Selected))
	}
}

func TestIntentionsVectorSemantics(t *testing.T) {
	pop := newPop(t, 1, 10)
	q := newQuery(pop, 1, 1)
	ci, pi := Intentions(0, q, pop.Providers)
	if len(ci) != 10 || len(pi) != 10 {
		t.Fatalf("vector sizes %d/%d, want 10/10", len(ci), len(pi))
	}
	// Intentions are the raw Def 7/8 values: positive ones stay within
	// (0,1]; negative ones may extend below -1 (with ε = 1 the magnitude
	// is bounded by 3), which Definition 9's negative branch relies on.
	for i := range ci {
		for _, v := range [2]float64{ci[i], pi[i]} {
			if v != v || v > 1 || v < -3.0001 {
				t.Fatalf("intention out of raw range at %d: ci=%v pi=%v", i, ci[i], pi[i])
			}
		}
	}
	// υ = 1 in the default config: consumer intentions equal preferences
	// whenever they are positive (Definition 7 positive branch).
	c := pop.Consumers[0]
	for i, p := range pop.Providers {
		pref := c.Preference(p, 0)
		if pref > 0 && p.Reputation > 0 && ci[i] != pref {
			t.Fatalf("υ=1 intention %v != preference %v", ci[i], pref)
		}
	}
}

func TestMediatorDeterministic(t *testing.T) {
	runOnce := func() []int {
		pop := newPop(t, 2, 12)
		med := New(allocator.NewSQLB())
		var picks []int
		for i := 0; i < 20; i++ {
			q := newQuery(pop, uint64(i), 1)
			alloc, err := med.Allocate(float64(i), q, pop)
			if err != nil {
				t.Fatalf("Allocate: %v", err)
			}
			picks = append(picks, alloc.Selected[0])
			// Apply the allocation so state evolves.
			for _, p := range alloc.SelectedProviders() {
				p.Assign(float64(i), q.Units)
			}
		}
		return picks
	}
	a, b := runOnce(), runOnce()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("allocation diverged at query %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestMediatorExecEquivalence pins the Exec contract: any executor that
// covers [0, n) with disjoint ranges — here a deliberately adversarial one
// that splits into many tiny reversed chunks run on separate goroutines —
// produces exactly the allocation and window state of the serial mediator.
// This is the package-level half of the sharded engine's byte-identity
// guarantee (internal/sim TestShardedDeterminism is the whole-run half).
func TestMediatorExecEquivalence(t *testing.T) {
	run := func(exec func(n int, fn func(lo, hi int))) (*Allocation, *model.Population) {
		pop := newPop(t, 2, 17)
		med := New(allocator.NewSQLB())
		med.Exec = exec
		var alloc *Allocation
		for id := uint64(1); id <= 40; id++ {
			q := newQuery(pop, id, 2)
			var err error
			alloc, err = med.Allocate(float64(id), q, pop)
			if err != nil {
				t.Fatalf("Allocate: %v", err)
			}
		}
		return alloc, pop
	}

	serial, serialPop := run(nil)
	chunked, chunkedPop := run(func(n int, fn func(lo, hi int)) {
		var wg sync.WaitGroup
		for hi := n; hi > 0; hi -= 3 {
			lo := hi - 3
			if lo < 0 {
				lo = 0
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				fn(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	})

	if len(serial.CI) != len(chunked.CI) {
		t.Fatalf("vector sizes differ: %d vs %d", len(serial.CI), len(chunked.CI))
	}
	for i := range serial.CI {
		if serial.CI[i] != chunked.CI[i] || serial.PI[i] != chunked.PI[i] {
			t.Fatalf("intention %d differs: CI %v vs %v, PI %v vs %v",
				i, serial.CI[i], chunked.CI[i], serial.PI[i], chunked.PI[i])
		}
	}
	if !slices.Equal(serial.Selected, chunked.Selected) {
		t.Fatalf("selections differ: %v vs %v", serial.Selected, chunked.Selected)
	}
	for i := range serialPop.Providers {
		s, c := serialPop.Providers[i], chunkedPop.Providers[i]
		if s.Public.Satisfaction() != c.Public.Satisfaction() ||
			s.Private.Satisfaction() != c.Private.Satisfaction() {
			t.Fatalf("provider %d window state differs after 40 mediations", i)
		}
	}
	if s, c := serialPop.Consumers[0].Tracker.Satisfaction(), chunkedPop.Consumers[0].Tracker.Satisfaction(); s != c {
		t.Fatalf("consumer satisfaction differs: %v vs %v", s, c)
	}
}

package mediator

import (
	"context"
	"time"

	"sqlb/internal/intention"
	"sqlb/internal/model"
)

// ConsumerClient is a (possibly remote or slow) consumer endpoint the
// mediator queries for intentions. In an e-marketplace deployment this is a
// network call; the in-process adapters below evaluate Definition 7.
type ConsumerClient interface {
	// Intention returns the consumer's intention for allocating q to p.
	Intention(ctx context.Context, q *model.Query, p *model.Provider) (float64, error)
}

// ProviderClient is a provider endpoint queried for its intention to
// perform a query (Definition 8).
type ProviderClient interface {
	Intention(ctx context.Context, q *model.Query) (float64, error)
}

// Collector implements lines 2-5 of Algorithm 1: fork a request for the
// consumer's intention towards each provider and, in parallel, a request
// for each provider's intention towards the query; wait until all answers
// arrive or the timeout fires. Participants that do not answer in time are
// recorded with the Default intention (0 = indifference, Section 2).
type Collector struct {
	// Timeout bounds the wait (line 5 of Algorithm 1). Zero means 1s.
	Timeout time.Duration
	// Default is the intention assumed for non-answers (default 0).
	Default float64
}

// CollectStats accounts for the answers a collection did not get: each
// errored or timed-out participant was silently folded into the Default
// intention, degrading the mediation without leaving a trace. The serving
// report surfaces these so phantom "indifference" does not read as health.
type CollectStats struct {
	// Errors counts answers that arrived as errors (unreachable or
	// misbehaving participants).
	Errors int
	// Timeouts counts answers still outstanding when the timeout fired.
	Timeouts int
}

// Degraded reports whether any intention fell back to the Default.
func (s CollectStats) Degraded() bool { return s.Errors > 0 || s.Timeouts > 0 }

// Collect gathers the consumer's intention vector CI⃗_q and the providers'
// intention vector PI⃗_q concurrently. providers must be indexed like pq;
// the returned slices are indexed alike. Collect never blocks past the
// timeout and never leaks goroutines (stragglers finish into a buffered
// channel and exit). The stats account for every answer that fell back to
// the Default intention.
func (c *Collector) Collect(ctx context.Context, q *model.Query, pq []*model.Provider,
	consumer ConsumerClient, providers []ProviderClient) (ci, pi []float64, stats CollectStats) {

	timeout := c.Timeout
	if timeout <= 0 {
		timeout = time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	n := len(pq)
	ci = make([]float64, n)
	pi = make([]float64, n)
	for i := range ci {
		ci[i] = c.Default
		pi[i] = c.Default
	}

	type answer struct {
		provider bool
		idx      int
		v        float64
		err      error
	}
	expected := 0
	ch := make(chan answer, 2*n)
	for i := range pq {
		if consumer != nil {
			expected++
			go func(idx int) {
				v, err := consumer.Intention(ctx, q, pq[idx])
				ch <- answer{provider: false, idx: idx, v: v, err: err}
			}(i)
		}
		if i < len(providers) && providers[i] != nil {
			expected++
			go func(idx int) {
				v, err := providers[idx].Intention(ctx, q)
				ch <- answer{provider: true, idx: idx, v: v, err: err}
			}(i)
		}
	}

	for expected > 0 {
		select {
		case a := <-ch:
			expected--
			if a.err != nil {
				stats.Errors++
				continue
			}
			if a.provider {
				pi[a.idx] = sanitize(a.v)
			} else {
				ci[a.idx] = sanitize(a.v)
			}
		case <-ctx.Done():
			stats.Timeouts = expected
			return ci, pi, stats
		}
	}
	return ci, pi, stats
}

// sanitize guards against NaN and absurd magnitudes from misbehaving
// clients while preserving the raw Def 7/8 range that scoring needs (raw
// values legitimately reach about ±3 with ε = 1).
func sanitize(v float64) float64 {
	if v != v { // NaN
		return 0
	}
	if v > 10 {
		return 10
	}
	if v < -10 {
		return -10
	}
	return v
}

// LocalConsumer adapts a model.Consumer to ConsumerClient, evaluating
// Definition 7 in-process.
type LocalConsumer struct {
	C *model.Consumer
}

// Intention implements ConsumerClient.
func (l LocalConsumer) Intention(_ context.Context, q *model.Query, p *model.Provider) (float64, error) {
	return intention.Consumer(l.C.Preference(p, q.Class), p.Reputation, l.C.Upsilon, l.C.Epsilon), nil
}

// LocalProvider adapts a model.Provider to ProviderClient, evaluating
// Definition 8 in-process at the given wall-clock anchor.
type LocalProvider struct {
	P *model.Provider
	// Now supplies the simulation time for the utilization read; nil
	// means "time 0".
	Now func() float64
}

// Intention implements ProviderClient.
func (l LocalProvider) Intention(_ context.Context, q *model.Query) (float64, error) {
	now := 0.0
	if l.Now != nil {
		now = l.Now()
	}
	return intention.Provider(l.P.Preference(q.Class), l.P.OperationalLoad(now), l.P.SmoothSat, l.P.Epsilon), nil
}

package mediator

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"sqlb/internal/allocator"
	"sqlb/internal/model"
	"sqlb/internal/randx"
)

// batchFixture builds two identical populations (same seed) so one can be
// driven through sequential Mediate and the other through MediateBatch.
func batchFixture(t *testing.T, consumers, providers int) (a, b *model.Population) {
	t.Helper()
	cfg := model.DefaultConfig()
	cfg.Consumers = consumers
	cfg.Providers = providers
	return model.NewPopulation(cfg, randx.New(33), 0),
		model.NewPopulation(cfg, randx.New(33), 0)
}

// mintQueries mints the same query stream against both populations' consumers.
func mintQueries(pop *model.Population, n int) []*model.Query {
	qs := make([]*model.Query, n)
	for i := range qs {
		qs[i] = &model.Query{
			ID:       uint64(i + 1),
			Consumer: pop.Consumers[i%len(pop.Consumers)],
			Class:    i % 2,
			Units:    130 + 20*float64(i%2),
			N:        1 + i%2,
		}
	}
	return qs
}

func TestMediateBatchEquivalentToSequential(t *testing.T) {
	// A batch must be observably identical to the same sequence of single
	// mediations at the same clock reading: same selections, same intention
	// vectors, same tracker bookkeeping.
	popSeq, popBatch := batchFixture(t, 3, 16)
	now := func() float64 { return 7 }
	seq := NewServer(allocator.NewSQLB(), popSeq, 100*time.Millisecond, now)
	bat := NewServer(allocator.NewSQLB(), popBatch, 100*time.Millisecond, now)

	const n = 40
	wantAllocs := make([]*Allocation, n)
	for i, q := range mintQueries(popSeq, n) {
		alloc, err := seq.Mediate(context.Background(), q)
		if err != nil {
			t.Fatalf("sequential Mediate %d: %v", i, err)
		}
		wantAllocs[i] = alloc
	}
	results := bat.MediateBatch(context.Background(), mintQueries(popBatch, n))
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("batch query %d: %v", i, r.Err)
		}
		want := wantAllocs[i]
		if len(r.Alloc.Selected) != len(want.Selected) {
			t.Fatalf("query %d: batch selected %v, sequential %v", i, r.Alloc.Selected, want.Selected)
		}
		for j := range want.Selected {
			if r.Alloc.Selected[j] != want.Selected[j] {
				t.Fatalf("query %d: batch selected %v, sequential %v", i, r.Alloc.Selected, want.Selected)
			}
		}
		for j := range want.CI {
			if math.Abs(r.Alloc.CI[j]-want.CI[j]) > 1e-12 || math.Abs(r.Alloc.PI[j]-want.PI[j]) > 1e-12 {
				t.Fatalf("query %d provider %d: intentions diverged (%v/%v vs %v/%v)",
					i, j, r.Alloc.CI[j], r.Alloc.PI[j], want.CI[j], want.PI[j])
			}
		}
		if r.Alloc.Degraded() {
			t.Fatalf("query %d: in-process batch reported degraded collection", i)
		}
	}
	// The commits' bookkeeping matches too.
	for i, p := range popSeq.Providers {
		pb := popBatch.Providers[i]
		if p.Public.Proposed() != pb.Public.Proposed() || p.Public.Performed() != pb.Public.Performed() {
			t.Fatalf("provider %d tracker diverged: %d/%d vs %d/%d",
				i, p.Public.Proposed(), p.Public.Performed(), pb.Public.Proposed(), pb.Public.Performed())
		}
	}
	for i, c := range popSeq.Consumers {
		if c.Tracker.Queries() != popBatch.Consumers[i].Tracker.Queries() {
			t.Fatalf("consumer %d query records diverged", i)
		}
	}
}

func TestMediateBatchPerQueryErrors(t *testing.T) {
	pop := newPop(t, 2, 4)
	srv := NewServer(allocator.NewSQLB(), pop, 50*time.Millisecond, func() float64 { return 0 })
	good := newQuery(pop, 1, 1)
	noConsumer := newQuery(pop, 2, 1)
	noConsumer.Consumer = nil
	unservable := newQuery(pop, 3, 1)
	unservable.Class = 99 // no provider advertises it under a class-bounded matchmaker
	srv.SetMatchmaker(CapabilityMatcher{Capable: func(p *model.Provider, class int) bool {
		return class < 2
	}})
	res := srv.MediateBatch(context.Background(), []*model.Query{good, noConsumer, unservable, nil})
	if res[0].Err != nil || res[0].Alloc == nil {
		t.Fatalf("good query failed: %v", res[0].Err)
	}
	if res[1].Err == nil || res[3].Err == nil {
		t.Fatal("consumer-less/nil queries accepted")
	}
	if !errors.Is(res[2].Err, ErrNoProviders) {
		t.Fatalf("unservable class: err = %v, want ErrNoProviders", res[2].Err)
	}
}

func TestMediateBatchAfterClose(t *testing.T) {
	pop := newPop(t, 1, 3)
	srv := NewServer(allocator.NewSQLB(), pop, 50*time.Millisecond, nil)
	srv.Close()
	res := srv.MediateBatch(context.Background(), mintQueries(pop, 3))
	for i, r := range res {
		if r.Err != ErrServerClosed {
			t.Fatalf("result %d: err = %v, want ErrServerClosed", i, r.Err)
		}
	}
}

func TestMediateBatchApplyLoadsProviders(t *testing.T) {
	pop := newPop(t, 1, 4)
	srv := NewServer(allocator.NewSQLB(), pop, 50*time.Millisecond, func() float64 { return 0 })
	srv.SetApply(true)
	res := srv.MediateBatch(context.Background(), mintQueries(pop, 8))
	assigned := 0
	for _, r := range res {
		if r.Err != nil {
			t.Fatalf("batch: %v", r.Err)
		}
		assigned += len(r.Alloc.Selected)
	}
	var performed uint64
	var backlog float64
	for _, p := range pop.Providers {
		performed += p.QueriesPerformed
		backlog += p.Backlog(0)
	}
	if performed != uint64(assigned) {
		t.Fatalf("providers performed %d queries, want %d (SetApply commits Assign)", performed, assigned)
	}
	if backlog <= 0 {
		t.Fatal("applied allocations should leave queued work behind")
	}
}

// TestServerMediateCloseRace drives concurrent Mediate, MediateBatch, and
// Close — the shutdown path the serving driver exercises. Run under
// `go test -race`: the invariant is simply that every call returns either a
// valid allocation or ErrServerClosed, with no data race.
func TestServerMediateCloseRace(t *testing.T) {
	pop := newPop(t, 4, 12)
	srv := NewServer(allocator.NewSQLB(), pop, 100*time.Millisecond, nil)
	srv.SetApply(true)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				q := newQuery(pop, uint64(1000*g+i), 1)
				q.Consumer = pop.Consumers[(g+i)%len(pop.Consumers)]
				if g%2 == 0 {
					if _, err := srv.Mediate(context.Background(), q); err != nil && err != ErrServerClosed {
						t.Errorf("Mediate: %v", err)
						return
					}
					continue
				}
				for _, r := range srv.MediateBatch(context.Background(), []*model.Query{q}) {
					if r.Err != nil && r.Err != ErrServerClosed {
						t.Errorf("MediateBatch: %v", r.Err)
						return
					}
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		time.Sleep(time.Millisecond)
		srv.Close()
	}()
	close(start)
	wg.Wait()
	// After Close every path must fail fast.
	if _, err := srv.Mediate(context.Background(), newQuery(pop, 9999, 1)); err != ErrServerClosed {
		t.Fatalf("post-close Mediate err = %v, want ErrServerClosed", err)
	}
}

package mediator

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sqlb/internal/allocator"
	"sqlb/internal/model"
)

func TestServerMediateBasics(t *testing.T) {
	pop := newPop(t, 2, 6)
	srv := NewServer(allocator.NewSQLB(), pop, 100*time.Millisecond, func() float64 { return 1 })
	alloc, err := srv.Mediate(context.Background(), newQuery(pop, 1, 2))
	if err != nil {
		t.Fatalf("Mediate: %v", err)
	}
	if len(alloc.Selected) != 2 {
		t.Fatalf("selected %d providers, want 2", len(alloc.Selected))
	}
	// Bookkeeping happened: every provider saw the proposal.
	for _, p := range pop.Providers {
		if p.Public.Proposed() != 1 {
			t.Errorf("provider %d proposals = %d, want 1", p.ID, p.Public.Proposed())
		}
	}
}

func TestServerConcurrentSubmissions(t *testing.T) {
	pop := newPop(t, 4, 12)
	srv := NewServer(allocator.NewSQLB(), pop, 200*time.Millisecond, nil)
	const queries = 64
	var wg sync.WaitGroup
	var failures atomic.Int64
	var selected atomic.Int64
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := newQuery(pop, uint64(i+1), 1)
			q.Consumer = pop.Consumers[i%len(pop.Consumers)]
			alloc, err := srv.Mediate(context.Background(), q)
			if err != nil {
				failures.Add(1)
				return
			}
			selected.Add(int64(len(alloc.Selected)))
		}(i)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d mediations failed", failures.Load())
	}
	if selected.Load() != queries {
		t.Fatalf("selected %d providers total, want %d", selected.Load(), queries)
	}
	// Every provider saw every query (notification of mediation results).
	for _, p := range pop.Providers {
		if got := p.Public.Proposed(); got != queries {
			t.Errorf("provider %d proposals = %d, want %d", p.ID, got, queries)
		}
	}
	// Consumers logged their own queries.
	total := 0
	for _, c := range pop.Consumers {
		total += c.Tracker.Queries()
	}
	if total != queries {
		t.Errorf("consumer-side query records = %d, want %d", total, queries)
	}
}

func TestServerClose(t *testing.T) {
	pop := newPop(t, 1, 3)
	srv := NewServer(allocator.NewSQLB(), pop, 50*time.Millisecond, nil)
	srv.Close()
	if _, err := srv.Mediate(context.Background(), newQuery(pop, 1, 1)); err != ErrServerClosed {
		t.Fatalf("err = %v, want ErrServerClosed", err)
	}
}

func TestServerRejectsBadQueries(t *testing.T) {
	pop := newPop(t, 1, 3)
	srv := NewServer(allocator.NewSQLB(), pop, 50*time.Millisecond, nil)
	if _, err := srv.Mediate(context.Background(), nil); err == nil {
		t.Fatal("nil query accepted")
	}
	q := newQuery(pop, 1, 1)
	q.Consumer = nil
	if _, err := srv.Mediate(context.Background(), q); err == nil {
		t.Fatal("consumer-less query accepted")
	}
}

func TestServerNoProviders(t *testing.T) {
	pop := newPop(t, 1, 2)
	for _, p := range pop.Providers {
		p.Alive = false
	}
	srv := NewServer(allocator.NewSQLB(), pop, 50*time.Millisecond, nil)
	if _, err := srv.Mediate(context.Background(), newQuery(pop, 1, 1)); err == nil {
		t.Fatal("expected ErrNoProviders")
	}
}

func TestServerCustomMatchmaker(t *testing.T) {
	pop := newPop(t, 1, 6)
	srv := NewServer(allocator.NewSQLB(), pop, 50*time.Millisecond, nil)
	srv.SetMatchmaker(CapabilityMatcher{Capable: func(p *model.Provider, class int) bool {
		return p.ID < 2
	}})
	alloc, err := srv.Mediate(context.Background(), newQuery(pop, 1, 5))
	if err != nil {
		t.Fatalf("Mediate: %v", err)
	}
	if len(alloc.Pq) != 2 {
		t.Errorf("Pq = %d, want 2 capable providers", len(alloc.Pq))
	}
}

// mutatingMatcher returns its internal slice and compacts it in place on
// the next call — the aliasing behaviour of an indexed matchmaker's lazy
// prune, distilled.
type mutatingMatcher struct {
	list []*model.Provider
}

func (m *mutatingMatcher) Match(_ *model.Query, _ *model.Population) []*model.Provider {
	kept := m.list[:0]
	for _, p := range m.list {
		if p.Alive {
			kept = append(kept, p)
		}
	}
	for i := len(kept); i < len(m.list); i++ {
		m.list[i] = nil
	}
	m.list = kept
	return kept
}

func TestServerAllocationSurvivesMatchmakerMutation(t *testing.T) {
	// An Allocation returned by Mediate must stay valid after a later
	// mediation prunes the matchmaker's internal list (the server copies
	// Pq before it escapes the lock).
	pop := newPop(t, 1, 4)
	srv := NewServer(allocator.NewSQLB(), pop, 50*time.Millisecond, nil)
	srv.SetMatchmaker(&mutatingMatcher{list: append([]*model.Provider(nil), pop.Providers...)})

	first, err := srv.Mediate(context.Background(), newQuery(pop, 1, 1))
	if err != nil {
		t.Fatalf("Mediate: %v", err)
	}
	want := append([]*model.Provider(nil), first.Pq...)

	// A provider fails unannounced; the next mediation prunes in place.
	pop.Providers[0].Alive = false
	if _, err := srv.Mediate(context.Background(), newQuery(pop, 2, 1)); err != nil {
		t.Fatalf("second Mediate: %v", err)
	}

	for i, p := range first.Pq {
		if p == nil {
			t.Fatalf("retained Allocation.Pq[%d] nil-ed by later prune", i)
		}
		if p != want[i] {
			t.Fatalf("retained Allocation.Pq[%d] shifted by later prune", i)
		}
	}
	if sel := first.SelectedProviders(); len(sel) != 1 || sel[0] == nil {
		t.Fatal("SelectedProviders corrupted on the retained allocation")
	}
}

func TestAllocateCollectedValidation(t *testing.T) {
	pop := newPop(t, 1, 3)
	med := New(allocator.NewSQLB())
	q := newQuery(pop, 1, 1)
	if _, err := med.AllocateCollected(0, q, pop.Providers, []float64{1}, []float64{1, 1, 1}); err == nil {
		t.Fatal("mismatched vectors accepted")
	}
	if _, err := med.AllocateCollected(0, q, nil, nil, nil); err == nil {
		t.Fatal("empty Pq accepted")
	}
	bare := &Mediator{}
	ci := []float64{0, 0, 0}
	if _, err := bare.AllocateCollected(0, q, pop.Providers, ci, ci); err == nil {
		t.Fatal("strategy-less mediator accepted")
	}
}

package mediator

import (
	"context"
	"errors"
	"fmt"

	"sqlb/internal/intention"
	"sqlb/internal/model"
)

// BatchResult is the outcome of one query within a MediateBatch call.
type BatchResult struct {
	// Alloc is the allocation; nil when Err is set. Its Pq/CI/PI/Selected
	// alias server-owned batch scratch and are valid until the next
	// MediateBatch on this server.
	Alloc *Allocation
	// Err is the per-query mediation error (ErrNoProviders for an empty
	// Pq, ErrServerClosed after Close, a validation error otherwise).
	Err error
}

// batchScratch is the server-owned working memory MediateBatch reuses
// across batches. Each batch bumps the epoch; per-class and per-(consumer,
// class) cached vectors carry the epoch they were computed in, so
// "recompute this batch?" is one integer compare and nothing is cleared or
// reallocated between batches. Buffer capacities converge to the workload's
// high-water mark, after which a batch's only heap allocations are the two
// result slices it returns.
type batchScratch struct {
	epoch uint64
	// pq/pi/stamp are per query class (classes are dense small ints). The
	// provider intentions of Definition 8 depend only on (provider, class,
	// clock) — not on the consumer — so one PI⃗ vector serves every query
	// of the class in the batch. The pq buffers also isolate the batch from
	// the matchmaker: an index's posting list may be compacted in place by
	// a later turn's lazy prune, so the batch copies into storage it owns.
	pq    [][]*model.Provider
	pi    [][]float64
	stamp []uint64
	// ci is per (consumer, class): Definition 7 reads the consumer's
	// preferences and the providers' reputations, neither of which a
	// mediation commit updates. Entries persist across batches (bounded by
	// the distinct pairs the workload produces) and revalidate by epoch.
	ci map[ciKey]*ciEntry
	// sel backs the per-query Selected copies: reset per batch, appended
	// per query. A regrow strands the old block with the batch that
	// references it, so earlier results stay intact.
	sel []int
	// allocs is the per-batch Allocation slab (one allocation per batch
	// instead of one per query).
	allocs []Allocation
}

type ciKey struct {
	consumer *model.Consumer
	class    int
}

type ciEntry struct {
	epoch uint64
	buf   []float64
}

// class ensures the per-class vectors cover class and returns whether the
// class's cached pq/pi are valid for the current epoch.
func (b *batchScratch) class(class int) bool {
	if class >= len(b.stamp) {
		pq := make([][]*model.Provider, class+1)
		pi := make([][]float64, class+1)
		stamp := make([]uint64, class+1)
		copy(pq, b.pq)
		copy(pi, b.pi)
		copy(stamp, b.stamp)
		b.pq, b.pi, b.stamp = pq, pi, stamp
	}
	return b.stamp[class] == b.epoch
}

// MediateBatch mediates a batch of queries under one mediation turn: one
// lock acquisition, one matchmaking lookup and one provider-intention
// vector per distinct query class, one consumer-intention vector per
// distinct (consumer, class) pair — while the allocation commits (scoring,
// ranking, selection, result notification) still run per query in slice
// order, reading tracker state updated by the commits before them. The
// results are therefore identical to calling Mediate sequentially on the
// same queries at the same clock reading; the batch only amortizes the
// side-effect-free prefix of Algorithm 1. (Under SetApply the memoized
// provider intentions are a snapshot from the start of the batch: work
// enqueued by earlier queries of the same batch shows up in Definition 8's
// load term only from the next batch on — staleness bounded by one batch.)
//
// Intentions are computed synchronously in-process (the throughput path);
// the concurrent Collector fan-out of Mediate is for slow or remote
// participants and reports CollectErrors/CollectTimeouts instead. The
// returned allocations alias the server's batch scratch and are valid
// until the next MediateBatch call; steady-state cost is two small slice
// allocations per batch, independent of |Pq| and batch size.
func (s *Server) MediateBatch(ctx context.Context, qs []*model.Query) []BatchResult {
	out := make([]BatchResult, len(qs))
	if len(qs) == 0 {
		return out
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		for i := range out {
			out[i].Err = ErrServerClosed
		}
		return out
	}
	match := s.med.Match
	if match == nil {
		match = AllProviders{}
	}
	b := &s.batch
	b.epoch++
	if b.ci == nil {
		b.ci = make(map[ciKey]*ciEntry)
	}
	b.sel = b.sel[:0]
	b.allocs = make([]Allocation, len(qs))
	now := s.now()
	for i, q := range qs {
		if err := ctx.Err(); err != nil {
			out[i].Err = err
			continue
		}
		if q == nil || q.Consumer == nil {
			out[i].Err = errors.New("mediator: query needs a consumer")
			continue
		}
		if !b.class(q.Class) {
			pq := b.pq[q.Class][:0]
			if bm, ok := match.(BufferedMatchmaker); ok {
				pq = bm.MatchInto(pq, q, s.pop)
			} else {
				pq = append(pq, match.Match(q, s.pop)...)
			}
			b.pq[q.Class] = pq
			pi := growFloats(b.pi[q.Class], len(pq))
			for j, p := range pq {
				pi[j] = intention.Provider(p.Preference(q.Class), p.OperationalLoad(now), p.SmoothSat, p.Epsilon)
			}
			b.pi[q.Class] = pi
			b.stamp[q.Class] = b.epoch
		}
		pq := b.pq[q.Class]
		if len(pq) == 0 {
			out[i].Err = fmt.Errorf("%w (query %d)", ErrNoProviders, q.ID)
			continue
		}
		pi := b.pi[q.Class]
		key := ciKey{consumer: q.Consumer, class: q.Class}
		e := b.ci[key]
		if e == nil {
			e = &ciEntry{}
			b.ci[key] = e
		}
		if e.epoch != b.epoch {
			c := q.Consumer
			e.buf = growFloats(e.buf, len(pq))
			for j, p := range pq {
				e.buf[j] = intention.Consumer(c.Preference(p, q.Class), p.Reputation, c.Upsilon, c.Epsilon)
			}
			e.epoch = b.epoch
		}
		alloc := &b.allocs[i]
		if err := s.med.allocateInto(alloc, now, q, pq, e.buf, pi); err != nil {
			out[i].Err = err
			continue
		}
		// Copy the selection out of the mediator scratch before the next
		// query's commit overwrites it.
		start := len(b.sel)
		b.sel = append(b.sel, alloc.Selected...)
		alloc.Selected = b.sel[start:len(b.sel):len(b.sel)]
		if s.apply {
			s.applyAllocation(now, q, alloc)
		}
		out[i].Alloc = alloc
	}
	return out
}

package mediator

import (
	"context"
	"errors"
	"fmt"

	"sqlb/internal/intention"
	"sqlb/internal/model"
)

// BatchResult is the outcome of one query within a MediateBatch call.
type BatchResult struct {
	// Alloc is the allocation; nil when Err is set.
	Alloc *Allocation
	// Err is the per-query mediation error (ErrNoProviders for an empty
	// Pq, ErrServerClosed after Close, a validation error otherwise).
	Err error
}

// batchMemo caches the work a batch amortizes across queries that share a
// class or a consumer. All cached state is valid for one mediation turn:
// nothing a commit touches (satisfaction trackers) feeds it, so reusing it
// across the batch is observably identical to recomputing it per query.
type batchMemo struct {
	now float64
	// pq and pi are per query class. The provider intentions of Definition
	// 8 depend only on (provider, class, clock) — not on the consumer — so
	// one PI⃗ vector serves every query of the class in the batch.
	pq map[int][]*model.Provider
	pi map[int][]float64
	// ci is per (consumer, class): Definition 7 reads the consumer's
	// preferences and the providers' reputations, neither of which a
	// mediation commit updates.
	ci map[ciKey][]float64
}

type ciKey struct {
	consumer *model.Consumer
	class    int
}

// MediateBatch mediates a batch of queries under one mediation turn: one
// lock acquisition, one matchmaking lookup and one provider-intention
// vector per distinct query class, one consumer-intention vector per
// distinct (consumer, class) pair — while the allocation commits (scoring,
// ranking, selection, result notification) still run per query in slice
// order, reading tracker state updated by the commits before them. The
// results are therefore identical to calling Mediate sequentially on the
// same queries at the same clock reading; the batch only amortizes the
// side-effect-free prefix of Algorithm 1. (Under SetApply the memoized
// provider intentions are a snapshot from the start of the batch: work
// enqueued by earlier queries of the same batch shows up in Definition 8's
// load term only from the next batch on — staleness bounded by one batch.)
//
// Intentions are computed synchronously in-process (the throughput path);
// the concurrent Collector fan-out of Mediate is for slow or remote
// participants and reports CollectErrors/CollectTimeouts instead.
func (s *Server) MediateBatch(ctx context.Context, qs []*model.Query) []BatchResult {
	out := make([]BatchResult, len(qs))
	if len(qs) == 0 {
		return out
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		for i := range out {
			out[i].Err = ErrServerClosed
		}
		return out
	}
	match := s.med.Match
	if match == nil {
		match = AllProviders{}
	}
	memo := batchMemo{
		now: s.now(),
		pq:  make(map[int][]*model.Provider),
		pi:  make(map[int][]float64),
		ci:  make(map[ciKey][]float64),
	}
	for i, q := range qs {
		if err := ctx.Err(); err != nil {
			out[i].Err = err
			continue
		}
		if q == nil || q.Consumer == nil {
			out[i].Err = errors.New("mediator: query needs a consumer")
			continue
		}
		pq, ok := memo.pq[q.Class]
		if !ok {
			// Copy once per class: the index's posting list may be
			// compacted by a later turn's lazy prune, and every allocation
			// of this batch escapes the lock aliasing this slice.
			pq = append([]*model.Provider(nil), match.Match(q, s.pop)...)
			memo.pq[q.Class] = pq
		}
		if len(pq) == 0 {
			out[i].Err = fmt.Errorf("%w (query %d)", ErrNoProviders, q.ID)
			continue
		}
		pi, ok := memo.pi[q.Class]
		if !ok {
			pi = make([]float64, len(pq))
			for j, p := range pq {
				pi[j] = intention.Provider(p.Preference(q.Class), p.OperationalLoad(memo.now), p.SmoothSat, p.Epsilon)
			}
			memo.pi[q.Class] = pi
		}
		key := ciKey{consumer: q.Consumer, class: q.Class}
		ci, ok := memo.ci[key]
		if !ok {
			c := q.Consumer
			ci = make([]float64, len(pq))
			for j, p := range pq {
				ci[j] = intention.Consumer(c.Preference(p, q.Class), p.Reputation, c.Upsilon, c.Epsilon)
			}
			memo.ci[key] = ci
		}
		alloc, err := s.med.AllocateCollected(memo.now, q, pq, ci, pi)
		if err != nil {
			out[i].Err = err
			continue
		}
		if s.apply {
			s.applyAllocation(memo.now, q, alloc)
		}
		out[i].Alloc = alloc
	}
	return out
}

// Package mediator implements the mediation layer of Figure 1 and
// Algorithm 1: matchmaking (finding Pq), obtaining the consumer's and the
// providers' intentions (synchronously for the simulator, or concurrently
// with a timeout for live deployments), driving the pluggable allocation
// strategy, and notifying every provider in Pq of the mediation result so
// that the satisfaction windows of Section 3 stay current.
package mediator

import (
	"errors"
	"fmt"

	"sqlb/internal/allocator"
	"sqlb/internal/core"
	"sqlb/internal/intention"
	"sqlb/internal/model"
)

// ErrNoProviders reports a query for which matchmaking found no provider
// (Pq = ∅). The paper only considers feasible queries; the simulator
// counts such a query as dropped — match with errors.Is, since Allocate
// wraps it with the query ID. Under heterogeneous capabilities this is a
// normal outcome (a class every specialist skipped), not a bug.
var ErrNoProviders = errors.New("mediator: no provider can treat the query")

// Matchmaker finds the set Pq of providers able to treat a query (line 1
// of Algorithm 1). The paper assumes a sound and complete matchmaking
// procedure (Section 2, refs [11,14]) and, in the experiments, that every
// provider can perform every query. Implementations must return Pq in
// ascending provider-ID order so allocation tie-breaks — and therefore
// whole simulations — do not depend on which matchmaker produced the set.
type Matchmaker interface {
	// Match returns the alive providers able to treat q, in ascending ID
	// order.
	Match(q *model.Query, pop *model.Population) []*model.Provider
}

// BufferedMatchmaker is the allocation-free variant of Matchmaker: MatchInto
// appends the matchmade set to buf (reusing its capacity) instead of
// allocating a fresh slice per query. The mediator's fast path probes for it
// and lends its own scratch buffer; the ordering contract is the same as
// Match's. Matchmakers that already answer from internal storage without
// allocating (the inverted index) need not implement it.
type BufferedMatchmaker interface {
	Matchmaker
	// MatchInto appends the alive providers able to treat q to buf and
	// returns the extended slice, in ascending provider-ID order.
	MatchInto(buf []*model.Provider, q *model.Query, pop *model.Population) []*model.Provider
}

// AllProviders is the experimental-setup matchmaker: every provider still
// registered to the mediator can treat every query.
type AllProviders struct{}

// Match implements Matchmaker.
func (AllProviders) Match(_ *model.Query, pop *model.Population) []*model.Provider {
	return pop.AliveProviders()
}

// MatchInto implements BufferedMatchmaker.
func (AllProviders) MatchInto(buf []*model.Provider, _ *model.Query, pop *model.Population) []*model.Provider {
	for _, p := range pop.Providers {
		if p.Alive {
			buf = append(buf, p)
		}
	}
	return buf
}

// CapabilityMatcher matches on a per-provider capability predicate; used by
// examples where providers serve only some query classes.
type CapabilityMatcher struct {
	// Capable reports whether the provider can treat queries of the class.
	Capable func(p *model.Provider, queryClass int) bool
}

// Match implements Matchmaker.
func (m CapabilityMatcher) Match(q *model.Query, pop *model.Population) []*model.Provider {
	return m.MatchInto(make([]*model.Provider, 0, len(pop.Providers)), q, pop)
}

// MatchInto implements BufferedMatchmaker.
func (m CapabilityMatcher) MatchInto(buf []*model.Provider, q *model.Query, pop *model.Population) []*model.Provider {
	for _, p := range pop.Providers {
		if p.Alive && (m.Capable == nil || m.Capable(p, q.Class)) {
			buf = append(buf, p)
		}
	}
	return buf
}

// ByCapability returns the naive sound-and-complete matchmaker over the
// providers' advertised capability sets (model.Provider.CanServe): a full
// O(|P|) population scan per query. It is the reference the indexed
// matchmaker (internal/matchmaking) is property-tested against, and the
// baseline its benchmarks beat.
func ByCapability() CapabilityMatcher {
	return CapabilityMatcher{Capable: func(p *model.Provider, queryClass int) bool {
		return p.CanServe(queryClass)
	}}
}

// Allocation is the outcome of mediating one query.
type Allocation struct {
	// Query is the mediated query.
	Query *model.Query
	// Pq is the matchmade provider set. When obtained from Mediator.
	// Allocate it aliases mediator scratch or the index's internal posting
	// list (both kept allocation-free for the simulator's hot path) and is
	// only valid until the next mediation or provider churn event — as is
	// the whole Allocation on that path; callers that retain providers
	// past that point must copy (SelectedProviders does). Allocations
	// returned by Server.Mediate carry their own copies and are safe to
	// retain; Server.MediateBatch results stay valid until the next batch.
	Pq []*model.Provider
	// CI and PI are the expressed intentions, indexed like Pq.
	CI []float64
	PI []float64
	// Selected are the indexes into Pq that got the query, best first
	// (All⃗oc[p] = 1 for these, 0 for the rest).
	Selected []int
	// CollectErrors and CollectTimeouts count the intention answers that
	// fell back to the collector's Default on the concurrent path (errored
	// participants and answers outstanding at the timeout). Zero on the
	// in-process synchronous path, where every intention is computed
	// locally.
	CollectErrors   int
	CollectTimeouts int
}

// Degraded reports whether any intention behind this allocation fell back
// to the collector's Default — the mediation committed on partial
// information.
func (a *Allocation) Degraded() bool { return a.CollectErrors > 0 || a.CollectTimeouts > 0 }

// SelectedProviders returns the providers that got the query, best first.
func (a *Allocation) SelectedProviders() []*model.Provider {
	out := make([]*model.Provider, len(a.Selected))
	for i, idx := range a.Selected {
		out[i] = a.Pq[idx]
	}
	return out
}

// Mediator wires a matchmaker and an allocation strategy.
type Mediator struct {
	// Strategy is the query-allocation method under test.
	Strategy allocator.Allocator
	// Match is the matchmaking procedure; nil means AllProviders.
	Match Matchmaker
	// Exec, when non-nil, runs the mediator's O(|Pq|) index-range loops —
	// intention gathering, satisfaction extraction, and the result
	// notification — through an external executor (the sharded engine's
	// worker pool). The contract mirrors the engine's phase barrier: Exec
	// must cover [0, n) with disjoint [lo, hi) calls and return only after
	// all of them completed; the loop bodies are pure per-index maps (slot
	// writes into vectors indexed like Pq, or writes to provider i alone),
	// so any partition — including the nil serial one — produces identical
	// bytes. Nil keeps the historical single-threaded loops.
	Exec func(n int, fn func(lo, hi int))

	// scratch holds the mediator's reusable per-mediation buffers. A
	// mediator serializes its mediations (the engine's event loop, the
	// server's mu), so one set suffices; the sharded executor only ever
	// writes disjoint index ranges of these vectors.
	scratch medScratch
}

// medScratch is the reusable working memory of one mediator: the intention,
// satisfaction, and matchmade vectors of the current mediation, the
// epoch-stamped selected-set marks, the strategy's buffer pool, and the
// request/allocation shells handed out by the fast path. Everything here is
// sized once at the population's high-water mark and then recycled, which
// is what takes the steady-state mediation to zero heap allocations.
type medScratch struct {
	strat    core.Scratch // lent to the strategy via Request.Scratch
	pq       []*model.Provider
	ci       []float64
	pi       []float64
	provSat  []float64
	selStamp []uint64 // selStamp[i] == epoch ⇔ Pq[i] selected this mediation
	epoch    uint64
	req      allocator.Request
	alloc    Allocation
}

// growFloats returns buf resized to n, reallocating only on capacity growth.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// forRange runs fn over [0, n): through Exec when configured, serially
// otherwise. Hot-path callers branch on Exec themselves before building a
// closure — a func literal passed to the Exec field escapes to the heap, so
// the serial (Exec == nil) path must run its loop inline to stay
// allocation-free.
func (m *Mediator) forRange(n int, fn func(lo, hi int)) {
	if m.Exec != nil {
		m.Exec(n, fn)
		return
	}
	if n > 0 {
		fn(0, n)
	}
}

// New returns a mediator using the given strategy and the all-providers
// matchmaker.
func New(strategy allocator.Allocator) *Mediator {
	return &Mediator{Strategy: strategy, Match: AllProviders{}}
}

// Allocate mediates one query at the given time: matchmaking, intention
// gathering (lines 2-5 of Algorithm 1, computed synchronously here — see
// Collector for the concurrent fork/join variant), allocation (lines 6-10),
// and result notification (recording into every participant's satisfaction
// windows). The strategy sees only public information: expressed intentions
// and intention-based satisfactions.
//
// This is the simulator's hot path and allocates nothing in steady state:
// the returned Allocation and every slice it carries live in the mediator's
// scratch and are valid only until the next mediation on this mediator (or
// provider churn, for Pq). Callers that retain anything past that point
// must copy (SelectedProviders does); Server.Mediate returns durable
// allocations instead.
func (m *Mediator) Allocate(now float64, q *model.Query, pop *model.Population) (*Allocation, error) {
	match := m.Match
	if match == nil {
		match = AllProviders{}
	}
	var pq []*model.Provider
	if bm, ok := match.(BufferedMatchmaker); ok {
		m.scratch.pq = bm.MatchInto(m.scratch.pq[:0], q, pop)
		pq = m.scratch.pq
	} else {
		pq = match.Match(q, pop)
	}
	if len(pq) == 0 {
		return nil, fmt.Errorf("%w (query %d)", ErrNoProviders, q.ID)
	}
	sc := &m.scratch
	sc.ci = growFloats(sc.ci, len(pq))
	sc.pi = growFloats(sc.pi, len(pq))
	ci, pi := sc.ci, sc.pi
	if m.Exec != nil {
		m.Exec(len(pq), func(lo, hi int) { intentionsRange(now, q, pq, ci, pi, lo, hi) })
	} else {
		intentionsRange(now, q, pq, ci, pi, 0, len(pq))
	}
	if err := m.allocateInto(&sc.alloc, now, q, pq, ci, pi); err != nil {
		return nil, err
	}
	return &sc.alloc, nil
}

// AllocateCollected performs the allocation commit of Algorithm 1 (lines
// 6-10) once the intention vectors have been gathered — by Intentions for
// the in-process fast path or by a Collector for the concurrent/live path
// (see Server). It scores, ranks, selects, and notifies every provider in
// Pq of the mediation result. The returned Allocation owns its Selected set
// and is safe to retain (Pq/CI/PI alias the caller's slices).
func (m *Mediator) AllocateCollected(now float64, q *model.Query, pq []*model.Provider, ci, pi []float64) (*Allocation, error) {
	alloc := &Allocation{}
	if err := m.allocateInto(alloc, now, q, pq, ci, pi); err != nil {
		return nil, err
	}
	alloc.Selected = append([]int(nil), alloc.Selected...)
	return alloc, nil
}

// allocateInto is the shared allocation commit: it scores, ranks, selects,
// records the result, and fills out in place. Out's Selected aliases the
// strategy's scratch selection and is valid only until the next mediation
// on this mediator — callers that let the allocation escape copy it
// (AllocateCollected) or arena it (Server.MediateBatch).
func (m *Mediator) allocateInto(out *Allocation, now float64, q *model.Query, pq []*model.Provider, ci, pi []float64) error {
	if m.Strategy == nil {
		return errors.New("mediator: no allocation strategy configured")
	}
	if len(pq) == 0 {
		return fmt.Errorf("%w (query %d)", ErrNoProviders, q.ID)
	}
	if len(ci) != len(pq) || len(pi) != len(pq) {
		return fmt.Errorf("mediator: intention vectors sized %d/%d for %d providers", len(ci), len(pi), len(pq))
	}
	sc := &m.scratch
	sc.provSat = growFloats(sc.provSat, len(pq))
	provSat := sc.provSat
	if m.Exec != nil {
		m.Exec(len(pq), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				provSat[i] = pq[i].Public.Satisfaction()
			}
		})
	} else {
		for i := range pq {
			provSat[i] = pq[i].Public.Satisfaction()
		}
	}
	sc.req = allocator.Request{
		Query:       q,
		Pq:          pq,
		CI:          ci,
		PI:          pi,
		ConsumerSat: q.Consumer.Tracker.Satisfaction(),
		ProviderSat: provSat,
		Now:         now,
		Scratch:     &sc.strat,
	}
	selected := m.Strategy.Allocate(&sc.req)

	m.record(q, pq, ci, pi, selected)
	*out = Allocation{Query: q, Pq: pq, CI: ci, PI: pi, Selected: selected}
	return nil
}

// Intentions computes the consumer and provider intentions for a query
// over Pq, per Definitions 7 and 8. This is the synchronous fast path used
// by the simulator; the formulas are evaluated in-process because every
// participant is local.
//
// The vectors carry the *raw* definition values, which extend below -1
// (Figure 2's surface reaches -2.5). Definition 9's negative branch needs
// that depth: an overutilized provider the consumer loves must eventually
// rank below a willing provider the consumer is lukewarm about, or load
// would keep piling onto favorites until they flee by overutilization.
// The satisfaction windows clamp to [-1,1] at record time (Section 2's
// expressed range), so the δ characteristics stay in [0,1].
func Intentions(now float64, q *model.Query, pq []*model.Provider) (ci, pi []float64) {
	ci = make([]float64, len(pq))
	pi = make([]float64, len(pq))
	intentionsRange(now, q, pq, ci, pi, 0, len(pq))
	return ci, pi
}

// intentionsRange fills the [lo, hi) slots of the intention vectors — the
// per-index map the sharded engine's phase executor partitions. Slot i is
// a pure function of (q, pq[i], now): no accumulator crosses indexes, so
// any partition of [0, len(pq)) produces identical vectors.
func intentionsRange(now float64, q *model.Query, pq []*model.Provider, ci, pi []float64, lo, hi int) {
	c := q.Consumer
	for i := lo; i < hi; i++ {
		p := pq[i]
		ci[i] = intention.Consumer(c.Preference(p, q.Class), p.Reputation, c.Upsilon, c.Epsilon)
		pi[i] = intention.Provider(p.Preference(q.Class), p.OperationalLoad(now), p.SmoothSat, p.Epsilon)
	}
}

// record performs the mediation-result notification: the consumer logs the
// allocation against its shown intentions (Equations 1-2) and every
// provider in Pq — selected or not — logs the proposal in both its public
// (intention-fed) and private (preference-fed) windows. The consumer write
// stays on the caller; the provider loop shards cleanly (provider i's
// windows are touched by iteration i alone, and the selected-set stamps are
// read-only once written), so it runs through Exec when configured.
//
// The selected set is marked with an epoch stamp instead of a per-call map:
// selStamp[i] == epoch means Pq[i] was selected this mediation, and bumping
// the epoch invalidates every stale mark at once. The epoch is a uint64 and
// never reused, so a fresh (zeroed) stamp buffer can never read as
// selected.
func (m *Mediator) record(q *model.Query, pq []*model.Provider, ci, pi []float64, selected []int) {
	q.Consumer.Tracker.RecordAllocation(ci, selected, q.N)
	sc := &m.scratch
	if cap(sc.selStamp) < len(pq) {
		sc.selStamp = make([]uint64, len(pq))
	}
	sc.selStamp = sc.selStamp[:cap(sc.selStamp)]
	sc.epoch++
	for _, idx := range selected {
		if idx >= 0 && idx < len(pq) {
			sc.selStamp[idx] = sc.epoch
		}
	}
	stamp, epoch := sc.selStamp, sc.epoch
	if m.Exec != nil {
		m.Exec(len(pq), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				p := pq[i]
				performed := stamp[i] == epoch
				p.Public.Record(pi[i], performed)
				p.Private.Record(p.Preference(q.Class), performed)
			}
		})
	} else {
		for i, p := range pq {
			performed := stamp[i] == epoch
			p.Public.Record(pi[i], performed)
			p.Private.Record(p.Preference(q.Class), performed)
		}
	}
}

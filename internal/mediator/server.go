package mediator

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"sqlb/internal/allocator"
	"sqlb/internal/model"
)

// Server runs a mediator as a long-lived concurrent service — the live
// counterpart of Figure 1: consumers submit queries from any goroutine;
// for each query the server fans out the intention requests concurrently
// with a timeout (Algorithm 1 lines 2-5, via Collector) and then commits
// the scoring, ranking, allocation, and result notification atomically.
// Mediations are serialized at the commit — the paper's system has one
// mediator, and the satisfaction windows are its bookkeeping — while the
// per-query fan-out still overlaps slow participants within a mediation.
type Server struct {
	med       *Mediator
	pop       *model.Population
	collector *Collector
	now       func() float64

	mu     sync.Mutex
	closed bool
	// batch is MediateBatch's reusable working memory; guarded by mu.
	batch batchScratch
	// apply makes the server commit each allocation onto the selected
	// providers' queues (model.Provider.Assign) inside the mediation turn.
	// The discrete-event engine applies allocations itself; a serving
	// deployment wants the server to do it so provider load — and with it
	// the intentions of Definition 8 — reacts to the traffic it mediates.
	apply bool
}

// ErrServerClosed reports a Submit after Close.
var ErrServerClosed = errors.New("mediator: server closed")

// NewServer returns a server mediating over the population with the given
// strategy. timeout bounds each query's intention collection; now supplies
// the mediation clock (nil means wall-clock seconds since start).
func NewServer(strategy allocator.Allocator, pop *model.Population, timeout time.Duration, now func() float64) *Server {
	if now == nil {
		start := time.Now()
		now = func() float64 { return time.Since(start).Seconds() }
	}
	return &Server{
		med:       New(strategy),
		pop:       pop,
		collector: &Collector{Timeout: timeout},
		now:       now,
	}
}

// SetMatchmaker replaces the matchmaking procedure (default AllProviders).
func (s *Server) SetMatchmaker(m Matchmaker) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.med.Match = m
}

// SetApply makes the server enqueue each mediated query on its selected
// providers (off by default; see the apply field).
func (s *Server) SetApply(apply bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.apply = apply
}

// WithPopulation runs f on the server's population under the mediation
// lock, so f observes a consistent participant state with no mediation
// commit in flight. Observability snapshots read utilization and
// satisfaction gauges through it; f must only read, and must not call
// back into the server.
func (s *Server) WithPopulation(f func(*model.Population)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f(s.pop)
}

// applyAllocation enqueues the query's work on every selected provider.
// Callers hold s.mu.
func (s *Server) applyAllocation(now float64, q *model.Query, alloc *Allocation) {
	for _, idx := range alloc.Selected {
		alloc.Pq[idx].Assign(now, q.Units)
	}
}

// Mediate allocates one query: concurrent intention collection, then an
// atomic allocation commit. Safe for concurrent use.
func (s *Server) Mediate(ctx context.Context, q *model.Query) (*Allocation, error) {
	if q == nil || q.Consumer == nil {
		return nil, errors.New("mediator: query needs a consumer")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrServerClosed
	}

	match := s.med.Match
	if match == nil {
		match = AllProviders{}
	}
	// Copy the matchmade set: an indexed matchmaker returns its internal
	// posting list (see matchmaking.Index.Lookup), which a later
	// mediation's lazy prune may compact in place. The returned
	// Allocation escapes this lock, so the server must not alias mutable
	// matchmaker storage; the single-threaded engine path skips the copy.
	pq := append([]*model.Provider(nil), match.Match(q, s.pop)...)
	if len(pq) == 0 {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w (query %d)", ErrNoProviders, q.ID)
	}
	t := s.now()

	// Fan out the intention requests while holding the mediation turn:
	// participants answer concurrently (each provider is touched by
	// exactly one goroutine), and the commit below sees a consistent
	// population.
	providers := make([]ProviderClient, len(pq))
	for i, p := range pq {
		providers[i] = LocalProvider{P: p, Now: func() float64 { return t }}
	}
	ci, pi, st := s.collector.Collect(ctx, q, pq, LocalConsumer{C: q.Consumer}, providers)

	alloc, err := s.med.AllocateCollected(t, q, pq, ci, pi)
	if alloc != nil {
		alloc.CollectErrors = st.Errors
		alloc.CollectTimeouts = st.Timeouts
		if s.apply {
			s.applyAllocation(t, q, alloc)
		}
	}
	s.mu.Unlock()
	return alloc, err
}

// Close marks the server closed; subsequent Submits fail fast.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
}

package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a scenario from its declarative text form, a small YAML
// subset: top-level `key: value` scalars plus block lists of mappings
// (block style or `- {k: v, ...}` flow style). Example:
//
//	name: surge-then-outage
//	normalized: true
//	interp: linear
//	load:
//	  - {t: 0, v: 0.4}
//	  - {t: 0.5, v: 1.2}
//	  - {t: 1, v: 0.4}
//	waves:
//	  - {t: 0.6, kind: outage, fraction: 0.25}
//	  - {t: 0.9, kind: rejoin, fraction: 1}
//	mix:
//	  - {t: 0, weights: [1, 1]}
//	  - {t: 1, weights: [3, 1]}
//
// Top-level scalars: name, description, normalized (true/false), interp
// (step/linear/cosine), period. List sections: load (knots t/v), waves
// (t, kind, fraction or count), mix (t, weights). Malformed input — bad
// syntax, unknown keys, unparsable numbers, knots out of order, negative
// rates — returns an error; Parse never panics and only returns scenarios
// that pass Validate.
func Parse(data []byte) (*Scenario, error) {
	p := &parser{items: map[string][]item{}}
	for i, raw := range strings.Split(string(data), "\n") {
		if err := p.line(i+1, raw); err != nil {
			return nil, err
		}
	}
	return p.build()
}

// item is one list element: ordered key/value pairs with the line they
// started on (for error messages).
type item struct {
	line   int
	keys   []string
	values map[string]string
}

func (it *item) set(line int, key, value string) error {
	if _, dup := it.values[key]; dup {
		return fmt.Errorf("scenario: line %d: duplicate key %q in list item", line, key)
	}
	it.keys = append(it.keys, key)
	it.values[key] = value
	return nil
}

type parser struct {
	scalars  map[string]string
	items    map[string][]item
	started  map[string]bool // sections opened so far (duplicate guard)
	listKey  string          // current block-list section ("" at top level)
	haveItem bool            // current section has an open item to append fields to
}

var listKeys = map[string]bool{"load": true, "waves": true, "mix": true}
var scalarKeys = map[string]bool{
	"name": true, "description": true, "normalized": true, "interp": true, "period": true,
}

func (p *parser) line(n int, raw string) error {
	// Strip comments and trailing whitespace; skip blank lines.
	if i := strings.IndexByte(raw, '#'); i >= 0 {
		raw = raw[:i]
	}
	line := strings.TrimRight(raw, " \t")
	if strings.TrimSpace(line) == "" {
		return nil
	}
	indent := len(line) - len(strings.TrimLeft(line, " "))
	content := line[indent:]
	if strings.HasPrefix(content, "\t") {
		return fmt.Errorf("scenario: line %d: tabs are not allowed in indentation", n)
	}

	if indent == 0 {
		p.listKey, p.haveItem = "", false
		key, value, err := splitField(n, content)
		if err != nil {
			return err
		}
		switch {
		case listKeys[key]:
			if value != "" {
				return fmt.Errorf("scenario: line %d: %q starts a list and takes no inline value", n, key)
			}
			if p.started[key] {
				return fmt.Errorf("scenario: line %d: duplicate section %q", n, key)
			}
			if p.started == nil {
				p.started = map[string]bool{}
			}
			p.started[key] = true
			p.listKey = key
		case scalarKeys[key]:
			if p.scalars == nil {
				p.scalars = map[string]string{}
			}
			if _, dup := p.scalars[key]; dup {
				return fmt.Errorf("scenario: line %d: duplicate key %q", n, key)
			}
			p.scalars[key] = value
		default:
			return fmt.Errorf("scenario: line %d: unknown key %q", n, key)
		}
		return nil
	}

	if p.listKey == "" {
		return fmt.Errorf("scenario: line %d: indented content outside a list section", n)
	}
	if strings.HasPrefix(content, "-") {
		rest := strings.TrimSpace(content[1:])
		if rest == "" {
			return fmt.Errorf("scenario: line %d: empty list item", n)
		}
		it := item{line: n, values: map[string]string{}}
		if strings.HasPrefix(rest, "{") {
			if err := parseFlowMap(n, rest, &it); err != nil {
				return err
			}
		} else {
			key, value, err := splitField(n, rest)
			if err != nil {
				return err
			}
			if err := it.set(n, key, value); err != nil {
				return err
			}
		}
		p.items[p.listKey] = append(p.items[p.listKey], it)
		p.haveItem = true
		return nil
	}
	// Continuation field of the current block-style item.
	if !p.haveItem {
		return fmt.Errorf("scenario: line %d: field outside a list item (missing \"- \")", n)
	}
	key, value, err := splitField(n, content)
	if err != nil {
		return err
	}
	items := p.items[p.listKey]
	return items[len(items)-1].set(n, key, value)
}

func splitField(n int, s string) (key, value string, err error) {
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return "", "", fmt.Errorf("scenario: line %d: expected \"key: value\", got %q", n, s)
	}
	key = strings.TrimSpace(s[:i])
	value = strings.TrimSpace(s[i+1:])
	if key == "" {
		return "", "", fmt.Errorf("scenario: line %d: empty key", n)
	}
	return key, strings.Trim(value, `"'`), nil
}

// parseFlowMap decodes `{k: v, k: v, ...}` into the item; commas inside
// `[...]` weight lists do not split fields.
func parseFlowMap(n int, s string, it *item) error {
	if !strings.HasSuffix(s, "}") {
		return fmt.Errorf("scenario: line %d: unterminated flow mapping %q", n, s)
	}
	inner := s[1 : len(s)-1]
	depth, start := 0, 0
	fields := []string{}
	for i := 0; i < len(inner); i++ {
		switch inner[i] {
		case '[':
			depth++
		case ']':
			depth--
			if depth < 0 {
				return fmt.Errorf("scenario: line %d: unbalanced brackets in %q", n, s)
			}
		case ',':
			if depth == 0 {
				fields = append(fields, inner[start:i])
				start = i + 1
			}
		case '{', '}':
			return fmt.Errorf("scenario: line %d: nested mappings are not supported", n)
		}
	}
	if depth != 0 {
		return fmt.Errorf("scenario: line %d: unbalanced brackets in %q", n, s)
	}
	fields = append(fields, inner[start:])
	for _, f := range fields {
		if strings.TrimSpace(f) == "" {
			return fmt.Errorf("scenario: line %d: empty field in flow mapping", n)
		}
		key, value, err := splitField(n, strings.TrimSpace(f))
		if err != nil {
			return err
		}
		if err := it.set(n, key, value); err != nil {
			return err
		}
	}
	return nil
}

// build assembles and validates the scenario from the parsed pieces.
func (p *parser) build() (*Scenario, error) {
	s := &Scenario{
		Name:        p.scalars["name"],
		Description: p.scalars["description"],
	}
	switch v := p.scalars["normalized"]; v {
	case "", "false":
	case "true":
		s.Normalized = true
	default:
		return nil, fmt.Errorf("scenario: normalized must be true or false, got %q", v)
	}
	interp, err := ParseInterp(p.scalars["interp"])
	if err != nil {
		return nil, err
	}
	period := 0.0
	if v, ok := p.scalars["period"]; ok {
		period, err = parseNumber(0, "period", v)
		if err != nil {
			return nil, err
		}
	}

	if p.started["load"] {
		curve := &Curve{Interp: interp, Period: period}
		for _, it := range p.items["load"] {
			k := Knot{}
			for _, key := range it.keys {
				switch key {
				case "t":
					k.T, err = parseNumber(it.line, "t", it.values[key])
				case "v":
					k.V, err = parseNumber(it.line, "v", it.values[key])
				default:
					err = fmt.Errorf("scenario: line %d: unknown load knot key %q (want t, v)", it.line, key)
				}
				if err != nil {
					return nil, err
				}
			}
			if err := requireKeys(it, "t", "v"); err != nil {
				return nil, err
			}
			curve.Knots = append(curve.Knots, k)
		}
		s.Load = curve
	} else if period != 0 || p.scalars["interp"] != "" {
		return nil, fmt.Errorf("scenario: interp/period given without a load section")
	}

	for _, it := range p.items["waves"] {
		w := Wave{}
		for _, key := range it.keys {
			switch key {
			case "t":
				w.Time, err = parseNumber(it.line, "t", it.values[key])
			case "kind":
				w.Kind, err = ParseWaveKind(it.values[key])
			case "fraction":
				w.Fraction, err = parseNumber(it.line, "fraction", it.values[key])
			case "count":
				var c int64
				c, err = strconv.ParseInt(it.values[key], 10, 32)
				if err != nil {
					err = fmt.Errorf("scenario: line %d: bad count %q", it.line, it.values[key])
				}
				w.Count = int(c)
			default:
				err = fmt.Errorf("scenario: line %d: unknown wave key %q (want t, kind, fraction, count)", it.line, key)
			}
			if err != nil {
				return nil, err
			}
		}
		if err := requireKeys(it, "t", "kind"); err != nil {
			return nil, err
		}
		s.Waves = append(s.Waves, w)
	}

	for _, it := range p.items["mix"] {
		k := MixKnot{}
		for _, key := range it.keys {
			switch key {
			case "t":
				k.T, err = parseNumber(it.line, "t", it.values[key])
			case "weights":
				k.Weights, err = parseWeights(it.line, it.values[key])
			default:
				err = fmt.Errorf("scenario: line %d: unknown mix key %q (want t, weights)", it.line, key)
			}
			if err != nil {
				return nil, err
			}
		}
		if err := requireKeys(it, "t", "weights"); err != nil {
			return nil, err
		}
		s.Mix = append(s.Mix, k)
	}

	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func requireKeys(it item, keys ...string) error {
	for _, key := range keys {
		if _, ok := it.values[key]; !ok {
			return fmt.Errorf("scenario: line %d: list item is missing %q", it.line, key)
		}
	}
	return nil
}

func parseNumber(line int, key, v string) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("scenario: line %d: bad number for %s: %q", line, key, v)
	}
	return f, nil
}

// parseWeights decodes `[w, w, ...]`.
func parseWeights(line int, v string) ([]float64, error) {
	if !strings.HasPrefix(v, "[") || !strings.HasSuffix(v, "]") {
		return nil, fmt.Errorf("scenario: line %d: weights must be a [..] list, got %q", line, v)
	}
	inner := strings.TrimSpace(v[1 : len(v)-1])
	if inner == "" {
		return nil, fmt.Errorf("scenario: line %d: weights list is empty", line)
	}
	parts := strings.Split(inner, ",")
	out := make([]float64, 0, len(parts))
	for _, part := range parts {
		f, err := parseNumber(line, "weights", strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

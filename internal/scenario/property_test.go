package scenario

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomCurve draws a valid curve: strictly increasing knot times built
// from positive steps, non-negative finite values, a random interpolation
// kind, and (sometimes) a period enclosing the knots.
func randomCurve(rng *rand.Rand) *Curve {
	n := 1 + rng.Intn(8)
	c := &Curve{
		Knots:  make([]Knot, n),
		Interp: Interp(rng.Intn(3)),
	}
	t := rng.Float64() * 10
	for i := 0; i < n; i++ {
		c.Knots[i] = Knot{T: t, V: rng.Float64() * 5}
		t += 0.01 + rng.Float64()*100
	}
	if rng.Intn(2) == 0 {
		c.Period = c.Knots[n-1].T + rng.Float64()*50
	}
	return c
}

// TestCurveValueWithinKnotBounds: for every interpolation kind, At never
// escapes [min knot value, max knot value] — interpolation connects the
// knots, it does not overshoot them (the property that makes a load curve
// safe to feed straight into the Poisson arrival process).
func TestCurveValueWithinKnotBounds(t *testing.T) {
	property := func(seed int64, probe float64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCurve(rng)
		if err := c.Validate(); err != nil {
			t.Fatalf("generator produced an invalid curve: %v", err)
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, k := range c.Knots {
			lo = math.Min(lo, k.V)
			hi = math.Max(hi, k.V)
		}
		// Probe across the knot span and beyond both ends.
		span := c.Knots[len(c.Knots)-1].T - c.Knots[0].T + 1
		x := c.Knots[0].T + (math.Mod(math.Abs(probe), 3)-1)*span
		v := c.At(x)
		return v >= lo-1e-12 && v <= hi+1e-12
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestCurveExactAtKnots: At(knot.T) == knot.V exactly (no tolerance) for
// every interpolation kind — the curve passes through its control points.
func TestCurveExactAtKnots(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCurve(rng)
		c.Period = 0 // a knot at t == Period would wrap to t = 0
		for _, k := range c.Knots {
			if c.At(k.T) != k.V {
				t.Logf("interp %v: At(%v) = %v, knot value %v", c.Interp, k.T, c.At(k.T), k.V)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestCurveMatchesNaiveScanOracle: the binary-searched At agrees with a
// closed-form oracle that finds the segment by linear scan and applies the
// textbook interpolation formulas — the same contract style as the
// allocator and matchmaking property tests (fast path vs naive oracle).
func TestCurveMatchesNaiveScanOracle(t *testing.T) {
	oracle := func(c *Curve, x float64) float64 {
		n := len(c.Knots)
		if c.Period > 0 {
			x = math.Mod(x, c.Period)
			if x < 0 {
				x += c.Period
			}
		}
		if x <= c.Knots[0].T {
			return c.Knots[0].V
		}
		if x >= c.Knots[n-1].T {
			return c.Knots[n-1].V
		}
		for i := 0; i+1 < n; i++ {
			a, b := c.Knots[i], c.Knots[i+1]
			if x < a.T || x >= b.T {
				continue
			}
			u := (x - a.T) / (b.T - a.T)
			switch c.Interp {
			case Step:
				return a.V
			case Cosine:
				return a.V + (b.V-a.V)*(1-math.Cos(math.Pi*u))/2
			default:
				return a.V + (b.V-a.V)*u
			}
		}
		t.Fatalf("oracle found no segment for x=%v", x)
		return 0
	}
	property := func(seed int64, probe float64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCurve(rng)
		span := c.Knots[len(c.Knots)-1].T + 10
		x := (math.Mod(math.Abs(probe), 2.4) - 0.2) * span
		return c.At(x) == oracle(c, x)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}

// TestCurveEvaluationIsPure: repeated evaluation at the same instants
// returns identical values and leaves the curve bit-for-bit unchanged —
// the determinism guarantee the engine's byte-identical-Result contract
// leans on (a Curve shared across concurrent repetitions must never
// mutate).
func TestCurveEvaluationIsPure(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCurve(rng)
		before := make([]Knot, len(c.Knots))
		copy(before, c.Knots)
		xs := make([]float64, 50)
		first := make([]float64, len(xs))
		span := c.Knots[len(c.Knots)-1].T + 5
		for i := range xs {
			xs[i] = rng.Float64() * span
			first[i] = c.At(xs[i])
		}
		for round := 0; round < 3; round++ {
			for i, x := range xs {
				if c.At(x) != first[i] {
					return false
				}
			}
		}
		for i, k := range c.Knots {
			if k != before[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestCurvePeriodWraps: with a period, the curve is exactly periodic —
// At(t + k·Period) == At(t) for any integer k (the diurnal contract).
func TestCurvePeriodWraps(t *testing.T) {
	property := func(seed int64, probe float64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCurve(rng)
		c.Period = c.Knots[len(c.Knots)-1].T + 1 + rng.Float64()*10
		x := math.Mod(math.Abs(probe), c.Period)
		for k := 1; k <= 3; k++ {
			// math.Mod(x + k·P, P) can differ from x in the last ulp, so
			// allow for float rounding in the wrapped argument only.
			if math.Abs(c.At(x+float64(k)*c.Period)-c.At(x)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestMixWeightsInterpolation pins the class-mix curve: exact at knots,
// componentwise within knot bounds between them, boundary weights held
// outside, and the dst buffer reuse never changes the values.
func TestMixWeightsInterpolation(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		width := 1 + rng.Intn(4)
		n := 1 + rng.Intn(5)
		s := &Scenario{Name: "mix-prop"}
		tt := rng.Float64()
		for i := 0; i < n; i++ {
			w := make([]float64, width)
			for j := range w {
				w[j] = 0.01 + rng.Float64()
			}
			s.Mix = append(s.Mix, MixKnot{T: tt, Weights: w})
			tt += 0.01 + rng.Float64()*10
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("generator produced an invalid mix: %v", err)
		}

		// Exact at knots.
		for _, k := range s.Mix {
			got := s.MixWeightsAt(k.T, nil)
			for j := range got {
				if got[j] != k.Weights[j] {
					return false
				}
			}
		}
		// Within componentwise bounds anywhere, fresh buffer vs reused
		// buffer identical.
		reused := make([]float64, width)
		last := s.Mix[n-1].T
		for probe := 0; probe < 30; probe++ {
			x := rng.Float64()*(last+4) - 2
			fresh := s.MixWeightsAt(x, nil)
			reused = s.MixWeightsAt(x, reused)
			for j := 0; j < width; j++ {
				if fresh[j] != reused[j] {
					return false
				}
				lo, hi := math.Inf(1), math.Inf(-1)
				for _, k := range s.Mix {
					lo = math.Min(lo, k.Weights[j])
					hi = math.Max(hi, k.Weights[j])
				}
				if fresh[j] < lo-1e-12 || fresh[j] > hi+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestScaledPreservesShape: scaling a normalized scenario to a duration
// multiplies every time by that duration and leaves values, weights, and
// wave sizes untouched; the original is not mutated.
func TestScaledPreservesShape(t *testing.T) {
	s, ok := Preset("flash-crowd")
	if !ok {
		t.Fatal("flash-crowd preset missing")
	}
	const d = 2500.0
	sc := s.Scaled(d)
	if sc == s {
		t.Fatal("Scaled returned the original for a normalized scenario")
	}
	for i, k := range s.Load.Knots {
		if sc.Load.Knots[i].T != k.T*d || sc.Load.Knots[i].V != k.V {
			t.Fatalf("knot %d: scaled (%v,%v), want (%v,%v)",
				i, sc.Load.Knots[i].T, sc.Load.Knots[i].V, k.T*d, k.V)
		}
	}
	// The curve value at any fraction f of the run matches the normalized
	// curve at f.
	for _, f := range []float64{0, 0.1, 0.45, 0.5, 0.55, 0.6, 0.65, 0.99, 1} {
		if got, want := sc.Load.At(f*d), s.Load.At(f); math.Abs(got-want) > 1e-12 {
			t.Fatalf("At(%v·d) = %v, normalized At(%v) = %v", f, got, f, want)
		}
	}
}

package scenario

import (
	"fmt"
	"os"
	"sort"
)

// presets maps the named scenario library. All presets are normalized
// (times are fractions of the run duration), so the same shape works at
// any -duration; builders return fresh values so callers can mutate.
var presets = map[string]func() *Scenario{
	// diurnal: two day/night cycles — a cosine-eased swing between a 25%
	// night trough and a 90% midday peak, repeating every half-run.
	"diurnal": func() *Scenario {
		return &Scenario{
			Name:        "diurnal",
			Description: "two day/night load cycles between 25% and 90% of capacity",
			Normalized:  true,
			Load: &Curve{
				Interp: Cosine,
				Period: 0.5,
				Knots:  []Knot{{T: 0, V: 0.25}, {T: 0.25, V: 0.9}, {T: 0.5, V: 0.25}},
			},
		}
	},
	// flash-crowd: steady 40% load, then a sudden surge to 150% of total
	// capacity (a genuine overload) that decays back to the baseline.
	"flash-crowd": func() *Scenario {
		return &Scenario{
			Name:        "flash-crowd",
			Description: "40% baseline with a surge to 150% of capacity mid-run",
			Normalized:  true,
			Load: &Curve{
				Interp: Linear,
				Knots: []Knot{
					{T: 0, V: 0.4}, {T: 0.45, V: 0.4}, {T: 0.5, V: 1.5},
					{T: 0.6, V: 1.5}, {T: 0.7, V: 0.4}, {T: 1, V: 0.4},
				},
			},
		}
	},
	// maintenance-window: steady 70% load while 20% of the providers go
	// down for scheduled maintenance mid-run and rejoin afterwards.
	"maintenance-window": func() *Scenario {
		return &Scenario{
			Name:        "maintenance-window",
			Description: "70% load; 20% of providers down between 40% and 70% of the run",
			Normalized:  true,
			Load: &Curve{
				Interp: Step,
				Knots:  []Knot{{T: 0, V: 0.7}},
			},
			Waves: []Wave{
				{Time: 0.4, Kind: WaveOutage, Fraction: 0.2},
				{Time: 0.7, Kind: WaveRejoin, Fraction: 1},
			},
		}
	},
	// outage-30pct: the headline stress — 80% load (the Table 3 reference
	// point) and an unrecovered outage of 30% of the providers mid-run.
	"outage-30pct": func() *Scenario {
		return &Scenario{
			Name:        "outage-30pct",
			Description: "80% load; 30% of providers fail at mid-run and never return",
			Normalized:  true,
			Load: &Curve{
				Interp: Step,
				Knots:  []Knot{{T: 0, V: 0.8}},
			},
			Waves: []Wave{
				{Time: 0.5, Kind: WaveOutage, Fraction: 0.3},
			},
		}
	},
	// staged-churn: three successive 10% outage waves, then everything
	// still down rejoins near the end — join events mid-run.
	"staged-churn": func() *Scenario {
		return &Scenario{
			Name:        "staged-churn",
			Description: "80% load; three 10% outage waves, full rejoin at 90% of the run",
			Normalized:  true,
			Load: &Curve{
				Interp: Step,
				Knots:  []Knot{{T: 0, V: 0.8}},
			},
			Waves: []Wave{
				{Time: 0.3, Kind: WaveOutage, Fraction: 0.1},
				{Time: 0.5, Kind: WaveOutage, Fraction: 0.1},
				{Time: 0.7, Kind: WaveOutage, Fraction: 0.1},
				{Time: 0.9, Kind: WaveRejoin, Fraction: 1},
			},
		}
	},
}

// Preset returns a fresh copy of a named preset scenario.
func Preset(name string) (*Scenario, bool) {
	mk, ok := presets[name]
	if !ok {
		return nil, false
	}
	return mk(), true
}

// Names lists the preset names in sorted order.
func Names() []string {
	out := make([]string, 0, len(presets))
	for name := range presets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Resolve turns a -scenario argument into a scenario: a preset name first,
// otherwise a path to a scenario file (see Parse for the format).
func Resolve(arg string) (*Scenario, error) {
	if s, ok := Preset(arg); ok {
		return s, nil
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return nil, fmt.Errorf("scenario: %q is not a preset (%v) and not a readable file: %w",
			arg, Names(), err)
	}
	return Parse(data)
}

package scenario

import (
	"reflect"
	"testing"
)

// FuzzParse fuzzes the scenario parser. The contract under arbitrary
// bytes: Parse never panics; when it accepts a document, the scenario
// passes Validate and re-parsing the same bytes is deterministic (same
// scenario, field for field). Run longer with
//
//	go test -fuzz FuzzParse -fuzztime 60s ./internal/scenario
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"name: a\nload:\n  - {t: 0, v: 0.5}\n",
		"normalized: true\ninterp: cosine\nperiod: 0.5\nload:\n  - {t: 0, v: 0.25}\n  - {t: 0.25, v: 0.9}\n  - {t: 0.5, v: 0.25}\n",
		"load:\n  - t: 0\n    v: 0.4\n  - t: 1\n    v: 1.5\n",
		"waves:\n  - {t: 0.5, kind: outage, fraction: 0.3}\n  - {t: 0.9, kind: rejoin, fraction: 1}\n",
		"waves:\n  - {t: 10, kind: outage, count: 5}\n",
		"mix:\n  - {t: 0, weights: [1, 1]}\n  - {t: 1, weights: [3, 1]}\n",
		"# comment only\n",
		"name: x\ndescription: 'quoted'\nload:\n  - {t: 0, v: 0}\n",
		"load:\n  - {t: 5, v: 1}\n  - {t: 2, v: 1}\n",
		"load:\n  - {t: 0, v: -0.5}\n",
		"load:\n\t- {t: 0, v: 1}\n",
		"load:\n  - {t: 0, v: {x: 1}}\n",
		"mix:\n  - {t: 0, weights: [1, 2}\n",
		"normalized: yes\n",
		"interp: cubic\nload:\n  - {t: 0, v: 1}\n",
		"waves:\n  - {t: 1, kind: outage, fraction: 0.5, count: 2}\n",
		"load: [1, 2]\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			if s != nil {
				t.Fatalf("Parse returned both a scenario and an error: %v", err)
			}
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("Parse accepted a scenario that fails Validate: %v\ninput: %q", err, data)
		}
		again, err := Parse(data)
		if err != nil {
			t.Fatalf("re-parse of accepted input errored: %v\ninput: %q", err, data)
		}
		if !reflect.DeepEqual(s, again) {
			t.Fatalf("re-parse differs:\n first %+v\nsecond %+v\ninput: %q", s, again, data)
		}
	})
}

package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseFullDocument(t *testing.T) {
	doc := `
# A surge with a partial outage and a drifting class mix.
name: surge-then-outage
description: "flash crowd, then 25% of providers fail"
normalized: true
interp: cosine
period: 1

load:
  - {t: 0, v: 0.4}
  - {t: 0.5, v: 1.2}   # the surge peak
  - t: 1
    v: 0.4

waves:
  - {t: 0.6, kind: outage, fraction: 0.25}
  - t: 0.9
    kind: rejoin
    count: 10

mix:
  - {t: 0, weights: [1, 1]}
  - {t: 1, weights: [3, 1]}
`
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := &Scenario{
		Name:        "surge-then-outage",
		Description: "flash crowd, then 25% of providers fail",
		Normalized:  true,
		Load: &Curve{
			Interp: Cosine,
			Period: 1,
			Knots:  []Knot{{T: 0, V: 0.4}, {T: 0.5, V: 1.2}, {T: 1, V: 0.4}},
		},
		Waves: []Wave{
			{Time: 0.6, Kind: WaveOutage, Fraction: 0.25},
			{Time: 0.9, Kind: WaveRejoin, Count: 10},
		},
		Mix: []MixKnot{
			{T: 0, Weights: []float64{1, 1}},
			{T: 1, Weights: []float64{3, 1}},
		},
	}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("Parse mismatch:\n got %+v\nwant %+v", s, want)
	}
}

func TestParseMinimalWaveOnly(t *testing.T) {
	s, err := Parse([]byte("waves:\n  - {t: 100, kind: outage, count: 3}\n"))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(s.Waves) != 1 || s.Waves[0].Count != 3 || s.Load != nil {
		t.Fatalf("unexpected scenario %+v", s)
	}
}

// TestParseRejects tries the malformed-document catalogue: every entry must
// return an error (and, trivially by getting here, not panic). The same
// documents seed the fuzz corpus.
func TestParseRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string // substring of the error
	}{
		{"knots out of order", "load:\n  - {t: 5, v: 1}\n  - {t: 2, v: 1}\n", "strictly increasing"},
		{"duplicate knot time", "load:\n  - {t: 5, v: 1}\n  - {t: 5, v: 2}\n", "strictly increasing"},
		{"negative rate", "load:\n  - {t: 0, v: -0.5}\n", "negative value"},
		{"negative time", "load:\n  - {t: -1, v: 0.5}\n", "negative time"},
		{"non-finite value", "load:\n  - {t: 0, v: NaN}\n", "not finite"},
		{"unknown top-level key", "nmae: typo\n", `unknown key "nmae"`},
		{"unknown interp", "interp: cubic\nload:\n  - {t: 0, v: 1}\n", "unknown interp"},
		{"unknown wave kind", "waves:\n  - {t: 1, kind: crash, count: 1}\n", "unknown wave kind"},
		{"wave both sizes", "waves:\n  - {t: 1, kind: outage, fraction: 0.5, count: 2}\n", "both fraction and count"},
		{"wave no size", "waves:\n  - {t: 1, kind: outage}\n", "needs a fraction or a count"},
		{"wave fraction beyond 1", "waves:\n  - {t: 1, kind: outage, fraction: 1.5}\n", "out of [0,1]"},
		{"waves out of order", "waves:\n  - {t: 5, kind: outage, count: 1}\n  - {t: 2, kind: outage, count: 1}\n", "non-decreasing"},
		{"missing wave kind", "waves:\n  - {t: 1, count: 1}\n", `missing "kind"`},
		{"missing knot value", "load:\n  - {t: 1}\n", `missing "v"`},
		{"tab indentation", "load:\n\t- {t: 0, v: 1}\n", "tabs"},
		{"duplicate section", "load:\n  - {t: 0, v: 1}\nload:\n  - {t: 1, v: 1}\n", "duplicate section"},
		{"duplicate scalar", "name: a\nname: b\n", "duplicate key"},
		{"duplicate item key", "load:\n  - {t: 0, t: 1, v: 1}\n", "duplicate key"},
		{"unterminated flow map", "load:\n  - {t: 0, v: 1\n", "unterminated"},
		{"nested flow map", "load:\n  - {t: 0, v: {x: 1}}\n", "nested mappings"},
		{"unbalanced brackets", "mix:\n  - {t: 0, weights: [1, 2}\n", "unbalanced brackets"},
		{"bad number", "load:\n  - {t: zero, v: 1}\n", "bad number"},
		{"bad count", "waves:\n  - {t: 1, kind: outage, count: 1.5}\n", "bad count"},
		{"empty load section", "load:\n", "at least one knot"},
		{"interp without load", "interp: step\n", "without a load section"},
		{"period without load", "period: 10\n", "without a load section"},
		{"indented outside list", "name: x\n  - {t: 0, v: 1}\n", "outside a list section"},
		{"field outside item", "load:\n  t: 0\n", "missing \"- \""},
		{"weights not a list", "mix:\n  - {t: 0, weights: 3}\n", "must be a [..] list"},
		{"weights empty", "mix:\n  - {t: 0, weights: []}\n", "empty"},
		{"mix width mismatch", "mix:\n  - {t: 0, weights: [1, 2]}\n  - {t: 1, weights: [1]}\n", "weights"},
		{"mix zero weights", "mix:\n  - {t: 0, weights: [0, 0]}\n", "sum to zero"},
		{"normalized beyond 1", "normalized: true\nload:\n  - {t: 0, v: 1}\n  - {t: 2, v: 1}\n", "beyond 1"},
		{"bad normalized", "normalized: yes\nload:\n  - {t: 0, v: 1}\n", "true or false"},
		{"empty scenario", "name: nothing-here\n", "empty scenario"},
		{"no colon", "load:\n  - knot\n", "key: value"},
		{"empty key", "load:\n  - : 3\n", "empty key"},
		{"list with inline value", "load: [1, 2]\n", "takes no inline value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatalf("Parse accepted %q: %+v", tc.doc, s)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestPresetsAreValid: every preset validates, is normalized (so it works
// at any duration), and scales cleanly.
func TestPresetsAreValid(t *testing.T) {
	names := Names()
	if len(names) < 5 {
		t.Fatalf("expected at least 5 presets, got %v", names)
	}
	for _, name := range names {
		s, ok := Preset(name)
		if !ok {
			t.Fatalf("Preset(%q) missing", name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
		if !s.Normalized {
			t.Errorf("preset %q is not normalized", name)
		}
		if s.Name != name {
			t.Errorf("preset %q carries name %q", name, s.Name)
		}
		if err := s.Scaled(2500).Validate(); err != nil {
			t.Errorf("preset %q scaled invalid: %v", name, err)
		}
	}
}

func TestResolve(t *testing.T) {
	if s, err := Resolve("flash-crowd"); err != nil || s.Name != "flash-crowd" {
		t.Fatalf("Resolve preset: %v, %+v", err, s)
	}
	path := filepath.Join(t.TempDir(), "s.yaml")
	doc := "name: from-file\nload:\n  - {t: 0, v: 0.5}\n"
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Resolve(path)
	if err != nil || s.Name != "from-file" {
		t.Fatalf("Resolve file: %v, %+v", err, s)
	}
	if _, err := Resolve("no-such-preset-or-file"); err == nil {
		t.Fatal("Resolve accepted a nonexistent scenario")
	}
	if _, err := Resolve(filepath.Join(t.TempDir(), "bad.yaml")); err == nil {
		t.Fatal("Resolve accepted a missing file")
	}
}

// TestParseExampleFile keeps examples/scenarios in working order: every
// checked-in example must parse (they double as documentation and as the
// fuzz seed corpus).
func TestParseExampleFile(t *testing.T) {
	matches, err := filepath.Glob("../../examples/scenarios/*.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no example scenario files found")
	}
	for _, path := range matches {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Parse(data); err != nil {
			t.Errorf("%s: %v", path, err)
		}
	}
}

// Package scenario is the declarative scenario DSL for time-varying load
// and churn: piecewise-interpolated profiles for the query arrival rate and
// the query-class mix, plus scheduled provider churn waves (outages and
// rejoins). A scenario either comes from a named preset (see Presets) or
// from a small YAML-subset text file (see Parse); the simulation engine
// consumes it through sim.Options.Scenario, scheduling the waves as
// discrete events that drive the matchmaking index's incremental
// Remove/Add paths.
//
// Scenarios extend the paper's constant/ramp workloads (Section 6.1) to
// the regimes where mediation earns its keep: flash crowds, diurnal
// swings, maintenance windows, and provider outage waves. Everything a
// scenario does is deterministic under the run seed: the load and mix
// curves are pure functions of sim-time, and wave victims are drawn from a
// dedicated RNG stream derived from the seed alone.
package scenario

import (
	"errors"
	"fmt"
	"math"
)

// WaveKind selects what a churn wave does to the provider population.
type WaveKind int

// Wave kinds.
const (
	// WaveOutage takes a slice of the currently-alive providers off the
	// system: they flip to departed (model.ReasonOutage), leave every
	// posting list of the matchmaking index, and stop receiving work.
	// Queries already assigned still complete (the node drains).
	WaveOutage WaveKind = iota
	// WaveRejoin re-registers providers that a previous outage wave took
	// down: they flip back to alive and re-enter the index. Autonomy
	// departures (Section 6.3.2) are permanent decisions and are never
	// rejoined.
	WaveRejoin
)

// String returns the DSL spelling of the wave kind.
func (k WaveKind) String() string {
	switch k {
	case WaveOutage:
		return "outage"
	case WaveRejoin:
		return "rejoin"
	}
	return fmt.Sprintf("WaveKind(%d)", int(k))
}

// ParseWaveKind parses the DSL spelling of a wave kind.
func ParseWaveKind(s string) (WaveKind, error) {
	switch s {
	case "outage":
		return WaveOutage, nil
	case "rejoin":
		return WaveRejoin, nil
	}
	return WaveOutage, fmt.Errorf("scenario: unknown wave kind %q (want outage or rejoin)", s)
}

// Wave is one scheduled churn event. Its target size is either Fraction of
// the eligible pool (alive providers for an outage, outage-departed
// providers for a rejoin) or the absolute Count; exactly one must be set.
type Wave struct {
	Time     float64
	Kind     WaveKind
	Fraction float64
	Count    int
}

// TargetCount resolves the wave size against the eligible pool.
func (w Wave) TargetCount(pool int) int {
	n := w.Count
	if n == 0 {
		n = int(w.Fraction*float64(pool) + 0.5)
	}
	if n > pool {
		n = pool
	}
	if n < 0 {
		n = 0
	}
	return n
}

// validate checks one wave (i is its index, for error messages).
func (w Wave) validate(i int) error {
	if math.IsNaN(w.Time) || math.IsInf(w.Time, 0) || w.Time < 0 {
		return fmt.Errorf("scenario: wave %d has invalid time %v", i, w.Time)
	}
	switch w.Kind {
	case WaveOutage, WaveRejoin:
	default:
		return fmt.Errorf("scenario: wave %d has unknown kind %d", i, int(w.Kind))
	}
	if math.IsNaN(w.Fraction) || w.Fraction < 0 || w.Fraction > 1 {
		return fmt.Errorf("scenario: wave %d fraction %v out of [0,1]", i, w.Fraction)
	}
	if w.Count < 0 {
		return fmt.Errorf("scenario: wave %d has negative count %d", i, w.Count)
	}
	if w.Fraction == 0 && w.Count == 0 {
		return fmt.Errorf("scenario: wave %d needs a fraction or a count", i)
	}
	if w.Fraction > 0 && w.Count > 0 {
		return fmt.Errorf("scenario: wave %d sets both fraction and count", i)
	}
	return nil
}

// MixKnot is one control point of the time-varying query-class mix: at
// time T the class weights are Weights (relative, not normalized). Between
// knots the weights interpolate componentwise (linearly); outside the knot
// range the boundary weights hold.
type MixKnot struct {
	T       float64
	Weights []float64
}

// Scenario is one declarative run description.
type Scenario struct {
	// Name identifies the scenario (preset name, or the file's name field).
	Name string
	// Description is a one-line human summary.
	Description string
	// Normalized, when true, means every time in the scenario (knots,
	// waves, mix, period) is a fraction of the run duration and is scaled
	// to sim-seconds by Scaled — presets use this so one shape works at
	// any -duration.
	Normalized bool
	// Load is the workload-fraction curve; nil keeps the run's configured
	// workload profile (constant or ramp).
	Load *Curve
	// Waves are the scheduled churn events, in non-decreasing time order.
	Waves []Wave
	// Mix is the time-varying query-class mix; empty keeps the run's
	// configured class weights. Every knot must carry one weight per
	// query class of the run (checked by the engine, which knows the
	// class count).
	Mix []MixKnot
}

// Validate checks the scenario's internal consistency. A scenario that
// passes Validate can still be rejected by the engine when it does not fit
// the run (e.g. mix weight counts vs query classes).
func (s *Scenario) Validate() error {
	if s == nil {
		return errors.New("scenario: nil scenario")
	}
	if s.Load == nil && len(s.Waves) == 0 && len(s.Mix) == 0 {
		return errors.New("scenario: empty scenario (needs a load curve, waves, or a mix)")
	}
	if s.Load != nil {
		if err := s.Load.Validate(); err != nil {
			return err
		}
	}
	for i, w := range s.Waves {
		if err := w.validate(i); err != nil {
			return err
		}
		if i > 0 && w.Time < s.Waves[i-1].Time {
			return fmt.Errorf("scenario: wave times must be non-decreasing (wave %d: %v after %v)",
				i, w.Time, s.Waves[i-1].Time)
		}
	}
	width := 0
	for i, k := range s.Mix {
		if math.IsNaN(k.T) || math.IsInf(k.T, 0) || k.T < 0 {
			return fmt.Errorf("scenario: mix knot %d has invalid time %v", i, k.T)
		}
		if i > 0 && k.T <= s.Mix[i-1].T {
			return fmt.Errorf("scenario: mix knot times must be strictly increasing (knot %d)", i)
		}
		if len(k.Weights) == 0 {
			return fmt.Errorf("scenario: mix knot %d has no weights", i)
		}
		if i == 0 {
			width = len(k.Weights)
		} else if len(k.Weights) != width {
			return fmt.Errorf("scenario: mix knot %d has %d weights, knot 0 has %d",
				i, len(k.Weights), width)
		}
		sum := 0.0
		for j, w := range k.Weights {
			if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
				return fmt.Errorf("scenario: mix knot %d weight %d is invalid (%v)", i, j, w)
			}
			sum += w
		}
		if sum <= 0 {
			return fmt.Errorf("scenario: mix knot %d weights sum to zero", i)
		}
	}
	if s.Normalized {
		if s.Load != nil {
			for _, k := range s.Load.Knots {
				if k.T > 1 {
					return fmt.Errorf("scenario: normalized load knot t=%v beyond 1", k.T)
				}
			}
			if s.Load.Period > 1 {
				return fmt.Errorf("scenario: normalized period %v beyond 1", s.Load.Period)
			}
		}
		for i, w := range s.Waves {
			if w.Time > 1 {
				return fmt.Errorf("scenario: normalized wave %d at t=%v beyond 1", i, w.Time)
			}
		}
		for i, k := range s.Mix {
			if k.T > 1 {
				return fmt.Errorf("scenario: normalized mix knot %d at t=%v beyond 1", i, k.T)
			}
		}
	}
	return nil
}

// Scaled returns the scenario with every time expressed in sim-seconds for
// a run of the given duration: a normalized scenario has all its times
// multiplied by duration, a concrete one is returned as-is.
func (s *Scenario) Scaled(duration float64) *Scenario {
	if s == nil || !s.Normalized || duration <= 0 {
		return s
	}
	out := &Scenario{
		Name:        s.Name,
		Description: s.Description,
		Load:        s.Load.scaled(duration),
		Waves:       make([]Wave, len(s.Waves)),
		Mix:         make([]MixKnot, len(s.Mix)),
	}
	for i, w := range s.Waves {
		w.Time *= duration
		out.Waves[i] = w
	}
	for i, k := range s.Mix {
		out.Mix[i] = MixKnot{T: k.T * duration, Weights: k.Weights}
	}
	return out
}

// MixWeightsAt evaluates the class-mix curve at time t into dst (reused
// when it has the right length). Returns nil when the scenario has no mix.
func (s *Scenario) MixWeightsAt(t float64, dst []float64) []float64 {
	if len(s.Mix) == 0 {
		return nil
	}
	width := len(s.Mix[0].Weights)
	if len(dst) != width {
		dst = make([]float64, width)
	}
	n := len(s.Mix)
	if t <= s.Mix[0].T || n == 1 {
		copy(dst, s.Mix[0].Weights)
		return dst
	}
	if t >= s.Mix[n-1].T {
		copy(dst, s.Mix[n-1].Weights)
		return dst
	}
	lo, hi := 0, n-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if s.Mix[mid].T <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	a, b := s.Mix[lo], s.Mix[hi]
	u := (t - a.T) / (b.T - a.T)
	for i := range dst {
		dst[i] = a.Weights[i] + (b.Weights[i]-a.Weights[i])*u
	}
	return dst
}

package scenario

import (
	"errors"
	"fmt"
	"math"
)

// Interp selects how a Curve interpolates between consecutive knots.
type Interp int

// Interpolation kinds.
const (
	// Linear draws straight segments between knots (the default).
	Linear Interp = iota
	// Step holds each knot's value until the next knot.
	Step
	// Cosine eases between knots with a half-cosine ramp — the smooth
	// diurnal shape (continuous derivative at every knot).
	Cosine
)

// String returns the DSL spelling of the interpolation kind.
func (in Interp) String() string {
	switch in {
	case Linear:
		return "linear"
	case Step:
		return "step"
	case Cosine:
		return "cosine"
	}
	return fmt.Sprintf("Interp(%d)", int(in))
}

// ParseInterp parses the DSL spelling of an interpolation kind.
func ParseInterp(s string) (Interp, error) {
	switch s {
	case "", "linear":
		return Linear, nil
	case "step":
		return Step, nil
	case "cosine":
		return Cosine, nil
	}
	return Linear, fmt.Errorf("scenario: unknown interp %q (want step, linear, or cosine)", s)
}

// Knot is one control point of a Curve: at time T the curve passes exactly
// through value V.
type Knot struct {
	T float64
	V float64
}

// Curve is a piecewise-interpolated time-varying profile: the workload
// fraction (or any non-negative signal) as a function of sim-time. Before
// the first knot it holds the first value, after the last knot the last
// value; with Period > 0 the whole shape repeats every Period seconds
// (time is wrapped into [0, Period) before evaluation — the diurnal case).
//
// A Curve is immutable after Validate: At never mutates it, so evaluation
// is deterministic and side-effect-free — the property the scenario
// property tests pin down.
type Curve struct {
	Knots  []Knot
	Interp Interp
	// Period repeats the shape every Period time units; 0 disables
	// wrapping. When set, every knot must lie within [0, Period].
	Period float64
}

// Validate checks the curve: at least one knot, finite non-negative values
// (a negative rate is an error, never a clamp), strictly increasing knot
// times, and knots within the period when one is set.
func (c *Curve) Validate() error {
	if len(c.Knots) == 0 {
		return errors.New("scenario: curve needs at least one knot")
	}
	for i, k := range c.Knots {
		if math.IsNaN(k.T) || math.IsInf(k.T, 0) || math.IsNaN(k.V) || math.IsInf(k.V, 0) {
			return fmt.Errorf("scenario: knot %d is not finite (t=%v v=%v)", i, k.T, k.V)
		}
		if k.T < 0 {
			return fmt.Errorf("scenario: knot %d has negative time %v", i, k.T)
		}
		if k.V < 0 {
			return fmt.Errorf("scenario: knot %d has negative value %v", i, k.V)
		}
		if i > 0 && k.T <= c.Knots[i-1].T {
			return fmt.Errorf("scenario: knot times must be strictly increasing (knot %d: %v after %v)",
				i, k.T, c.Knots[i-1].T)
		}
	}
	if math.IsNaN(c.Period) || math.IsInf(c.Period, 0) || c.Period < 0 {
		return fmt.Errorf("scenario: period must be a finite non-negative number, got %v", c.Period)
	}
	if c.Period > 0 && c.Knots[len(c.Knots)-1].T > c.Period {
		return fmt.Errorf("scenario: last knot (t=%v) lies beyond the period %v",
			c.Knots[len(c.Knots)-1].T, c.Period)
	}
	switch c.Interp {
	case Linear, Step, Cosine:
	default:
		return fmt.Errorf("scenario: unknown interpolation kind %d", int(c.Interp))
	}
	return nil
}

// At evaluates the curve at time t. Outside the knot range the boundary
// values hold; with a period, t wraps first (the value between the last
// knot and the period boundary is the last knot's).
func (c *Curve) At(t float64) float64 {
	n := len(c.Knots)
	if n == 0 {
		return 0
	}
	if c.Period > 0 {
		t = math.Mod(t, c.Period)
		if t < 0 {
			t += c.Period
		}
	}
	if t <= c.Knots[0].T {
		return c.Knots[0].V
	}
	if t >= c.Knots[n-1].T {
		return c.Knots[n-1].V
	}
	// Find the segment [i, i+1] with Knots[i].T <= t < Knots[i+1].T.
	lo, hi := 0, n-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if c.Knots[mid].T <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	a, b := c.Knots[lo], c.Knots[hi]
	switch c.Interp {
	case Step:
		return a.V
	case Cosine:
		u := (t - a.T) / (b.T - a.T)
		w := (1 - math.Cos(math.Pi*u)) / 2
		return a.V + (b.V-a.V)*w
	default: // Linear
		u := (t - a.T) / (b.T - a.T)
		return a.V + (b.V-a.V)*u
	}
}

// Fraction implements workload.Profile, so a Curve can drive the engine's
// Poisson arrival process directly.
func (c *Curve) Fraction(t float64) float64 { return c.At(t) }

// scaled returns a copy with all times multiplied by f (the normalized →
// sim-seconds conversion).
func (c *Curve) scaled(f float64) *Curve {
	if c == nil {
		return nil
	}
	out := &Curve{Knots: make([]Knot, len(c.Knots)), Interp: c.Interp, Period: c.Period * f}
	for i, k := range c.Knots {
		out.Knots[i] = Knot{T: k.T * f, V: k.V}
	}
	return out
}

package sim

import (
	"testing"

	"sqlb/internal/allocator"
	"sqlb/internal/model"
	"sqlb/internal/randx"
	"sqlb/internal/workload"
)

// TestReputationFeedbackConverges exercises the feedback-driven reputation
// extension: with ratings flowing, a provider's reputation converges toward
// the mean consumer preference for it instead of staying at its static
// draw.
func TestReputationFeedbackConverges(t *testing.T) {
	cfg := model.DefaultConfig().Scale(0.1)
	cfg.ReputationFeedbackAlpha = 0.05
	opts := Options{
		Config:   cfg,
		Strategy: allocator.NewCapacityBased(), // preference-blind: every provider serves
		Workload: workload.Constant(0.7),
		Duration: 600,
		Seed:     17,
	}
	eng, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	pop := eng.Population()
	before := make([]float64, len(pop.Providers))
	for i, p := range pop.Providers {
		before[i] = p.Reputation
	}
	eng.Run()

	moved := 0
	for i, p := range pop.Providers {
		if p.Reputation != before[i] {
			moved++
			// Converged reputation must head toward the mean consumer
			// preference for this provider.
			mean := 0.0
			for _, c := range pop.Consumers {
				mean += c.Preference(p, 0)
			}
			mean /= float64(len(pop.Consumers))
			beforeDist := abs(before[i] - mean)
			afterDist := abs(p.Reputation - mean)
			if afterDist > beforeDist+0.25 {
				t.Errorf("provider %d reputation moved away from consumer consensus: %.2f → %.2f (mean pref %.2f)",
					p.ID, before[i], p.Reputation, mean)
			}
		}
	}
	if moved < len(pop.Providers)/2 {
		t.Errorf("only %d of %d reputations moved; feedback seems inert", moved, len(pop.Providers))
	}
}

// TestReputationStaticByDefault confirms the paper's setting: reputations
// stay at their static draw when the extension is off.
func TestReputationStaticByDefault(t *testing.T) {
	opts := Options{
		Config:   model.DefaultConfig().Scale(0.05),
		Strategy: allocator.NewCapacityBased(),
		Workload: workload.Constant(0.5),
		Duration: 200,
		Seed:     3,
	}
	eng, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	pop := eng.Population()
	before := make([]float64, len(pop.Providers))
	for i, p := range pop.Providers {
		before[i] = p.Reputation
	}
	eng.Run()
	for i, p := range pop.Providers {
		if p.Reputation != before[i] {
			t.Fatalf("provider %d reputation changed with feedback disabled", p.ID)
		}
	}
}

// TestRecordFeedbackGuards covers the clamping and alpha guards.
func TestRecordFeedbackGuards(t *testing.T) {
	cfg := model.DefaultConfig()
	cfg.Consumers, cfg.Providers = 1, 1
	pop := model.NewPopulation(cfg, randx.New(1), 0)
	p := pop.Providers[0]
	start := p.Reputation
	p.RecordFeedback(0.5, 0)  // alpha 0: ignored
	p.RecordFeedback(0.5, -1) // negative alpha: ignored
	p.RecordFeedback(0.5, 2)  // absurd alpha: ignored
	if p.Reputation != start {
		t.Fatal("invalid alphas must not move reputation")
	}
	p.RecordFeedback(99, 1) // rating clamps to 1, alpha 1 snaps
	if p.Reputation != 1 {
		t.Fatalf("reputation = %v, want clamped snap to 1", p.Reputation)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

package sim

import (
	"sqlb/internal/timeline"
)

// timelineEmitter converts each §4 metric sample into a unified
// timeline.Snapshot and pushes it to the configured sink. It lives
// strictly downstream of the sample path: it reads the sample and the
// engine's counters, keeps its own previous-counter state for the
// interval deltas, and touches nothing the simulation reads back — the
// structural half of the determinism guarantee (the other half is that
// it draws nothing from the RNG streams).
type timelineEmitter struct {
	sink timeline.Sink

	prevTime      float64
	prevIssued    uint64
	prevCompleted uint64
	prevDropped   uint64
	err           error
}

// emit derives the snapshot for one sample and appends it to the sink.
func (t *timelineEmitter) emit(e *Engine, s Sample) {
	snap := timeline.Snapshot{
		Time:             s.Time,
		Source:           "sim",
		WorkloadFraction: s.WorkloadFraction,
		Dropped:          float64(e.dropped - t.prevDropped),
		QueueDepth:       float64(len(e.inflight)),
		LatencyMean:      s.ResponseTimeMean,
		// Quantiles cut the cumulative run histogram (the engine keeps no
		// per-interval histogram); the mean above is interval-local.
		LatencyP50:  e.respHist.Quantile(0.5),
		LatencyP95:  e.respHist.Quantile(0.95),
		LatencyP99:  e.respHist.Quantile(0.99),
		ProvSat:     s.ProvSatPreference.Mean,
		ConsSat:     s.ConsSat.Mean,
		AllocSat:    s.ProvAllocSatPreference.Mean,
		SatFairness: s.ProvSatPreference.Fairness,
		Departures:  float64(s.ProviderDepartureCount),
		Joins:       float64(s.ProviderJoinCount),
	}
	timeline.FillUtilization(&snap, e.pop, e.now)
	if dt := s.Time - t.prevTime; dt > 0 {
		snap.QPSIn = float64(e.issued-t.prevIssued) / dt
		snap.QPSOut = float64(e.completed-t.prevCompleted) / dt
	}
	t.prevTime = s.Time
	t.prevIssued = e.issued
	t.prevCompleted = e.completed
	t.prevDropped = e.dropped
	if err := t.sink.Append(snap); err != nil && t.err == nil {
		t.err = err
	}
}

// TimelineErr reports the first error the timeline sink returned (nil
// without a sink, or on a healthy one). Kept off Result so that enabling
// a timeline cannot change the simulation outcome even when the sink
// fails mid-run.
func (e *Engine) TimelineErr() error {
	if e.tl == nil {
		return nil
	}
	return e.tl.err
}

package sim

import (
	"math"

	"sqlb/internal/metrics"
	"sqlb/internal/model"
	"sqlb/internal/stats"
)

// allocSatCap bounds sampled δas values. Definition 3/6 allow [0,∞); a
// handful of +Inf (satisfaction with zero adequation) would destroy the
// mean metric, so samples clamp at this cap, far above the plot range of
// Figures 4(c)/4(e).
const allocSatCap = 10.0

// Sample is one §4 metric snapshot over the alive participants.
type Sample struct {
	// Time is the sim-time of the snapshot; WorkloadFraction the profile
	// value there.
	Time             float64
	WorkloadFraction float64

	// ProvSatIntention summarizes δs(p) fed with intentions — what the
	// mediator can see (Figure 4(a), 4(d)).
	ProvSatIntention metrics.Summary
	// ProvSatPreference summarizes δs(p) fed with private preferences
	// (Figure 4(b)).
	ProvSatPreference metrics.Summary
	// ProvAllocSatPreference summarizes δas(p) on preferences (Fig 4(c)).
	ProvAllocSatPreference metrics.Summary
	// ProvAdequationPreference summarizes δa(p) on preferences.
	ProvAdequationPreference metrics.Summary
	// ConsSat summarizes δs(c) (intention-based; Figure 4(f)).
	ConsSat metrics.Summary
	// ConsAllocSat summarizes δas(c) (Figure 4(e)).
	ConsAllocSat metrics.Summary
	// Utilization summarizes Ut(p) (Figures 4(g), 4(h)).
	Utilization metrics.Summary

	// ResponseTimeMean is the mean response time of queries completed
	// since the previous sample (0 when none completed).
	ResponseTimeMean float64
	// ResponseCount is how many completions that mean covers.
	ResponseCount int

	// AliveProviders and AliveConsumers count the remaining participants.
	AliveProviders int
	AliveConsumers int

	// ProviderDepartureCount, ProviderJoinCount, and ConsumerDepartureCount
	// are the cumulative churn ledgers at this instant. The population-
	// conservation invariant reads
	//   AliveProviders == Providers − ProviderDepartureCount + ProviderJoinCount
	// at every sample (likewise for consumers, who never rejoin); cumulative
	// counters make it exact even when a wave and a sample share a
	// timestamp.
	ProviderDepartureCount int
	ProviderJoinCount      int
	ConsumerDepartureCount int
}

// Departure records one participant leaving the system.
type Departure struct {
	// Time is when the participant left.
	Time float64
	// ID is the participant's population index.
	ID int
	// Reason is why it left.
	Reason model.DepartureReason
	// Interest, Adapt, Cap are the provider's classes (zero for consumers).
	Interest model.ClassLevel
	Adapt    model.ClassLevel
	Cap      model.ClassLevel
}

// Result is the outcome of one simulation run.
type Result struct {
	// Method is the strategy name.
	Method string
	// Seed, Duration echo the options.
	Seed     uint64
	Duration float64

	// Samples is the §4 metric time series (empty if sampling disabled).
	Samples []Sample
	// Final is the state at the end of the run.
	Final Sample

	// IssuedQueries counts arrivals, CompletedQueries completions within
	// the horizon, DroppedQueries arrivals no provider could take (empty
	// Pq, or an allocator that selected nobody).
	IssuedQueries    uint64
	CompletedQueries uint64
	DroppedQueries   uint64
	// InFlightAtEnd counts queries still executing when the horizon
	// closed: Issued = Completed + Dropped + InFlightAtEnd on a healthy
	// run — the invariant that exposes accounting leaks.
	InFlightAtEnd int

	// MeanResponseTime is over all completed queries (seconds).
	MeanResponseTime float64
	// MaxResponseTime is the worst completion (seconds).
	MaxResponseTime float64
	// ResponseHistogram holds the full response-time distribution
	// (p50/p95/p99 via its Quantile method).
	ResponseHistogram *stats.Histogram

	// ProviderDepartures and ConsumerDepartures list who left and why.
	// Under a churn scenario a provider can appear more than once: taken
	// down by one outage wave, rejoined, and departed again later.
	ProviderDepartures []Departure
	ConsumerDepartures []Departure
	// ProviderJoins lists scenario rejoin events (Reason is ReasonNone):
	// providers a rejoin wave re-registered after an outage wave took them
	// down. Joins − departures equals the alive-count delta at any sampled
	// instant.
	ProviderJoins []Departure

	// Scenario names the scenario the run was driven by ("" without one).
	Scenario string

	// Providers and Consumers are the population sizes (for rates).
	Providers int
	Consumers int

	// Err is the first mediation error that was not an expected
	// no-provider drop (mediator.ErrNoProviders) — nil on a healthy run.
	// Queries it affected are included in DroppedQueries.
	Err error
}

// ProviderDepartureRate returns the fraction of providers that left.
func (r *Result) ProviderDepartureRate() float64 {
	if r.Providers == 0 {
		return 0
	}
	return float64(len(r.ProviderDepartures)) / float64(r.Providers)
}

// ConsumerDepartureRate returns the fraction of consumers that left.
func (r *Result) ConsumerDepartureRate() float64 {
	if r.Consumers == 0 {
		return 0
	}
	return float64(len(r.ConsumerDepartures)) / float64(r.Consumers)
}

// DepartureBreakdown is the Table 3 accounting: for one class dimension,
// the percentage of providers of each class level that left for each
// reason, plus the overall percentage per reason.
type DepartureBreakdown struct {
	// PerClass[reason][level] is the percentage (0-100) of the providers
	// of that level that left for that reason.
	PerClass map[model.DepartureReason][3]float64
	// Total[reason] is the percentage of all providers that left for that
	// reason.
	Total map[model.DepartureReason]float64
}

// ClassDimension selects which provider class dimension a breakdown uses.
type ClassDimension int

// The three Table 3 dimensions.
const (
	ByInterest   ClassDimension = iota // "Cons. Interest to Prov."
	ByAdaptation                       // "Providers' Adequation"
	ByCapacity                         // "Providers' Capacity"
)

// String returns the Table 3 row label.
func (d ClassDimension) String() string {
	switch d {
	case ByInterest:
		return "Cons. Interest to Prov."
	case ByAdaptation:
		return "Providers' Adequation"
	case ByCapacity:
		return "Providers' Capacity"
	}
	return "unknown"
}

// ClassDimensions lists the Table 3 dimensions in row order.
var ClassDimensions = []ClassDimension{ByInterest, ByAdaptation, ByCapacity}

// Breakdown computes the Table 3 departure accounting for one dimension.
// classTotals gives how many providers of each level exist in the
// population (needed for per-class percentages).
func (r *Result) Breakdown(dim ClassDimension, classTotals [3]int) DepartureBreakdown {
	level := func(d Departure) model.ClassLevel {
		switch dim {
		case ByInterest:
			return d.Interest
		case ByAdaptation:
			return d.Adapt
		default:
			return d.Cap
		}
	}
	out := DepartureBreakdown{
		PerClass: map[model.DepartureReason][3]float64{},
		Total:    map[model.DepartureReason]float64{},
	}
	counts := map[model.DepartureReason][3]int{}
	for _, d := range r.ProviderDepartures {
		c := counts[d.Reason]
		c[level(d)]++
		counts[d.Reason] = c
	}
	for _, reason := range model.DepartureReasons {
		var pct [3]float64
		total := 0
		for lvl := 0; lvl < 3; lvl++ {
			total += counts[reason][lvl]
			if classTotals[lvl] > 0 {
				pct[lvl] = 100 * float64(counts[reason][lvl]) / float64(classTotals[lvl])
			}
		}
		out.PerClass[reason] = pct
		if r.Providers > 0 {
			out.Total[reason] = 100 * float64(total) / float64(r.Providers)
		}
	}
	return out
}

// clampAllocSat bounds a δas sample (see allocSatCap).
func clampAllocSat(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	if v > allocSatCap {
		return allocSatCap
	}
	if v < 0 {
		return 0
	}
	return v
}

package sim

import (
	"errors"
	"strings"
	"testing"

	"sqlb/internal/allocator"
	"sqlb/internal/timeline"
)

// TestTimelineDeterminism is the tentpole contract of the observability
// layer: attaching a timeline sink must leave the simulation Result byte
// for byte identical — the sink is a pure observer of the sample path and
// draws nothing from the RNG streams. Checked on the paper's constant
// workload and on a churn scenario under full autonomy, where any stray
// RNG draw or state mutation would shift every subsequent event.
func TestTimelineDeterminism(t *testing.T) {
	cases := []struct {
		name string
		opts func() Options
	}{
		{"constant", func() Options {
			return smallOptions(allocator.NewSQLB(), 0.8, 600)
		}},
		{"flash-crowd full-autonomy", func() Options {
			opts := scenarioOptions("flash-crowd", allocator.NewSQLB(), 900)
			opts.Autonomy = FullAutonomy()
			return opts
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(sink timeline.Sink) string {
				opts := tc.opts()
				opts.Timeline = sink
				eng, err := New(opts)
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				res := eng.Run()
				if res.Err != nil {
					t.Fatalf("Result.Err = %v", res.Err)
				}
				if err := eng.TimelineErr(); err != nil {
					t.Fatalf("TimelineErr = %v", err)
				}
				return serializeResult(res)
			}

			bare := run(nil)
			var rows int
			collected := run(timeline.SinkFunc(func(timeline.Snapshot) error {
				rows++
				return nil
			}))
			if bare != collected {
				t.Fatalf("attaching a timeline sink changed the Result:\n--- without ---\n%s\n--- with ---\n%s", bare, collected)
			}
			if rows == 0 {
				t.Fatal("sink received no snapshots — the hook is not wired")
			}

			// Streaming through the full collector+CSV pipeline must be
			// just as invisible.
			var sb strings.Builder
			col := timeline.NewCollector(0, 0, timeline.NewCSVSink(&sb))
			piped := run(col)
			if err := col.Close(); err != nil {
				t.Fatalf("collector close: %v", err)
			}
			if bare != piped {
				t.Fatal("CSV pipeline changed the Result")
			}
			decoded, err := timeline.ReadCSV(strings.NewReader(sb.String()))
			if err != nil {
				t.Fatalf("re-reading the streamed CSV: %v", err)
			}
			if len(decoded) != rows {
				t.Fatalf("CSV rows %d != sink rows %d", len(decoded), rows)
			}
		})
	}
}

// TestTimelineSnapshotContents spot-checks that emitted snapshots carry
// the engine's state: monotone time, population gauges filled, cumulative
// counters matching the Result ledgers at the end.
func TestTimelineSnapshotContents(t *testing.T) {
	opts := scenarioOptions("outage-30pct", allocator.NewSQLB(), 800)
	var snaps []timeline.Snapshot
	opts.Timeline = timeline.SinkFunc(func(s timeline.Snapshot) error {
		snaps = append(snaps, s)
		return nil
	})
	eng, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res := eng.Run()
	if res.Err != nil {
		t.Fatalf("Result.Err = %v", res.Err)
	}
	// One snapshot per sample plus the final one.
	if want := len(res.Samples) + 1; len(snaps) != want {
		t.Fatalf("got %d snapshots, want %d", len(snaps), want)
	}
	var qpsSeen bool
	for i, s := range snaps {
		if s.Source != "sim" {
			t.Fatalf("snapshot %d: source %q", i, s.Source)
		}
		if i > 0 && s.Time < snaps[i-1].Time {
			t.Fatalf("snapshot %d: time went backwards (%v after %v)", i, s.Time, snaps[i-1].Time)
		}
		if s.AliveProviders <= 0 || s.AliveConsumers <= 0 {
			t.Fatalf("snapshot %d: population gauges empty: %+v", i, s)
		}
		if s.QPSIn > 0 {
			qpsSeen = true
		}
	}
	if !qpsSeen {
		t.Fatal("no snapshot ever saw a positive arrival rate")
	}
	last := snaps[len(snaps)-1]
	if int(last.Departures) != len(res.ProviderDepartures) {
		t.Errorf("final departures %v != ledger %d", last.Departures, len(res.ProviderDepartures))
	}
	if int(last.Joins) != len(res.ProviderJoins) {
		t.Errorf("final joins %v != ledger %d", last.Joins, len(res.ProviderJoins))
	}
	if int(last.AliveProviders) != res.Final.AliveProviders {
		t.Errorf("final alive providers %v != %d", last.AliveProviders, res.Final.AliveProviders)
	}
	// Interval dropped deltas must sum to the run total.
	var dropped float64
	for _, s := range snaps {
		dropped += s.Dropped
	}
	if uint64(dropped) != res.DroppedQueries {
		t.Errorf("Σ dropped deltas %v != Result.DroppedQueries %d", dropped, res.DroppedQueries)
	}
}

// TestTimelineErrKeptOffResult pins the error contract: a failing sink
// never contaminates Result.Err (that would break byte-identity); it
// surfaces via Engine.TimelineErr instead.
func TestTimelineErrKeptOffResult(t *testing.T) {
	boom := errors.New("sink failed")
	opts := smallOptions(allocator.NewSQLB(), 0.8, 300)
	opts.Timeline = timeline.SinkFunc(func(timeline.Snapshot) error { return boom })
	eng, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res := eng.Run()
	if res.Err != nil {
		t.Fatalf("sink error leaked into Result.Err: %v", res.Err)
	}
	if !errors.Is(eng.TimelineErr(), boom) {
		t.Fatalf("TimelineErr = %v, want the sink error", eng.TimelineErr())
	}
}

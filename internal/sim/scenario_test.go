package sim

import (
	"fmt"
	"strings"
	"testing"

	"sqlb/internal/allocator"
	"sqlb/internal/mediator"
	"sqlb/internal/model"
	"sqlb/internal/scenario"
)

// scenarioOptions is smallOptions plus a scenario and denser sampling (the
// conservation invariant is checked at every sample, so more samples mean
// more chances to catch a wave/sample timestamp collision).
func scenarioOptions(name string, strategy allocator.Allocator, dur float64) Options {
	scn, ok := scenario.Preset(name)
	if !ok {
		panic("unknown preset " + name)
	}
	opts := smallOptions(strategy, 0.8, dur)
	opts.Scenario = scn
	opts.SampleInterval = dur / 40
	return opts
}

// TestScenarioPopulationConservation is the churn ledger invariant: at
// every sampled instant, for providers
//
//	alive == initial − departures + joins
//
// and for consumers (who never rejoin) alive == initial − departures.
// Cumulative counters on the samples make this exact even when a wave and
// a sample share a timestamp. Checked across every churn preset, with and
// without autonomy departures mixed in, on the serial and a sharded
// engine (the remaining shard counts are swept by
// TestShardedConservationInvariant).
func TestScenarioPopulationConservation(t *testing.T) {
	for _, name := range scenario.Names() {
		for _, auto := range []struct {
			label  string
			a      Autonomy
			shards int
		}{{"captive", Autonomy{}, 1}, {"full-autonomy", FullAutonomy(), 4}} {
			t.Run(name+"/"+auto.label, func(t *testing.T) {
				opts := scenarioOptions(name, allocator.NewSQLB(), 1000)
				opts.Autonomy = auto.a
				opts.Shards = auto.shards
				eng, err := New(opts)
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				res := eng.Run()
				if res.Err != nil {
					t.Fatalf("Result.Err = %v", res.Err)
				}
				samples := append(append([]Sample{}, res.Samples...), res.Final)
				for i, s := range samples {
					if got, want := s.AliveProviders, res.Providers-s.ProviderDepartureCount+s.ProviderJoinCount; got != want {
						t.Fatalf("sample %d (t=%v): alive providers %d != %d − %d + %d",
							i, s.Time, got, res.Providers, s.ProviderDepartureCount, s.ProviderJoinCount)
					}
					if got, want := s.AliveConsumers, res.Consumers-s.ConsumerDepartureCount; got != want {
						t.Fatalf("sample %d (t=%v): alive consumers %d != %d − %d",
							i, s.Time, got, res.Consumers, s.ConsumerDepartureCount)
					}
				}
				// The final ledgers agree with the recorded event lists.
				if res.Final.ProviderDepartureCount != len(res.ProviderDepartures) {
					t.Errorf("final departure counter %d != %d recorded departures",
						res.Final.ProviderDepartureCount, len(res.ProviderDepartures))
				}
				if res.Final.ProviderJoinCount != len(res.ProviderJoins) {
					t.Errorf("final join counter %d != %d recorded joins",
						res.Final.ProviderJoinCount, len(res.ProviderJoins))
				}
			})
		}
	}
}

// TestScenarioIndexAgreesWithScanAfterChurn: after a run full of scheduled
// outage/rejoin waves (plus autonomy departures), the incremental
// matchmaking index must agree with the naive alive-scan oracle for every
// query class — the engine-level restatement of the matchmaking package's
// equivalence property.
func TestScenarioIndexAgreesWithScanAfterChurn(t *testing.T) {
	oracle := mediator.ByCapability()
	for _, name := range []string{"maintenance-window", "outage-30pct", "staged-churn"} {
		t.Run(name, func(t *testing.T) {
			opts := scenarioOptions(name, allocator.NewCapacityBased(), 1200)
			opts.Config = opts.Config.WithClasses(5)
			opts.Config.CapabilitySelectivity = 0.6
			opts.Autonomy = FullAutonomy()
			eng, err := New(opts)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			res := eng.Run()
			if res.Err != nil {
				t.Fatalf("Result.Err = %v", res.Err)
			}
			if len(res.ProviderDepartures) == 0 {
				t.Fatalf("scenario %q produced no churn; the test needs waves to fire", name)
			}
			pop := eng.Population()
			for c := range pop.Classes {
				want := oracle.Match(&model.Query{Class: c}, pop)
				got := eng.MatchIndex().Lookup(c)
				if len(got) != len(want) {
					t.Fatalf("class %d: index |Pq| = %d, scan %d", c, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("class %d pos %d: index provider %d, scan provider %d",
							c, i, got[i].ID, want[i].ID)
					}
				}
			}
		})
	}
}

// TestScenarioWaveArithmetic pins the wave accounting with autonomy off,
// where scheduled churn is the only source of departures: outage-30pct on
// 40 providers must take down exactly round(0.3·40) = 12, all with reason
// "outage"; maintenance-window must end with everyone back.
func TestScenarioWaveArithmetic(t *testing.T) {
	t.Run("outage-30pct", func(t *testing.T) {
		eng, err := New(scenarioOptions("outage-30pct", allocator.NewSQLB(), 600))
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		res := eng.Run()
		if got := len(res.ProviderDepartures); got != 12 {
			t.Fatalf("departures = %d, want 12 (30%% of 40)", got)
		}
		for _, d := range res.ProviderDepartures {
			if d.Reason != model.ReasonOutage {
				t.Errorf("departure reason %v, want outage", d.Reason)
			}
			if d.Time != 300 {
				t.Errorf("outage at t=%v, want 300 (half of the run)", d.Time)
			}
		}
		if res.Final.AliveProviders != 28 {
			t.Errorf("alive at end = %d, want 28", res.Final.AliveProviders)
		}
		if res.Scenario != "outage-30pct" {
			t.Errorf("Result.Scenario = %q", res.Scenario)
		}
	})
	t.Run("maintenance-window", func(t *testing.T) {
		eng, err := New(scenarioOptions("maintenance-window", allocator.NewSQLB(), 600))
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		res := eng.Run()
		want := 8 // 20% of 40
		if got := len(res.ProviderDepartures); got != want {
			t.Fatalf("departures = %d, want %d", got, want)
		}
		if got := len(res.ProviderJoins); got != want {
			t.Fatalf("joins = %d, want %d (everyone returns)", got, want)
		}
		if res.Final.AliveProviders != 40 {
			t.Errorf("alive at end = %d, want all 40 back", res.Final.AliveProviders)
		}
	})
}

// TestScenarioLoadCurveDrivesArrivals: the flash-crowd surge must be
// visible in the workload-fraction samples — ≈0.4 early, 1.5 at the spike.
func TestScenarioLoadCurveDrivesArrivals(t *testing.T) {
	eng, err := New(scenarioOptions("flash-crowd", allocator.NewCapacityBased(), 1000))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res := eng.Run()
	peak, early := 0.0, 0.0
	for _, s := range res.Samples {
		if s.Time < 400 {
			early = s.WorkloadFraction
		}
		if s.WorkloadFraction > peak {
			peak = s.WorkloadFraction
		}
	}
	if early < 0.35 || early > 0.45 {
		t.Errorf("pre-surge workload fraction = %v, want ≈0.4", early)
	}
	if peak < 1.4 {
		t.Errorf("surge peak workload fraction = %v, want ≈1.5", peak)
	}
}

// serializeResult renders every deterministic field of a Result, including
// the full sample series and churn ledgers, so two serializations are
// equal iff the runs were bit-for-bit identical.
func serializeResult(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s seed=%d dur=%v issued=%d completed=%d dropped=%d inflight=%d mean=%v max=%v p50=%v p95=%v p99=%v\n",
		r.Method, r.Scenario, r.Seed, r.Duration, r.IssuedQueries, r.CompletedQueries,
		r.DroppedQueries, r.InFlightAtEnd, r.MeanResponseTime, r.MaxResponseTime,
		r.ResponseHistogram.Quantile(0.5), r.ResponseHistogram.Quantile(0.95),
		r.ResponseHistogram.Quantile(0.99))
	for _, s := range append(append([]Sample{}, r.Samples...), r.Final) {
		fmt.Fprintf(&b, "sample %v %v %+v %+v %+v %+v %v %d %d %d %d %d %d\n",
			s.Time, s.WorkloadFraction, s.ProvSatIntention, s.ProvSatPreference,
			s.ConsSat, s.Utilization, s.ResponseTimeMean, s.ResponseCount,
			s.AliveProviders, s.AliveConsumers,
			s.ProviderDepartureCount, s.ProviderJoinCount, s.ConsumerDepartureCount)
	}
	for _, d := range r.ProviderDepartures {
		fmt.Fprintf(&b, "dep %+v\n", d)
	}
	for _, d := range r.ProviderJoins {
		fmt.Fprintf(&b, "join %+v\n", d)
	}
	for _, d := range r.ConsumerDepartures {
		fmt.Fprintf(&b, "cdep %+v\n", d)
	}
	return b.String()
}

// TestScenarioDeterminism is the regression pin for the seeding contract
// under churn: the same seed and scenario must reproduce the whole Result
// byte for byte — wave victims, departure times, every sampled metric —
// run after run. (Workers-independence of scenario artifacts is pinned at
// the Lab level next to TestParallelLabDeterminism.)
func TestScenarioDeterminism(t *testing.T) {
	run := func() string {
		opts := scenarioOptions("flash-crowd", allocator.NewSQLB(), 900)
		opts.Autonomy = FullAutonomy()
		eng, err := New(opts)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return serializeResult(eng.Run())
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed + scenario diverged:\n%s\nvs\n%s", a, b)
	}

	// Churn scenarios too: the wave-victim draws come from the dedicated
	// churn stream and must replay exactly.
	runChurn := func() string {
		opts := scenarioOptions("staged-churn", allocator.NewCapacityBased(), 900)
		opts.Autonomy = FullAutonomy()
		eng, err := New(opts)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return serializeResult(eng.Run())
	}
	if x, y := runChurn(), runChurn(); x != y {
		t.Fatal("staged-churn runs diverged under a fixed seed")
	}
}

// TestScenarioNilLeavesRunsUntouched: passing no scenario must reproduce a
// pre-scenario run exactly — the churn RNG stream is split off after the
// population/generator/arrival streams precisely so that scenario-free
// seeds draw identical values. The pin: a run with Scenario == nil and a
// run with a load-only scenario whose curve equals the constant workload
// issue the same queries from the same draws.
func TestScenarioNilLeavesRunsUntouched(t *testing.T) {
	base := func() *Result {
		eng, err := New(smallOptions(allocator.NewSQLB(), 0.8, 400))
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return eng.Run()
	}
	withConstCurve := func() *Result {
		opts := smallOptions(allocator.NewSQLB(), 0.8, 400)
		opts.Scenario = &scenario.Scenario{
			Name: "const-0.8",
			Load: &scenario.Curve{Interp: scenario.Step, Knots: []scenario.Knot{{T: 0, V: 0.8}}},
		}
		eng, err := New(opts)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return eng.Run()
	}
	a, b := base(), withConstCurve()
	if a.IssuedQueries != b.IssuedQueries || a.CompletedQueries != b.CompletedQueries ||
		a.MeanResponseTime != b.MeanResponseTime {
		t.Fatalf("a constant load curve perturbed the run: %d/%d/%v vs %d/%d/%v",
			a.IssuedQueries, a.CompletedQueries, a.MeanResponseTime,
			b.IssuedQueries, b.CompletedQueries, b.MeanResponseTime)
	}
}

// TestScenarioMixValidation: Options.Validate rejects a mix whose weight
// width does not match the run's query-class count, and accepts the fit.
func TestScenarioMixValidation(t *testing.T) {
	opts := smallOptions(allocator.NewSQLB(), 0.5, 100)
	opts.Scenario = &scenario.Scenario{
		Name: "bad-mix",
		Mix:  []scenario.MixKnot{{T: 0, Weights: []float64{1, 2, 3}}},
	}
	if err := opts.Validate(); err == nil {
		t.Fatal("3-wide mix accepted for a 2-class run")
	}
	opts.Scenario.Mix = []scenario.MixKnot{{T: 0, Weights: []float64{1, 2}}}
	if err := opts.Validate(); err != nil {
		t.Fatalf("2-wide mix rejected for a 2-class run: %v", err)
	}
}

package sim

import (
	"container/heap"
	"math"
	"testing"
	"testing/quick"

	"sqlb/internal/allocator"
	"sqlb/internal/model"
	"sqlb/internal/workload"
)

// smallConfig is a fast population for engine tests: a 10% scale of the
// paper setup (20 consumers, 40 providers, provider window 50).
func smallConfig() model.Config {
	return model.DefaultConfig().Scale(0.1)
}

func smallOptions(strategy allocator.Allocator, frac float64, dur float64) Options {
	return Options{
		Config:         smallConfig(),
		Strategy:       strategy,
		Workload:       workload.Constant(frac),
		Duration:       dur,
		Seed:           42,
		SampleInterval: dur / 10,
	}
}

func TestEventHeapOrdering(t *testing.T) {
	var h eventHeap
	heap.Init(&h)
	heap.Push(&h, event{time: 3, seq: 1})
	heap.Push(&h, event{time: 1, seq: 2})
	heap.Push(&h, event{time: 1, seq: 3})
	heap.Push(&h, event{time: 2, seq: 4})
	var order []event
	for h.Len() > 0 {
		order = append(order, heap.Pop(&h).(event))
	}
	if order[0].time != 1 || order[0].seq != 2 {
		t.Errorf("first event = %+v, want t=1 seq=2 (FIFO tie-break)", order[0])
	}
	if order[1].time != 1 || order[1].seq != 3 {
		t.Errorf("second event = %+v, want t=1 seq=3", order[1])
	}
	if order[3].time != 3 {
		t.Errorf("last event = %+v, want t=3", order[3])
	}
}

func TestEventHeapOrderingProperty(t *testing.T) {
	f := func(times []uint16) bool {
		var h eventHeap
		heap.Init(&h)
		for i, tt := range times {
			heap.Push(&h, event{time: float64(tt % 100), seq: uint64(i)})
		}
		prev := -1.0
		prevSeq := uint64(0)
		for h.Len() > 0 {
			e := heap.Pop(&h).(event)
			if e.time < prev {
				return false
			}
			if e.time == prev && e.seq < prevSeq {
				return false
			}
			prev, prevSeq = e.time, e.seq
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOptionsValidate(t *testing.T) {
	good := smallOptions(allocator.NewSQLB(), 0.5, 100)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	bad := good
	bad.Strategy = nil
	bad.Workload = nil
	bad.Duration = 0
	bad.SampleInterval = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid options accepted")
	}
	if _, err := New(bad); err == nil {
		t.Fatal("New must reject invalid options")
	}
}

func TestEngineRunBasics(t *testing.T) {
	eng, err := New(smallOptions(allocator.NewSQLB(), 0.5, 200))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res := eng.Run()
	if res.IssuedQueries == 0 {
		t.Fatal("no queries issued")
	}
	if res.CompletedQueries == 0 {
		t.Fatal("no queries completed")
	}
	if res.CompletedQueries > res.IssuedQueries {
		t.Errorf("completed %d > issued %d", res.CompletedQueries, res.IssuedQueries)
	}
	if res.MeanResponseTime <= 0 {
		t.Errorf("mean response time = %v, want > 0", res.MeanResponseTime)
	}
	if res.MaxResponseTime < res.MeanResponseTime {
		t.Errorf("max %v < mean %v", res.MaxResponseTime, res.MeanResponseTime)
	}
	if res.ResponseHistogram == nil || res.ResponseHistogram.Count() != res.CompletedQueries {
		t.Errorf("response histogram count = %d, want %d",
			res.ResponseHistogram.Count(), res.CompletedQueries)
	}
	p50, p99 := res.ResponseHistogram.Quantile(0.5), res.ResponseHistogram.Quantile(0.99)
	if !(p50 > 0 && p50 <= p99) {
		t.Errorf("quantiles p50=%v p99=%v malformed", p50, p99)
	}
	if len(res.Samples) < 8 {
		t.Errorf("samples = %d, want ≈10", len(res.Samples))
	}
	if res.Method != "SQLB" {
		t.Errorf("method = %q", res.Method)
	}
	if res.DroppedQueries != 0 {
		t.Errorf("dropped = %d queries in a healthy captive run", res.DroppedQueries)
	}
	// Captive run: no departures.
	if len(res.ProviderDepartures) != 0 || len(res.ConsumerDepartures) != 0 {
		t.Error("captive participants must not depart")
	}
	if res.Final.AliveProviders != 40 || res.Final.AliveConsumers != 20 {
		t.Errorf("alive = %d/%d, want 40/20", res.Final.AliveProviders, res.Final.AliveConsumers)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() *Result {
		eng, err := New(smallOptions(allocator.NewSQLB(), 0.6, 150))
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return eng.Run()
	}
	a, b := run(), run()
	if a.IssuedQueries != b.IssuedQueries || a.CompletedQueries != b.CompletedQueries {
		t.Fatalf("issue/complete diverged: %d/%d vs %d/%d",
			a.IssuedQueries, a.CompletedQueries, b.IssuedQueries, b.CompletedQueries)
	}
	if a.MeanResponseTime != b.MeanResponseTime {
		t.Fatalf("mean response diverged: %v vs %v", a.MeanResponseTime, b.MeanResponseTime)
	}
	for i := range a.Samples {
		if a.Samples[i].Utilization.Mean != b.Samples[i].Utilization.Mean {
			t.Fatalf("sample %d diverged", i)
		}
	}
}

func TestEngineSeedSensitivity(t *testing.T) {
	optsA := smallOptions(allocator.NewSQLB(), 0.6, 150)
	optsB := optsA
	optsB.Seed = 43
	engA, _ := New(optsA)
	engB, _ := New(optsB)
	a, b := engA.Run(), engB.Run()
	if a.IssuedQueries == b.IssuedQueries && a.MeanResponseTime == b.MeanResponseTime {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

func TestEngineWorkloadScalesArrivals(t *testing.T) {
	low, _ := New(smallOptions(allocator.NewCapacityBased(), 0.2, 300))
	high, _ := New(smallOptions(allocator.NewCapacityBased(), 0.8, 300))
	rl, rh := low.Run(), high.Run()
	ratio := float64(rh.IssuedQueries) / float64(rl.IssuedQueries)
	if ratio < 3 || ratio > 5 {
		t.Errorf("80%%/20%% arrival ratio = %v, want ≈4", ratio)
	}
}

func TestEngineUtilizationTracksWorkload(t *testing.T) {
	// Under capacity-based balancing the mean utilization should sit near
	// the workload fraction (the "optimal utilization" anchor).
	eng, _ := New(smallOptions(allocator.NewCapacityBased(), 0.6, 400))
	res := eng.Run()
	got := res.Final.Utilization.Mean
	if math.Abs(got-0.6) > 0.15 {
		t.Errorf("mean utilization = %v, want ≈0.6", got)
	}
}

func TestEngineRampIncreasesUtilization(t *testing.T) {
	opts := smallOptions(allocator.NewCapacityBased(), 0, 500)
	opts.Workload = workload.Ramp{From: 0.2, To: 0.9, Duration: 500}
	eng, _ := New(opts)
	res := eng.Run()
	first := res.Samples[1].Utilization.Mean
	last := res.Samples[len(res.Samples)-1].Utilization.Mean
	if last <= first {
		t.Errorf("utilization did not rise along the ramp: %v → %v", first, last)
	}
	if res.Samples[1].WorkloadFraction >= res.Samples[len(res.Samples)-1].WorkloadFraction {
		t.Error("workload fraction not recorded as rising")
	}
}

func TestEngineZeroWorkload(t *testing.T) {
	eng, _ := New(smallOptions(allocator.NewSQLB(), 0, 50))
	res := eng.Run()
	if res.IssuedQueries != 0 {
		t.Errorf("issued %d queries at zero workload", res.IssuedQueries)
	}
}

func TestEngineDropsWhenAllProvidersGone(t *testing.T) {
	opts := smallOptions(allocator.NewSQLB(), 0.5, 100)
	eng, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, p := range eng.Population().Providers {
		p.Alive = false
	}
	res := eng.Run()
	if res.DroppedQueries == 0 {
		t.Error("expected dropped queries with no providers")
	}
	if res.CompletedQueries != 0 {
		t.Error("no queries can complete with no providers")
	}
}

func TestEngineDropsUnservedClass(t *testing.T) {
	// Heterogeneous capabilities with a class nobody serves: the mediator
	// sees an empty posting list and the engine must count the query as
	// dropped — no panic, no silent skip, and no spurious Result.Err.
	opts := smallOptions(allocator.NewSQLB(), 0.5, 120)
	opts.Config = opts.Config.WithClasses(4)
	eng, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, p := range eng.Population().Providers {
		eng.MatchIndex().Remove(p)
		p.SetCapabilities([]int{0, 1, 2}, 4) // class 3 unserved
		eng.MatchIndex().Add(p)
	}
	if got := len(eng.MatchIndex().Lookup(3)); got != 0 {
		t.Fatalf("class 3 posting = %d providers, want an empty posting list", got)
	}
	res := eng.Run()
	if res.Err != nil {
		t.Fatalf("Result.Err = %v on the expected-drop path", res.Err)
	}
	if res.DroppedQueries == 0 {
		t.Error("queries of the unserved class must be counted as dropped")
	}
	if res.CompletedQueries == 0 {
		t.Error("served classes must still complete")
	}
	if res.IssuedQueries != res.DroppedQueries+uint64(len(eng.inflight))+res.CompletedQueries {
		t.Errorf("accounting broken: issued %d != dropped %d + inflight %d + completed %d",
			res.IssuedQueries, res.DroppedQueries, len(eng.inflight), res.CompletedQueries)
	}
}

func TestEngineHeterogeneousDeterminism(t *testing.T) {
	// The indexed matchmaker with capability churn must stay seed-
	// deterministic: two identical heterogeneous runs produce the same
	// counts and samples.
	mk := func() *Result {
		opts := smallOptions(allocator.NewSQLB(), 0.7, 400)
		opts.Config = opts.Config.WithClasses(6)
		opts.Config.CapabilitySelectivity = 0.34
		opts.Config.ClassSkew = 1
		opts.Autonomy = FullAutonomy()
		eng, err := New(opts)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return eng.Run()
	}
	a, b := mk(), mk()
	if a.IssuedQueries != b.IssuedQueries || a.DroppedQueries != b.DroppedQueries ||
		a.CompletedQueries != b.CompletedQueries || a.MeanResponseTime != b.MeanResponseTime ||
		len(a.ProviderDepartures) != len(b.ProviderDepartures) {
		t.Fatalf("heterogeneous runs diverged: %+v vs %+v",
			[3]uint64{a.IssuedQueries, a.DroppedQueries, a.CompletedQueries},
			[3]uint64{b.IssuedQueries, b.DroppedQueries, b.CompletedQueries})
	}
}

func TestEngineIndexMaintainedOnDeparture(t *testing.T) {
	// Departing providers must leave the posting lists (incremental
	// maintenance), so the index and the naive alive-scan agree at the end
	// of an autonomy run.
	opts := smallOptions(allocator.NewCapacityBased(), 0.8, 1500)
	opts.Autonomy = FullAutonomy()
	eng, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res := eng.Run()
	if len(res.ProviderDepartures) == 0 {
		t.Skip("no departures materialized; nothing to check")
	}
	alive := len(eng.Population().AliveProviders())
	for c := range eng.Population().Classes {
		if got := len(eng.MatchIndex().Lookup(c)); got != alive {
			t.Errorf("class %d posting = %d providers, want the %d alive", c, got, alive)
		}
	}
}

func TestEngineAutonomyDepartures(t *testing.T) {
	// Under capacity-based allocation with full autonomy at high workload,
	// the paper's dynamics predict heavy provider loss; under SQLB most
	// providers stay. This is the core Figure 5(c) shape.
	mkOpts := func(s allocator.Allocator) Options {
		opts := smallOptions(s, 0.8, 1500)
		opts.Autonomy = FullAutonomy()
		return opts
	}
	engCap, _ := New(mkOpts(allocator.NewCapacityBased()))
	engSQLB, _ := New(mkOpts(allocator.NewSQLB()))
	resCap := engCap.Run()
	resSQLB := engSQLB.Run()
	if resCap.ProviderDepartureRate() <= resSQLB.ProviderDepartureRate() {
		t.Errorf("capacity-based should lose more providers: %.2f vs SQLB %.2f",
			resCap.ProviderDepartureRate(), resSQLB.ProviderDepartureRate())
	}
	for _, d := range resCap.ProviderDepartures {
		if d.Reason == model.ReasonNone {
			t.Error("departure recorded without a reason")
		}
		if d.Time < 300 {
			t.Errorf("departure at %v before the grace period", d.Time)
		}
	}
}

func TestEngineConsumerDepartureStopsArrivals(t *testing.T) {
	opts := smallOptions(allocator.NewCapacityBased(), 0.5, 600)
	opts.Autonomy = Autonomy{
		ConsumersMayLeave:    true,
		ConsumerDissatMargin: -1, // every consumer "dissatisfied" at first check
		Grace:                50,
		CheckInterval:        10,
	}
	eng, _ := New(opts)
	res := eng.Run()
	if got := len(res.ConsumerDepartures); got != 20 {
		t.Fatalf("consumer departures = %d, want all 20", got)
	}
	if res.Final.AliveConsumers != 0 {
		t.Errorf("alive consumers = %d, want 0", res.Final.AliveConsumers)
	}
	// Arrivals must stop after the consumers leave.
	perSecond := float64(res.IssuedQueries) / 600
	full := workload.ArrivalRate(0.5, eng.Population().TotalCapacity(), 140) / 600 * 600
	if perSecond > full*0.2 {
		t.Errorf("arrivals did not taper after consumer exodus: %v/s vs full %v/s", perSecond, full)
	}
}

func TestEngineStarvationReason(t *testing.T) {
	// A strategy that never selects some providers starves them.
	opts := smallOptions(allocator.NewMariposaLike(), 0.5, 1200)
	opts.Autonomy = Autonomy{ProvidersStarvation: true}
	eng, _ := New(opts)
	res := eng.Run()
	if len(res.ProviderDepartures) == 0 {
		t.Fatal("expected starvation departures under Mariposa-like")
	}
	for _, d := range res.ProviderDepartures {
		if d.Reason != model.ReasonStarvation {
			t.Errorf("unexpected reason %v with only starvation enabled", d.Reason)
		}
	}
}

func TestEngineOverutilizationReason(t *testing.T) {
	opts := smallOptions(allocator.NewMariposaLike(), 0.9, 1200)
	opts.Autonomy = Autonomy{ProvidersOverutilization: true}
	eng, _ := New(opts)
	res := eng.Run()
	for _, d := range res.ProviderDepartures {
		if d.Reason != model.ReasonOverutilization {
			t.Errorf("unexpected reason %v with only overutilization enabled", d.Reason)
		}
	}
}

func TestEngineMultiProviderQueries(t *testing.T) {
	// q.n = 2: every query goes to two providers; the response time is the
	// completion of the slower one, and consumer satisfaction divides by 2
	// (Equation 2).
	opts := smallOptions(allocator.NewSQLB(), 0.4, 300)
	opts.Config.QueryN = 2
	eng, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res := eng.Run()
	if res.CompletedQueries == 0 {
		t.Fatal("no queries completed")
	}
	// Two assignments per query: total provider work doubles relative to
	// the offered units, visible in the utilization mean (≈ 2 × 0.4).
	got := res.Final.Utilization.Mean
	if got < 0.55 || got > 1.4 {
		t.Errorf("q.n=2 utilization mean = %v, want ≈ 0.8 (double the 0.4 offered)", got)
	}
	// Per-query satisfaction caps at the two selected intentions / 2; the
	// tracker values stay in [0,1].
	for _, c := range eng.Population().Consumers {
		s := c.Tracker.Satisfaction()
		if s < 0 || s > 1 {
			t.Fatalf("consumer satisfaction %v out of range", s)
		}
	}
}

func TestEngineRampWithAutonomy(t *testing.T) {
	// Ramp + autonomy compose: "optimal utilization" follows the profile.
	opts := smallOptions(allocator.NewCapacityBased(), 0, 1200)
	opts.Workload = workload.Ramp{From: 0.3, To: 1.0, Duration: 1200}
	opts.Autonomy = FullAutonomy()
	eng, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res := eng.Run()
	if res.IssuedQueries == 0 {
		t.Fatal("ramp issued nothing")
	}
	for _, d := range res.ProviderDepartures {
		if d.Time < 300 {
			t.Errorf("departure at %v before grace", d.Time)
		}
	}
}

func TestOverThreshold(t *testing.T) {
	a := Autonomy{OverutilizationFactor: 2.2, OverutilizationFloor: 1.1}
	if got := overThreshold(a, 0.8); math.Abs(got-1.76) > 1e-9 {
		t.Errorf("threshold at 80%% = %v, want 1.76", got)
	}
	if got := overThreshold(a, 0.2); got != 1.1 {
		t.Errorf("threshold at 20%% = %v, want the 1.1 floor", got)
	}
}

func TestResultBreakdown(t *testing.T) {
	r := &Result{
		Providers: 10,
		ProviderDepartures: []Departure{
			{Reason: model.ReasonDissatisfaction, Cap: model.Low, Adapt: model.High, Interest: model.Medium},
			{Reason: model.ReasonDissatisfaction, Cap: model.Low, Adapt: model.Medium, Interest: model.Medium},
			{Reason: model.ReasonOverutilization, Cap: model.High, Adapt: model.High, Interest: model.High},
		},
	}
	bd := r.Breakdown(ByCapacity, [3]int{4, 4, 2})
	dis := bd.PerClass[model.ReasonDissatisfaction]
	if dis[model.Low] != 50 { // 2 of 4 low-capacity providers left
		t.Errorf("low-capacity dissat = %v%%, want 50", dis[model.Low])
	}
	if bd.Total[model.ReasonDissatisfaction] != 20 {
		t.Errorf("total dissat = %v%%, want 20", bd.Total[model.ReasonDissatisfaction])
	}
	over := bd.PerClass[model.ReasonOverutilization]
	if over[model.High] != 50 { // 1 of 2 high-capacity
		t.Errorf("high-capacity overutilization = %v%%, want 50", over[model.High])
	}
	if bd.Total[model.ReasonStarvation] != 0 {
		t.Errorf("starvation total = %v%%, want 0", bd.Total[model.ReasonStarvation])
	}
}

func TestClassDimensionLabels(t *testing.T) {
	if ByInterest.String() != "Cons. Interest to Prov." ||
		ByAdaptation.String() != "Providers' Adequation" ||
		ByCapacity.String() != "Providers' Capacity" {
		t.Error("unexpected Table 3 row labels")
	}
	if ClassDimension(9).String() != "unknown" {
		t.Error("out-of-range dimension must print 'unknown'")
	}
}

func TestClassTotals(t *testing.T) {
	eng, _ := New(smallOptions(allocator.NewSQLB(), 0.5, 10))
	pop := eng.Population()
	for _, dim := range ClassDimensions {
		totals := ClassTotals(pop, dim)
		if totals[0]+totals[1]+totals[2] != len(pop.Providers) {
			t.Errorf("%v totals %v do not sum to %d", dim, totals, len(pop.Providers))
		}
	}
}

func TestClampAllocSat(t *testing.T) {
	if got := clampAllocSat(math.Inf(1)); got != allocSatCap {
		t.Errorf("clamp(+Inf) = %v, want cap", got)
	}
	if got := clampAllocSat(math.NaN()); got != 0 {
		t.Errorf("clamp(NaN) = %v, want 0", got)
	}
	if got := clampAllocSat(-0.5); got != 0 {
		t.Errorf("clamp(-0.5) = %v, want 0", got)
	}
	if got := clampAllocSat(1.3); got != 1.3 {
		t.Errorf("clamp(1.3) = %v, want unchanged", got)
	}
}

func TestDepartureRates(t *testing.T) {
	r := &Result{Providers: 4, Consumers: 2,
		ProviderDepartures: []Departure{{}, {}},
		ConsumerDepartures: []Departure{{}},
	}
	if got := r.ProviderDepartureRate(); got != 0.5 {
		t.Errorf("provider departure rate = %v, want 0.5", got)
	}
	if got := r.ConsumerDepartureRate(); got != 0.5 {
		t.Errorf("consumer departure rate = %v, want 0.5", got)
	}
	empty := &Result{}
	if empty.ProviderDepartureRate() != 0 || empty.ConsumerDepartureRate() != 0 {
		t.Error("zero-population rates must be 0")
	}
}

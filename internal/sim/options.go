package sim

import (
	"errors"
	"fmt"
	"os"
	"strconv"

	"sqlb/internal/allocator"
	"sqlb/internal/model"
	"sqlb/internal/scenario"
	"sqlb/internal/timeline"
	"sqlb/internal/workload"
)

// Autonomy configures which departure rules of Section 6.3.2 are active.
// The zero value is the captive system of Section 6.3.1 (nobody may leave).
type Autonomy struct {
	// ConsumersMayLeave enables consumer departure by dissatisfaction:
	// a consumer leaves when δs(c) < δa(c) − ConsumerDissatMargin.
	ConsumersMayLeave bool
	// ProvidersDissatisfaction enables provider departure when
	// δs(p) < δa(p) − ProviderDissatMargin (the paper's margin is 0.15),
	// judged on the provider's private, preference-based characteristics.
	ProvidersDissatisfaction bool
	// ProvidersStarvation enables departure when
	// Ut(p) < StarvationFraction · optimal (paper: 20% of optimal).
	ProvidersStarvation bool
	// ProvidersOverutilization enables departure when
	// Ut(p) > OverutilizationFactor · optimal (paper: 220% of optimal).
	ProvidersOverutilization bool

	// ProviderDissatMargin defaults to 0.15 (Section 6.3.2).
	ProviderDissatMargin float64
	// ConsumerDissatMargin is a small stability tolerance on the strict
	// "satisfaction smaller than adequation" rule; with an exactly-neutral
	// method, δs(c) fluctuates symmetrically around δa(c) and a literal
	// zero margin would classify sampling noise as punishment. Default
	// 0.02.
	ConsumerDissatMargin float64
	// StarvationFraction defaults to 0.2.
	StarvationFraction float64
	// OverutilizationFactor defaults to 2.2.
	OverutilizationFactor float64
	// OverutilizationFloor is the minimum utilization that ever counts as
	// overutilization (default 1.1): at low nominal workloads the paper's
	// 220%-of-optimal threshold falls below a provider's sustainable rate
	// (2.2 × 0.4 = 0.88 < 1), and a provider running within its capacity
	// is not harmed. The floor keeps the rule meaning "well past what the
	// provider can sustain".
	OverutilizationFloor float64
	// Grace is the sim-time before the first departure check (windows must
	// warm up; the trackers start at the 0.5 prior). Default 300 s.
	Grace float64
	// CheckInterval is the cadence of departure checks. Default 20 s.
	CheckInterval float64
}

// FullAutonomy returns the Figure 5(b) setting: providers may leave for all
// three reasons and consumers by dissatisfaction.
func FullAutonomy() Autonomy {
	return Autonomy{
		ConsumersMayLeave:        true,
		ProvidersDissatisfaction: true,
		ProvidersStarvation:      true,
		ProvidersOverutilization: true,
	}
}

// DissatStarvationAutonomy returns the Figure 5(a) setting: providers may
// leave only by dissatisfaction or starvation.
func DissatStarvationAutonomy() Autonomy {
	return Autonomy{
		ConsumersMayLeave:        true,
		ProvidersDissatisfaction: true,
		ProvidersStarvation:      true,
	}
}

// enabled reports whether any departure rule is active.
func (a Autonomy) enabled() bool {
	return a.ConsumersMayLeave || a.ProvidersDissatisfaction ||
		a.ProvidersStarvation || a.ProvidersOverutilization
}

func (a Autonomy) withDefaults() Autonomy {
	if a.ProviderDissatMargin == 0 {
		a.ProviderDissatMargin = 0.15
	}
	if a.ConsumerDissatMargin == 0 {
		a.ConsumerDissatMargin = 0.02
	}
	if a.StarvationFraction == 0 {
		a.StarvationFraction = 0.2
	}
	if a.OverutilizationFactor == 0 {
		a.OverutilizationFactor = 2.2
	}
	if a.OverutilizationFloor == 0 {
		a.OverutilizationFloor = 1.1
	}
	if a.Grace == 0 {
		a.Grace = 300
	}
	if a.CheckInterval == 0 {
		a.CheckInterval = 20
	}
	return a
}

// Options configures one simulation run.
type Options struct {
	// Config is the population/system configuration (Table 2 defaults via
	// model.DefaultConfig).
	Config model.Config
	// Strategy is the query-allocation method under test.
	Strategy allocator.Allocator
	// Workload shapes the offered load over time.
	Workload workload.Profile
	// Scenario overlays time-varying load and churn on the run: its load
	// curve (if any) replaces Workload, its waves schedule provider
	// outages/rejoins as discrete events, and its mix varies the query-
	// class weights over time. A normalized scenario is scaled to the
	// run's Duration. Nil reproduces the paper's constant/ramp workloads
	// exactly (not a single RNG draw differs).
	Scenario *scenario.Scenario
	// Duration is the simulated horizon in seconds.
	Duration float64
	// Seed drives every random stream of the run.
	Seed uint64
	// SampleInterval is the §4 metric sampling cadence in sim-seconds;
	// 0 disables time-series sampling (a final sample is always taken).
	SampleInterval float64
	// Autonomy configures departures; zero value = captive participants.
	Autonomy Autonomy
	// SmoothingAlpha is the EWMA factor of the providers' long-run
	// self-assessment (model.Provider.Smooth), applied every
	// SmoothingInterval sim-seconds. The instantaneous provider
	// satisfaction reading rests on the few queries performed within the
	// last-k proposals, so the self-assessment — which Definition 8's
	// exponent and the departure rules consult — must integrate it over
	// time. Defaults: α = 0.03 every 20 s.
	SmoothingAlpha float64
	// ConsumerSmoothingAlpha is the EWMA factor of the consumers'
	// self-assessment. Consumer tracker readings refresh only as fast as
	// the k = 200 query window turns over (minutes of sim-time), so the
	// consumer EWMA must be much slower than the provider one to actually
	// average independent window states; otherwise window noise leaks
	// straight into departure decisions. Default 0.005.
	ConsumerSmoothingAlpha float64
	// SmoothingInterval is the cadence of the self-assessment update.
	SmoothingInterval float64
	// Shards fans the engine's population-dimension work — intention
	// gathering and result notification per mediation, §4 metric gathers,
	// assessment smoothing, departure-rule evaluation — out to this many
	// shard workers behind the event loop's virtual-clock barrier. The
	// result is byte-identical at every value (see shardPool): parallel
	// phases are pure index-addressed maps and every fold, RNG draw, and
	// cross-participant mutation stays on the event loop in index order.
	// 0 consults the SQLB_SHARDS environment variable (the CI matrix runs
	// the suite with SQLB_SHARDS=4) and falls back to 1, the serial
	// engine; 1 runs serially with no pool.
	Shards int
	// Timeline, when non-nil, receives one timeline.Snapshot per metric
	// sample (and one for the final state) — the streaming observability
	// hook behind sqlb-top and the -timeline/-csv exports. The sink is a
	// pure observer of the sample path: it is fed copies after each
	// sample is recorded, draws nothing from the RNG streams, and
	// mutates no engine state, so enabling it leaves the Result
	// byte-identical (TestTimelineDeterminism). The engine does not
	// close the sink; the first Append error is surfaced via
	// Engine.TimelineErr.
	Timeline timeline.Sink
}

func (o *Options) smoothingDefaults() (alpha, consumerAlpha, interval float64) {
	alpha, consumerAlpha, interval = o.SmoothingAlpha, o.ConsumerSmoothingAlpha, o.SmoothingInterval
	if alpha <= 0 {
		alpha = 0.03
	}
	if consumerAlpha <= 0 {
		consumerAlpha = 0.005
	}
	if interval <= 0 {
		interval = 20
	}
	return alpha, consumerAlpha, interval
}

// Validate checks the options.
func (o *Options) Validate() error {
	var errs []error
	if err := o.Config.Validate(); err != nil {
		errs = append(errs, err)
	}
	if o.Strategy == nil {
		errs = append(errs, errors.New("sim: options need a strategy"))
	}
	if o.Workload == nil && (o.Scenario == nil || o.Scenario.Load == nil) {
		errs = append(errs, errors.New("sim: options need a workload profile or a scenario with a load curve"))
	}
	if o.Scenario != nil {
		if err := o.Scenario.Validate(); err != nil {
			errs = append(errs, err)
		} else if len(o.Scenario.Mix) > 0 {
			if got, want := len(o.Scenario.Mix[0].Weights), len(o.Config.QueryClasses); got != want {
				errs = append(errs, fmt.Errorf("sim: scenario mix has %d weights per knot, run has %d query classes", got, want))
			}
		}
	}
	if o.Duration <= 0 {
		errs = append(errs, errors.New("sim: duration must be positive"))
	}
	if o.SampleInterval < 0 {
		errs = append(errs, errors.New("sim: sample interval must be >= 0"))
	}
	if o.Shards < 0 {
		errs = append(errs, errors.New("sim: shards must be >= 0"))
	}
	return errors.Join(errs...)
}

// effectiveShards resolves Options.Shards: explicit positive values win,
// 0 falls back to the SQLB_SHARDS environment variable (ignored unless a
// positive integer) and then to 1. Determinism makes the fallback safe:
// every test and recorded artifact produces the same bytes under any
// override, which is exactly what the CI sharded matrix entry relies on.
func (o *Options) effectiveShards() int {
	if o.Shards > 0 {
		return o.Shards
	}
	if v := os.Getenv("SQLB_SHARDS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 1
}

// Package sim is the discrete-event simulation substrate the paper's
// evaluation runs on (Section 6.1): a virtual clock over an event heap,
// Poisson query arrivals shaped by a workload profile, FIFO provider
// service queues, periodic §4 metric sampling, and the autonomy machinery
// (departure rules of Section 6.3.2).
package sim

import "container/heap"

type eventKind int

const (
	evArrival eventKind = iota
	evCompletion
	evSample
	evDepartureCheck
	evSmooth
	evChurn
)

// event is one scheduled occurrence. seq breaks time ties FIFO so runs are
// fully deterministic.
type event struct {
	time float64
	seq  uint64
	kind eventKind
	// qid identifies the in-flight query for completion events, and the
	// scenario wave index for churn events.
	qid uint64
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// schedule pushes an event, assigning it the next sequence number.
func (e *Engine) schedule(t float64, kind eventKind, qid uint64) {
	e.seq++
	heap.Push(&e.events, event{time: t, seq: e.seq, kind: kind, qid: qid})
}

package sim

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"sqlb/internal/scenario"
)

// goldenPath holds the recorded cross-PR determinism pins: a SHA-256 per
// (case, shard count) over the serialized Result and the streamed timeline
// CSV. TestShardedDeterminism proves the shard count is invisible *within*
// one build; this file pins the bytes *across* refactors — the memory-layout
// work (arena population store, mediation scratch space) must leave every
// simulation bit-for-bit identical to the recording made before it landed.
//
// Regenerate deliberately (a behaviour-changing PR must say so) with:
//
//	SQLB_UPDATE_GOLDEN=1 go test ./internal/sim -run TestGoldenDeterminism
const goldenPath = "testdata/golden_determinism.json"

// goldenCases mirrors the TestShardedDeterminism grid: the homogeneous
// paper setup, a heterogeneous capability workload, and every scenario
// preset, each with full autonomy and a timeline sink attached.
func goldenCases() []struct {
	name   string
	mutate func(*Options)
} {
	cases := []struct {
		name   string
		mutate func(*Options)
	}{
		{"homogeneous", nil},
		{"heterogeneous", func(o *Options) {
			o.Config = o.Config.WithClasses(6)
			o.Config.CapabilitySelectivity = 0.34
			o.Config.ClassSkew = 1
			o.Autonomy = FullAutonomy()
		}},
	}
	for _, name := range scenario.Names() {
		preset, ok := scenario.Preset(name)
		if !ok {
			panic("preset vanished: " + name)
		}
		cases = append(cases, struct {
			name   string
			mutate func(*Options)
		}{"scenario-" + name, func(o *Options) {
			o.Scenario = preset
			o.SampleInterval = o.Duration / 40
			o.Autonomy = FullAutonomy()
		}})
	}
	return cases
}

// TestGoldenDeterminism compares every golden case, at the serial engine
// and one sharded count, against the recorded digests.
func TestGoldenDeterminism(t *testing.T) {
	data, err := os.ReadFile(goldenPath)
	update := os.Getenv("SQLB_UPDATE_GOLDEN") != ""
	if err != nil && !update {
		t.Fatalf("read goldens (SQLB_UPDATE_GOLDEN=1 to record): %v", err)
	}
	want := map[string]string{}
	if err == nil {
		if err := json.Unmarshal(data, &want); err != nil {
			t.Fatalf("parse %s: %v", goldenPath, err)
		}
	}

	got := map[string]string{}
	for _, tc := range goldenCases() {
		for _, shards := range []int{1, 4} {
			res, csv := runSharded(t, shards, tc.mutate)
			sum := sha256.Sum256(append([]byte(res), csv...))
			got[tc.name+"/shards="+string(rune('0'+shards))] = hex.EncodeToString(sum[:])
		}
	}

	if update {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(got); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("recorded %d golden digests to %s", len(got), goldenPath)
		return
	}

	for key, digest := range got {
		if want[key] == "" {
			t.Errorf("%s: no recorded golden (SQLB_UPDATE_GOLDEN=1 to record)", key)
			continue
		}
		if digest != want[key] {
			t.Errorf("%s: digest %s differs from recorded %s — the run is no longer byte-identical to the pre-refactor engine",
				key, digest, want[key])
		}
	}
	if len(got) != len(want) {
		t.Errorf("got %d digests, goldens record %d", len(got), len(want))
	}
}

package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"sqlb/internal/matchmaking"
	"sqlb/internal/mediator"
	"sqlb/internal/metrics"
	"sqlb/internal/model"
	"sqlb/internal/randx"
	"sqlb/internal/scenario"
	"sqlb/internal/stats"
	"sqlb/internal/workload"
)

// Engine runs one simulation: it owns the population, the mediator, the
// event heap, and the virtual clock.
type Engine struct {
	opts  Options
	pop   *model.Population
	med   *mediator.Mediator
	index *matchmaking.Index
	gen   *workload.Generator

	// load is the effective workload profile: the scenario's load curve
	// when one is set, Options.Workload otherwise.
	load workload.Profile
	// scn is the scenario scaled to sim-seconds (nil without one); churnRng
	// is the dedicated RNG stream its waves draw victims from, derived
	// from the run seed alone so churn is identical at any worker count.
	scn      *scenario.Scenario
	churnRng *randx.Rand
	// mixBuf is the reusable buffer MixWeightsAt fills per arrival.
	mixBuf []float64

	arrivalRng *randx.Rand

	// shards is the resolved shard count; pool is the worker pool behind
	// the per-event barrier (nil when shards == 1 — the serial engine).
	// See shard.go for the contract that keeps any shard count
	// byte-identical.
	shards int
	pool   *shardPool

	events eventHeap
	seq    uint64
	now    float64

	totalCapacity float64
	meanUnits     float64

	aliveConsumers []*model.Consumer

	inflight map[uint64]*inflightQuery

	// response-time aggregates: whole-run and since-last-sample.
	respHist                   *stats.Histogram
	respSum, respMax           float64
	respCount                  uint64
	windowRespSum              float64
	windowRespCount            int
	issued, completed, dropped uint64

	departuresP []Departure
	departuresC []Departure
	joinsP      []Departure
	samples     []Sample
	autonomy    Autonomy

	// medErr keeps the first mediation error that was not the expected
	// ErrNoProviders drop — a strategy or wiring bug the run surfaces via
	// Result.Err instead of swallowing.
	medErr error

	smoothAlpha    float64
	smoothAlphaC   float64
	smoothInterval float64

	// tl streams a timeline.Snapshot per metric sample to Options.Timeline;
	// nil when no sink is configured. Strictly an observer — see the field
	// doc on Options.Timeline for the determinism contract.
	tl *timelineEmitter
}

type inflightQuery struct {
	issuedAt  float64
	remaining int
	// consumer and servers support the reputation-feedback extension
	// (Config.ReputationFeedbackAlpha); nil when it is disabled.
	consumer *model.Consumer
	servers  []*model.Provider
	class    int
}

// New builds an engine from the options, constructing the population from
// the run seed. Returns an error if the options are invalid.
func New(opts Options) (*Engine, error) {
	if err := opts.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	master := randx.New(opts.Seed)
	popRng := master.Split()
	genRng := master.Split()
	arrRng := master.Split()
	// The churn stream is split last: the draws above come from master
	// positions that do not depend on it, so scenario-free runs stay
	// byte-identical to the pre-scenario implementation.
	churnRng := master.Split()

	pop := model.NewPopulation(opts.Config, popRng, 0)
	gen := workload.NewGenerator(opts.Config.QueryClasses, opts.Config.QueryN, genRng)
	gen.SetClassWeights(opts.Config.ClassWeights())
	e := &Engine{
		opts:          opts,
		pop:           pop,
		med:           mediator.New(opts.Strategy),
		index:         matchmaking.BuildIndex(pop),
		gen:           gen,
		arrivalRng:    arrRng,
		totalCapacity: pop.TotalCapacity(),
		meanUnits:     opts.Config.MeanQueryUnitsWeighted(),
		inflight:      make(map[uint64]*inflightQuery),
		respHist:      stats.DefaultResponseHistogram(),
		autonomy:      opts.Autonomy.withDefaults(),
		load:          opts.Workload,
		scn:           opts.Scenario.Scaled(opts.Duration),
		churnRng:      churnRng,
		shards:        opts.effectiveShards(),
	}
	if e.scn != nil && e.scn.Load != nil {
		e.load = e.scn.Load
	}
	if opts.Timeline != nil {
		e.tl = &timelineEmitter{sink: opts.Timeline}
	}
	// The indexed matchmaker replaces the naive full-population scan: the
	// mediator sees only the O(|Pq|) candidate subset per query. In the
	// paper's homogeneous setup both procedures return the identical
	// ID-ordered alive set, so simulations stay byte-identical.
	e.med.Match = e.index
	e.aliveConsumers = append(e.aliveConsumers, pop.Consumers...)
	e.smoothAlpha, e.smoothAlphaC, e.smoothInterval = opts.smoothingDefaults()
	return e, nil
}

// Population exposes the engine's population (read-mostly; used by
// experiments for class totals and by examples).
func (e *Engine) Population() *model.Population { return e.pop }

// MatchIndex exposes the engine's capability index (read-only; tests
// inspect posting lists to assert the matchmaking state).
func (e *Engine) MatchIndex() *matchmaking.Index { return e.index }

// Shards reports the resolved shard count of the run (1 = serial engine).
func (e *Engine) Shards() int { return e.shards }

// Run executes the simulation and returns its result. It can be called
// once per engine.
func (e *Engine) Run() *Result {
	if e.shards > 1 {
		e.pool = newShardPool(e.shards)
		defer e.pool.close()
		// The mediator's O(|Pq|) loops — intention gathering, satisfaction
		// extraction, result notification — fork across the same pool.
		e.med.Exec = e.pool.run
	}
	// Churn waves are scheduled first so a wave at t=0 (an initially
	// degraded system) applies before the first arrival mediates.
	if e.scn != nil {
		for i := range e.scn.Waves {
			e.schedule(e.scn.Waves[i].Time, evChurn, uint64(i))
		}
	}
	e.scheduleNextArrival()
	e.schedule(e.smoothInterval, evSmooth, 0)
	if e.opts.SampleInterval > 0 {
		e.schedule(e.opts.SampleInterval, evSample, 0)
	}
	if e.opts.Autonomy.enabled() {
		first := e.autonomy.Grace
		if first <= 0 {
			first = e.autonomy.CheckInterval
		}
		e.schedule(first, evDepartureCheck, 0)
	}

	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(event)
		if ev.time > e.opts.Duration {
			break
		}
		e.now = ev.time
		switch ev.kind {
		case evArrival:
			e.handleArrival()
		case evCompletion:
			e.handleCompletion(ev.qid)
		case evSample:
			e.takeSample()
			e.schedule(e.now+e.opts.SampleInterval, evSample, 0)
		case evDepartureCheck:
			e.checkDepartures()
			e.schedule(e.now+e.autonomy.CheckInterval, evDepartureCheck, 0)
		case evSmooth:
			e.smoothAssessments()
			e.schedule(e.now+e.smoothInterval, evSmooth, 0)
		case evChurn:
			e.applyWave(e.scn.Waves[ev.qid])
		}
	}
	e.now = e.opts.Duration
	return e.buildResult()
}

// scheduleNextArrival draws the next Poisson inter-arrival from the current
// workload fraction, damped by the fraction of consumers still present
// (fewer consumers, fewer queries — Section 6.3.2).
func (e *Engine) scheduleNextArrival() {
	if len(e.aliveConsumers) == 0 {
		return
	}
	frac := e.load.Fraction(e.now)
	rate := workload.ArrivalRate(frac, e.totalCapacity, e.meanUnits)
	rate *= float64(len(e.aliveConsumers)) / float64(len(e.pop.Consumers))
	if rate <= 0 {
		// Idle profile: poll again in a second of sim-time.
		e.schedule(e.now+1, evArrival, 0)
		return
	}
	e.schedule(e.now+e.arrivalRng.Exp(rate), evArrival, 0)
}

func (e *Engine) handleArrival() {
	defer e.scheduleNextArrival()
	if len(e.aliveConsumers) == 0 {
		return
	}
	// An arrival scheduled while the profile was idle is just a poll.
	if workload.ArrivalRate(e.load.Fraction(e.now), e.totalCapacity, e.meanUnits) <= 0 {
		return
	}
	c := e.aliveConsumers[e.arrivalRng.Pick(len(e.aliveConsumers))]
	if e.scn != nil && len(e.scn.Mix) > 0 {
		// Time-varying class mix: re-weight the generator at the arrival's
		// instant. One Float64 is drawn per query either way, so enabling
		// a mix never changes the number of RNG draws.
		e.mixBuf = e.scn.MixWeightsAt(e.now, e.mixBuf)
		e.gen.SetClassWeights(e.mixBuf)
	}
	q := e.gen.Next(e.now, c)
	e.issued++

	alloc, err := e.med.Allocate(e.now, q, e.pop)
	if err != nil {
		// A query no registered provider can treat (empty posting list —
		// the class every specialist skipped, or a drained system) is a
		// dropped query, not a bug. Anything else is a wiring error the
		// run must surface.
		if !errors.Is(err, mediator.ErrNoProviders) && e.medErr == nil {
			e.medErr = err
		}
		e.dropped++
		return
	}
	if len(alloc.Selected) == 0 {
		// The allocator selected nobody (an empty Selected set is a legal
		// strategy outcome). Registering it in-flight would leak: with
		// remaining=0 no completion event ever deletes the entry, so the
		// query would count as issued but never complete nor drop.
		e.dropped++
		return
	}
	fl := &inflightQuery{issuedAt: q.IssuedAt, remaining: len(alloc.Selected)}
	if e.opts.Config.ReputationFeedbackAlpha > 0 {
		fl.consumer = q.Consumer
		fl.servers = alloc.SelectedProviders()
		fl.class = q.Class
	}
	e.inflight[q.ID] = fl
	// Walk the selection in place — SelectedProviders would copy, and this
	// runs once per arrival on the zero-allocation mediation path.
	for _, idx := range alloc.Selected {
		done := alloc.Pq[idx].Assign(e.now, q.Units)
		e.schedule(done, evCompletion, q.ID)
	}
}

func (e *Engine) handleCompletion(qid uint64) {
	fl, ok := e.inflight[qid]
	if !ok {
		return
	}
	fl.remaining--
	if fl.remaining > 0 {
		return
	}
	delete(e.inflight, qid)
	rt := e.now - fl.issuedAt
	e.completed++
	e.respHist.Observe(rt)
	e.respSum += rt
	if rt > e.respMax {
		e.respMax = rt
	}
	e.respCount++
	e.windowRespSum += rt
	e.windowRespCount++

	// Reputation-feedback extension: the consumer rates every provider
	// that served the query with its private preference for it.
	if fl.consumer != nil {
		alpha := e.opts.Config.ReputationFeedbackAlpha
		for _, p := range fl.servers {
			p.RecordFeedback(fl.consumer.Preference(p, fl.class), alpha)
		}
	}
}

// applyWave executes one scheduled churn event of the scenario. Victims
// are drawn from the dedicated churn RNG stream and applied in ascending
// ID order, so the wave is deterministic under the run seed and the
// departure ledger stays ID-sorted within a wave.
func (e *Engine) applyWave(w scenario.Wave) {
	switch w.Kind {
	case scenario.WaveOutage:
		pool := e.pop.AliveProviders()
		picked := pickWave(e.churnRng, pool, w)
		for _, p := range picked {
			p.Alive = false
			p.DepartedAt = e.now
			p.DepartReason = model.ReasonOutage
			// Incremental index maintenance, same as an announced autonomy
			// departure: the provider leaves every posting list now.
			e.index.Remove(p)
			e.departuresP = append(e.departuresP, Departure{
				Time: e.now, ID: p.ID, Reason: model.ReasonOutage,
				Interest: p.InterestClass, Adapt: p.AdaptClass, Cap: p.CapClass,
			})
		}
	case scenario.WaveRejoin:
		// Only outage victims are eligible: autonomy departures are the
		// participant's own permanent decision (Section 6.3.2).
		pool := make([]*model.Provider, 0)
		for _, p := range e.pop.Providers {
			if !p.Alive && p.DepartReason == model.ReasonOutage {
				pool = append(pool, p)
			}
		}
		picked := pickWave(e.churnRng, pool, w)
		for _, p := range picked {
			p.Alive = true
			p.DepartedAt = 0
			p.DepartReason = model.ReasonNone
			e.index.Add(p)
			e.joinsP = append(e.joinsP, Departure{
				Time: e.now, ID: p.ID, Reason: model.ReasonNone,
				Interest: p.InterestClass, Adapt: p.AdaptClass, Cap: p.CapClass,
			})
		}
	}
}

// pickWave selects the wave's victims from the eligible pool: a uniform
// draw without replacement of TargetCount providers, returned in ID order.
func pickWave(rng *randx.Rand, pool []*model.Provider, w scenario.Wave) []*model.Provider {
	n := w.TargetCount(len(pool))
	if n == 0 {
		return nil
	}
	perm := rng.Perm(len(pool))
	picked := make([]*model.Provider, n)
	for i := 0; i < n; i++ {
		picked[i] = pool[perm[i]]
	}
	sort.Slice(picked, func(i, j int) bool { return picked[i].ID < picked[j].ID })
	return picked
}

// takeSample snapshots the §4 metrics over the alive participants.
func (e *Engine) takeSample() {
	s := e.snapshot()
	e.samples = append(e.samples, s)
	if e.tl != nil {
		e.tl.emit(e, s)
	}
}

// providerValues gathers one metric value per alive provider, in provider
// index order — the sharded replacement for model.Population.ProviderValues
// on the sampling path. The gather phase is a pure per-index map (slot i
// holds provider i's value and alive bit); the compaction fold runs on the
// event loop in index order, so the returned slice is byte-identical to
// the serial scan at any shard count.
func (e *Engine) providerValues(f func(*model.Provider) float64) []float64 {
	ps := e.pop.Providers
	if e.pool == nil {
		return e.pop.ProviderValues(true, f)
	}
	vals := make([]float64, len(ps))
	alive := make([]bool, len(ps))
	e.pool.run(len(ps), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if p := ps[i]; p.Alive {
				alive[i] = true
				vals[i] = f(p)
			}
		}
	})
	n := 0
	for i := range vals {
		if alive[i] {
			vals[n] = vals[i]
			n++
		}
	}
	return vals[:n]
}

// consumerValues is providerValues over the consumer population.
func (e *Engine) consumerValues(f func(*model.Consumer) float64) []float64 {
	cs := e.pop.Consumers
	if e.pool == nil {
		return e.pop.ConsumerValues(true, f)
	}
	vals := make([]float64, len(cs))
	alive := make([]bool, len(cs))
	e.pool.run(len(cs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if c := cs[i]; c.Alive {
				alive[i] = true
				vals[i] = f(c)
			}
		}
	})
	n := 0
	for i := range vals {
		if alive[i] {
			vals[n] = vals[i]
			n++
		}
	}
	return vals[:n]
}

func (e *Engine) snapshot() Sample {
	s := Sample{
		Time:             e.now,
		WorkloadFraction: e.load.Fraction(e.now),
		ProvSatIntention: metrics.Summarize(e.providerValues(func(p *model.Provider) float64 {
			return p.Public.Satisfaction()
		})),
		ProvSatPreference: metrics.Summarize(e.providerValues(func(p *model.Provider) float64 {
			return p.SmoothSat
		})),
		ProvAllocSatPreference: metrics.Summarize(e.providerValues(func(p *model.Provider) float64 {
			if p.SmoothAdq == 0 {
				return 1
			}
			return clampAllocSat(p.SmoothSat / p.SmoothAdq)
		})),
		ProvAdequationPreference: metrics.Summarize(e.providerValues(func(p *model.Provider) float64 {
			return p.SmoothAdq
		})),
		ConsSat: metrics.Summarize(e.consumerValues(func(c *model.Consumer) float64 {
			return c.Tracker.Satisfaction()
		})),
		ConsAllocSat: metrics.Summarize(e.consumerValues(func(c *model.Consumer) float64 {
			return clampAllocSat(c.Tracker.AllocationSatisfaction())
		})),
		Utilization: metrics.Summarize(e.providerValues(func(p *model.Provider) float64 {
			return p.MeasuredLoad(e.now)
		})),
		AliveProviders:         len(e.pop.AliveProviders()),
		AliveConsumers:         len(e.aliveConsumers),
		ProviderDepartureCount: len(e.departuresP),
		ProviderJoinCount:      len(e.joinsP),
		ConsumerDepartureCount: len(e.departuresC),
	}
	if e.windowRespCount > 0 {
		s.ResponseTimeMean = e.windowRespSum / float64(e.windowRespCount)
		s.ResponseCount = e.windowRespCount
	}
	e.windowRespSum, e.windowRespCount = 0, 0
	return s
}

// smoothAssessments folds the current tracker readings into every alive
// participant's long-run self-assessment (Definition 8's exponent and the
// departure rules consult it). Each participant's smoothing touches that
// participant alone and draws no randomness, so the loops shard freely.
func (e *Engine) smoothAssessments() {
	ps := e.pop.Providers
	e.pool.run(len(ps), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if ps[i].Alive {
				ps[i].Smooth(e.smoothAlpha, e.now)
			}
		}
	})
	cs := e.aliveConsumers
	e.pool.run(len(cs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cs[i].Smooth(e.smoothAlphaC)
		}
	})
}

// checkDepartures applies the Section 6.3.2 rules. The "optimal
// utilization" of a provider equals the current workload fraction (the
// paper: at 80% workload the optimal utilization is 0.8). Dissatisfaction
// is judged on the participants' long-run self-assessment of their
// private, preference-based characteristics (see Options.SmoothingAlpha).
// The check runs in two phases so it shards: the rule evaluation is a pure
// per-participant read (a provider's verdict depends only on its own
// smoothed state and the current optimal), computed into an index-addressed
// slot vector behind the barrier; the mutations — flipping Alive, index
// removal, the ledger appends — then apply on the event loop in index
// order, exactly the order the historical single loop produced.
func (e *Engine) checkDepartures() {
	optimal := e.load.Fraction(e.now)
	a := e.autonomy
	if a.ProvidersDissatisfaction || a.ProvidersStarvation || a.ProvidersOverutilization {
		ps := e.pop.Providers
		reasons := make([]model.DepartureReason, len(ps))
		e.pool.run(len(ps), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				p := ps[i]
				if !p.Alive {
					continue
				}
				switch {
				case a.ProvidersDissatisfaction &&
					p.SmoothSat < p.SmoothAdq-a.ProviderDissatMargin:
					reasons[i] = model.ReasonDissatisfaction
				case a.ProvidersStarvation &&
					p.SmoothUt < a.StarvationFraction*optimal:
					reasons[i] = model.ReasonStarvation
				case a.ProvidersOverutilization &&
					p.SmoothUt > overThreshold(a, optimal):
					reasons[i] = model.ReasonOverutilization
				}
			}
		})
		for i, reason := range reasons {
			if reason == model.ReasonNone {
				continue
			}
			p := ps[i]
			p.Alive = false
			p.DepartedAt = e.now
			p.DepartReason = reason
			// Incremental index maintenance: the departed provider leaves
			// every posting list now, so no future lookup pays for it.
			e.index.Remove(p)
			e.departuresP = append(e.departuresP, Departure{
				Time: e.now, ID: p.ID, Reason: reason,
				Interest: p.InterestClass, Adapt: p.AdaptClass, Cap: p.CapClass,
			})
		}
	}
	if a.ConsumersMayLeave {
		cs := e.aliveConsumers
		leaving := make([]bool, len(cs))
		e.pool.run(len(cs), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				leaving[i] = cs[i].SmoothSat < cs[i].SmoothAdq-a.ConsumerDissatMargin
			}
		})
		kept := cs[:0]
		for i, c := range cs {
			if leaving[i] {
				c.Alive = false
				c.DepartedAt = e.now
				c.DepartReason = model.ReasonDissatisfaction
				e.departuresC = append(e.departuresC, Departure{
					Time: e.now, ID: c.ID, Reason: model.ReasonDissatisfaction,
				})
				continue
			}
			kept = append(kept, c)
		}
		e.aliveConsumers = kept
	}
}

// overThreshold is the utilization above which a provider flees: 220% of
// its optimal utilization, floored at OverutilizationFloor (see Autonomy).
func overThreshold(a Autonomy, optimal float64) float64 {
	thr := a.OverutilizationFactor * optimal
	if thr < a.OverutilizationFloor {
		thr = a.OverutilizationFloor
	}
	return thr
}

func (e *Engine) buildResult() *Result {
	final := e.snapshot()
	if e.tl != nil {
		e.tl.emit(e, final)
	}
	r := &Result{
		Method:             e.opts.Strategy.Name(),
		Seed:               e.opts.Seed,
		Duration:           e.opts.Duration,
		Samples:            e.samples,
		Final:              final,
		IssuedQueries:      e.issued,
		CompletedQueries:   e.completed,
		DroppedQueries:     e.dropped,
		InFlightAtEnd:      len(e.inflight),
		MaxResponseTime:    e.respMax,
		ResponseHistogram:  e.respHist,
		ProviderDepartures: e.departuresP,
		ConsumerDepartures: e.departuresC,
		ProviderJoins:      e.joinsP,
		Providers:          len(e.pop.Providers),
		Consumers:          len(e.pop.Consumers),
		Err:                e.medErr,
	}
	if e.scn != nil {
		r.Scenario = e.scn.Name
	}
	if e.respCount > 0 {
		r.MeanResponseTime = e.respSum / float64(e.respCount)
	}
	return r
}

// ClassTotals counts the providers per level of a class dimension; the
// denominator of the Table 3 per-class percentages.
func ClassTotals(pop *model.Population, dim ClassDimension) [3]int {
	var out [3]int
	for _, p := range pop.Providers {
		switch dim {
		case ByInterest:
			out[p.InterestClass]++
		case ByAdaptation:
			out[p.AdaptClass]++
		default:
			out[p.CapClass]++
		}
	}
	return out
}

package sim

import "sync"

// shardPool fans the engine's population-dimension work out to K shard
// workers. The discrete-event loop stays the single virtual clock: events
// pop strictly in (time, seq) order, and each event acts as the barrier —
// a parallel phase forks its index range across the shards and joins
// before the engine touches the next piece of state. What runs inside a
// phase is restricted by contract to a pure per-index map: shard i reads
// shared state that no shard writes during the phase and writes only
// slots (or participants) in its own [lo, hi) range. Every fold over the
// produced slots, every RNG draw, and every cross-participant mutation
// stays on the event loop, in index order. That contract — parallel
// index-addressed maps, serial index-ordered folds — is what makes a run
// byte-identical at any shard count, including shards=1: there is nothing
// the partition shape can influence. It is the same seeding/merging
// contract the parallel experiment Lab pins with
// TestParallelLabDeterminism, applied inside a single simulation.
//
// Workers are persistent goroutines (spawned once per run, not per
// phase), so a phase costs one channel send and one WaitGroup wake per
// shard — cheap enough to fork the O(|Pq|) mediation loops every arrival.
type shardPool struct {
	shards int
	jobs   []chan shardJob
}

// shardJob is one shard's slice of a phase.
type shardJob struct {
	lo, hi int
	fn     func(lo, hi int)
	done   *sync.WaitGroup
}

// newShardPool starts shards−1 workers (the event loop itself executes
// the last range, so shards=K uses exactly K goroutines during a phase).
func newShardPool(shards int) *shardPool {
	p := &shardPool{shards: shards, jobs: make([]chan shardJob, shards-1)}
	for i := range p.jobs {
		ch := make(chan shardJob)
		p.jobs[i] = ch
		go func() {
			for j := range ch {
				j.fn(j.lo, j.hi)
				j.done.Done()
			}
		}()
	}
	return p
}

// run executes fn over a contiguous partition of [0, n) and returns when
// every shard has finished — the phase barrier. A nil pool (shards=1)
// degenerates to the plain serial loop. Degenerate shards are fine: with
// n < shards some workers simply receive no range this phase (an empty
// shard), and n == 0 is a no-op.
func (p *shardPool) run(n int, fn func(lo, hi int)) {
	if p == nil || n <= 0 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	chunk := (n + p.shards - 1) / p.shards
	var wg sync.WaitGroup
	lo := 0
	for i := 0; i < len(p.jobs) && lo+chunk < n; i++ {
		wg.Add(1)
		p.jobs[i] <- shardJob{lo: lo, hi: lo + chunk, fn: fn, done: &wg}
		lo += chunk
	}
	fn(lo, n)
	wg.Wait()
}

// close stops the workers. The pool must be quiescent (no phase running).
func (p *shardPool) close() {
	if p == nil {
		return
	}
	for _, ch := range p.jobs {
		close(ch)
	}
}

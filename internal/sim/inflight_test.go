package sim

import (
	"testing"

	"sqlb/internal/allocator"
	"sqlb/internal/workload"
)

// emptyAllocator is a strategy that selects nobody — the legal outcome that
// used to leak an inflight entry with remaining=0.
type emptyAllocator struct{}

func (emptyAllocator) Name() string                      { return "empty" }
func (emptyAllocator) Allocate(*allocator.Request) []int { return nil }

func TestEmptySelectionCountsAsDrop(t *testing.T) {
	// Regression: an allocator returning an empty Selected set registered
	// an inflight entry no completion event ever deleted, so the query
	// counted as issued but never completed nor dropped.
	opts := smallOptions(emptyAllocator{}, 0.5, 200)
	eng, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res := eng.Run()
	if res.IssuedQueries == 0 {
		t.Fatal("no queries issued; test needs arrivals")
	}
	if res.CompletedQueries != 0 {
		t.Fatalf("completed = %d, want 0 (nobody selected)", res.CompletedQueries)
	}
	if res.DroppedQueries != res.IssuedQueries {
		t.Fatalf("dropped = %d, want %d (every empty selection is a drop)",
			res.DroppedQueries, res.IssuedQueries)
	}
	if res.InFlightAtEnd != 0 {
		t.Fatalf("in-flight at end = %d, want 0 (the leak)", res.InFlightAtEnd)
	}
}

// TestQueryAccountingInvariant pins the ledger on a normal run:
// Issued = Completed + Dropped + InFlightAtEnd.
func TestQueryAccountingInvariant(t *testing.T) {
	opts := smallOptions(allocator.NewSQLB(), 0.9, 300)
	opts.Workload = workload.Constant(0.9)
	eng, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res := eng.Run()
	got := res.CompletedQueries + res.DroppedQueries + uint64(res.InFlightAtEnd)
	if got != res.IssuedQueries {
		t.Fatalf("completed %d + dropped %d + inflight %d = %d, want issued %d",
			res.CompletedQueries, res.DroppedQueries, res.InFlightAtEnd, got, res.IssuedQueries)
	}
	if res.InFlightAtEnd == 0 && res.CompletedQueries == 0 {
		t.Fatal("degenerate run: nothing completed or in flight")
	}
}

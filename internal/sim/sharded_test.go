package sim

import (
	"bytes"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"sqlb/internal/allocator"
	"sqlb/internal/scenario"
	"sqlb/internal/timeline"
)

// shardCounts is the grid the determinism harness pins: the serial engine
// and three pool sizes, including one past the class count (degenerate
// shards) and, on most boxes, past NumCPU.
var shardCounts = []int{2, 4, 8}

// runSharded executes one run at the given shard count with a timeline CSV
// sink attached, returning the serialized Result and the raw CSV bytes —
// the two artifacts the byte-identity contract covers.
func runSharded(t *testing.T, shards int, mutate func(*Options)) (string, []byte) {
	t.Helper()
	opts := smallOptions(allocator.NewSQLB(), 0.8, 500)
	if mutate != nil {
		mutate(&opts)
	}
	opts.Shards = shards
	var buf bytes.Buffer
	opts.Timeline = timeline.NewCSVSink(&buf)
	eng, err := New(opts)
	if err != nil {
		t.Fatalf("New(shards=%d): %v", shards, err)
	}
	res := eng.Run()
	if err := eng.TimelineErr(); err != nil {
		t.Fatalf("shards=%d timeline: %v", shards, err)
	}
	if res.Err != nil {
		t.Fatalf("shards=%d Result.Err: %v", shards, res.Err)
	}
	return serializeResult(res), buf.Bytes()
}

// TestShardedDeterminism is the pin of the sharded engine's contract: the
// full Result — every sampled metric, the churn ledgers, the response-time
// quantiles — and the streamed timeline CSV are byte-identical for shards
// ∈ {1, 2, 4, 8} across the homogeneous paper setup, a heterogeneous
// capability workload, and every scenario preset. The table mirrors
// TestParallelLabDeterminism / TestScenarioDeterminism one level down: not
// "runs with the same seed agree" but "the shard count is invisible".
func TestShardedDeterminism(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Options)
	}{
		{"homogeneous", nil},
		{"heterogeneous", func(o *Options) {
			o.Config = o.Config.WithClasses(6)
			o.Config.CapabilitySelectivity = 0.34
			o.Config.ClassSkew = 1
			o.Autonomy = FullAutonomy()
		}},
	}
	for _, name := range scenario.Names() {
		preset, ok := scenario.Preset(name)
		if !ok {
			t.Fatalf("preset %q vanished", name)
		}
		cases = append(cases, struct {
			name   string
			mutate func(*Options)
		}{"scenario-" + name, func(o *Options) {
			o.Scenario = preset
			o.SampleInterval = o.Duration / 40
			o.Autonomy = FullAutonomy()
		}})
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			baseRes, baseCSV := runSharded(t, 1, tc.mutate)
			for _, shards := range shardCounts {
				gotRes, gotCSV := runSharded(t, shards, tc.mutate)
				if gotRes != baseRes {
					t.Fatalf("shards=%d Result differs from shards=1:\n%s\nvs\n%s",
						shards, gotRes, baseRes)
				}
				if !bytes.Equal(gotCSV, baseCSV) {
					t.Fatalf("shards=%d timeline CSV differs from shards=1 (%d vs %d bytes)",
						shards, len(gotCSV), len(baseCSV))
				}
			}
		})
	}
}

// TestShardedBarrierEdgeCases aims the byte-identity pin at the places a
// barrier implementation can silently drop or double-count: events landing
// exactly on an epoch edge (a churn wave sharing its timestamp with a
// sample, and a wave at exactly t = Duration), every shard going empty
// mid-run (a 100% outage), and more shards than query classes or even
// participants (degenerate shards).
func TestShardedBarrierEdgeCases(t *testing.T) {
	waveAt := func(times ...float64) *scenario.Scenario {
		scn := &scenario.Scenario{Name: "edge"}
		for i, tt := range times {
			kind := scenario.WaveOutage
			if i%2 == 1 {
				kind = scenario.WaveRejoin
			}
			scn.Waves = append(scn.Waves, scenario.Wave{Time: tt, Kind: kind, Fraction: 0.25})
		}
		return scn
	}
	cases := []struct {
		name   string
		shards []int
		mutate func(*Options)
	}{
		{"wave-on-sample-boundary", shardCounts, func(o *Options) {
			// Samples land every 25 s; the outage at t=250 and the rejoin at
			// t=375 both coincide with a sample instant, and the final wave
			// fires at exactly t = Duration.
			o.SampleInterval = 25
			o.Scenario = waveAt(250, 375, 500)
			o.Autonomy = FullAutonomy()
		}},
		{"all-shards-empty-mid-run", shardCounts, func(o *Options) {
			// A 100% outage drains every posting list: all queries drop until
			// the rejoin brings everyone back. Every shard's alive range is
			// empty in between.
			o.Scenario = &scenario.Scenario{Name: "blackout", Waves: []scenario.Wave{
				{Time: 100, Kind: scenario.WaveOutage, Fraction: 1},
				{Time: 300, Kind: scenario.WaveRejoin, Fraction: 1},
			}}
		}},
		{"more-shards-than-participants", []int{8, 16}, func(o *Options) {
			// 4 providers / 2 consumers with up to 16 shards: most shards
			// receive no range at all in every phase.
			o.Config = o.Config.Scale(0.01)
		}},
		{"more-shards-than-classes", []int{8}, func(o *Options) {
			// The paper's two query classes under eight shards.
			o.Autonomy = FullAutonomy()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			baseRes, baseCSV := runSharded(t, 1, tc.mutate)
			for _, shards := range tc.shards {
				gotRes, gotCSV := runSharded(t, shards, tc.mutate)
				if gotRes != baseRes {
					t.Fatalf("shards=%d Result differs from shards=1:\n%s\nvs\n%s",
						shards, gotRes, baseRes)
				}
				if !bytes.Equal(gotCSV, baseCSV) {
					t.Fatalf("shards=%d timeline CSV differs from shards=1", shards)
				}
			}
		})
	}
}

// TestShardedQueryAccountingInvariant extends the in-flight ledger pin
// (Issued = Completed + Dropped + InFlightAtEnd) to every shard count, on
// a hot run and on the empty-selection regression shape, so the barrier
// cannot leak or double-count a query at a phase edge.
func TestShardedQueryAccountingInvariant(t *testing.T) {
	for _, shards := range append([]int{1}, shardCounts...) {
		for _, strat := range []struct {
			name string
			a    allocator.Allocator
		}{{"sqlb", allocator.NewSQLB()}, {"empty-selection", emptyAllocator{}}} {
			opts := smallOptions(strat.a, 0.9, 300)
			opts.Shards = shards
			opts.Scenario = &scenario.Scenario{Name: "churn", Waves: []scenario.Wave{
				{Time: 100, Kind: scenario.WaveOutage, Fraction: 0.5},
				{Time: 200, Kind: scenario.WaveRejoin, Fraction: 1},
			}}
			eng, err := New(opts)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			res := eng.Run()
			got := res.CompletedQueries + res.DroppedQueries + uint64(res.InFlightAtEnd)
			if got != res.IssuedQueries {
				t.Fatalf("shards=%d %s: completed %d + dropped %d + inflight %d = %d, want issued %d",
					shards, strat.name, res.CompletedQueries, res.DroppedQueries,
					res.InFlightAtEnd, got, res.IssuedQueries)
			}
		}
	}
}

// TestShardedConservationInvariant runs the population-conservation
// invariant (alive = initial − departures + rejoins at every sample) at
// every shard count over the two churn-heaviest presets; the broader
// preset × autonomy grid lives in TestScenarioPopulationConservation,
// which covers the serial and a sharded engine.
func TestShardedConservationInvariant(t *testing.T) {
	for _, name := range []string{"outage-30pct", "staged-churn"} {
		for _, shards := range append([]int{1}, shardCounts...) {
			opts := scenarioOptions(name, allocator.NewSQLB(), 800)
			opts.Shards = shards
			opts.Autonomy = FullAutonomy()
			eng, err := New(opts)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			res := eng.Run()
			for i, s := range append(append([]Sample{}, res.Samples...), res.Final) {
				if got, want := s.AliveProviders, res.Providers-s.ProviderDepartureCount+s.ProviderJoinCount; got != want {
					t.Fatalf("%s shards=%d sample %d (t=%v): alive providers %d != %d − %d + %d",
						name, shards, i, s.Time, got, res.Providers,
						s.ProviderDepartureCount, s.ProviderJoinCount)
				}
				if got, want := s.AliveConsumers, res.Consumers-s.ConsumerDepartureCount; got != want {
					t.Fatalf("%s shards=%d sample %d (t=%v): alive consumers %d != %d − %d",
						name, shards, i, s.Time, got, res.Consumers, s.ConsumerDepartureCount)
				}
			}
		}
	}
}

// TestShardedStress drives the full concurrent surface in one run — a
// sharded engine at shards ≥ NumCPU, scenario churn, full autonomy, and a
// live timeline sink — in a loop, so `make race` sweeps the pool's
// fork/join edges. The conservation check keeps it an invariant test, not
// just a crash test.
func TestShardedStress(t *testing.T) {
	shards := runtime.NumCPU()
	if shards < 4 {
		shards = 4
	}
	for i := 0; i < 3; i++ {
		opts := scenarioOptions("staged-churn", allocator.NewSQLB(), 400)
		opts.Shards = shards
		opts.Autonomy = FullAutonomy()
		opts.Seed = 42 + uint64(i)
		opts.Timeline = timeline.NewCSVSink(io.Discard)
		eng, err := New(opts)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		res := eng.Run()
		if res.Err != nil {
			t.Fatalf("iteration %d: %v", i, res.Err)
		}
		if got, want := res.Final.AliveProviders, res.Providers-res.Final.ProviderDepartureCount+res.Final.ProviderJoinCount; got != want {
			t.Fatalf("iteration %d: conservation broken: %d != %d", i, got, want)
		}
	}
}

// TestShardPoolCoversRange: the pool must call fn over an exact partition
// of [0, n) — every index once, no overlaps, no gaps — and run serially
// for a nil pool. This is the structural half of byte-identity.
func TestShardPoolCoversRange(t *testing.T) {
	for _, shards := range []int{2, 3, 4, 8, 16} {
		pool := newShardPool(shards)
		for _, n := range []int{0, 1, 2, 3, 7, 8, 9, 100, 401} {
			hits := make([]int32, n)
			var calls atomic.Int32
			var mu sync.Mutex
			ranges := [][2]int{}
			pool.run(n, func(lo, hi int) {
				calls.Add(1)
				mu.Lock()
				ranges = append(ranges, [2]int{lo, hi})
				mu.Unlock()
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i := range hits {
				if hits[i] != 1 {
					t.Fatalf("shards=%d n=%d: index %d visited %d times (ranges %v)",
						shards, n, i, hits[i], ranges)
				}
			}
			if n > 0 && int(calls.Load()) > shards {
				t.Fatalf("shards=%d n=%d: %d range calls, want <= %d", shards, n, calls.Load(), shards)
			}
		}
		pool.close()
	}
	// Nil pool: the serial degenerate case used by shards=1.
	var nilPool *shardPool
	ran := false
	nilPool.run(5, func(lo, hi int) {
		if lo != 0 || hi != 5 {
			t.Fatalf("nil pool range [%d,%d), want [0,5)", lo, hi)
		}
		ran = true
	})
	if !ran {
		t.Fatal("nil pool did not run fn")
	}
	nilPool.run(0, func(lo, hi int) { t.Fatal("fn called for n=0") })
	nilPool.close()
}

// TestEffectiveShards pins the Shards resolution order: explicit positive
// values win, then the SQLB_SHARDS environment hook (ignored unless a
// positive integer), then the serial default.
func TestEffectiveShards(t *testing.T) {
	// Neutralize any ambient override (the CI matrix exports SQLB_SHARDS=4
	// for the whole suite); effectiveShards treats empty as unset.
	t.Setenv("SQLB_SHARDS", "")
	o := &Options{}
	if got := o.effectiveShards(); got != 1 {
		t.Fatalf("default shards = %d, want 1", got)
	}
	t.Setenv("SQLB_SHARDS", "4")
	if got := o.effectiveShards(); got != 4 {
		t.Fatalf("SQLB_SHARDS=4 shards = %d, want 4", got)
	}
	o.Shards = 2
	if got := o.effectiveShards(); got != 2 {
		t.Fatalf("explicit shards = %d, want 2 (explicit wins over env)", got)
	}
	o.Shards = 0
	for _, bad := range []string{"0", "-3", "many"} {
		t.Setenv("SQLB_SHARDS", bad)
		if got := o.effectiveShards(); got != 1 {
			t.Fatalf("SQLB_SHARDS=%q shards = %d, want the serial fallback", bad, got)
		}
	}

	// The resolved count is visible on the engine, and the env default
	// produces the same bytes as the serial engine (spot check).
	t.Setenv("SQLB_SHARDS", "3")
	opts := smallOptions(allocator.NewSQLB(), 0.6, 120)
	eng, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if eng.Shards() != 3 {
		t.Fatalf("engine shards = %d, want 3 from env", eng.Shards())
	}
	envRes := serializeResult(eng.Run())
	t.Setenv("SQLB_SHARDS", "")
	serial, err := New(smallOptions(allocator.NewSQLB(), 0.6, 120))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := serializeResult(serial.Run()); got != envRes {
		t.Fatal("SQLB_SHARDS=3 run differs from the serial engine")
	}
}

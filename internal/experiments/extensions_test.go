package experiments

import (
	"strings"
	"testing"
)

func TestExtensionRegistry(t *testing.T) {
	for _, id := range []string{"ext-omega", "ext-upsilon", "ext-methods"} {
		if _, ok := FindAny(id); !ok {
			t.Errorf("FindAny(%q) failed", id)
		}
		if _, ok := Find(id); ok {
			t.Errorf("extension %q leaked into the paper registry", id)
		}
	}
	// Paper IDs resolve through FindAny too.
	if _, ok := FindAny("fig4a"); !ok {
		t.Error("FindAny should cover the paper registry")
	}
	if _, ok := FindAny("bogus"); ok {
		t.Error("FindAny accepted an unknown ID")
	}
}

func TestRunAnyUnknown(t *testing.T) {
	if _, err := tinyLab().RunAny("bogus"); err == nil {
		t.Fatal("expected error")
	}
}

func TestExtOmegaTable(t *testing.T) {
	res, err := tinyLab().RunAny("ext-omega")
	if err != nil {
		t.Fatalf("ext-omega: %v", err)
	}
	tbl := res.Tables[0]
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 variants", len(tbl.Rows))
	}
	if tbl.Rows[0][0] != "adaptive (Eq 6)" {
		t.Errorf("first variant = %q", tbl.Rows[0][0])
	}
	for _, r := range tbl.Rows {
		if len(r) != 7 {
			t.Fatalf("row width = %d, want 7", len(r))
		}
		if !strings.HasSuffix(r[1], "%") {
			t.Errorf("departures cell %q should be a percentage", r[1])
		}
	}
}

func TestExtMethodsTable(t *testing.T) {
	res, err := tinyLab().RunAny("ext-methods")
	if err != nil {
		t.Fatalf("ext-methods: %v", err)
	}
	if len(res.Tables[0].Rows) != 4 {
		t.Fatalf("rows = %d, want 4 strategies", len(res.Tables[0].Rows))
	}
}

func TestExtUpsilonTable(t *testing.T) {
	res, err := tinyLab().RunAny("ext-upsilon")
	if err != nil {
		t.Fatalf("ext-upsilon: %v", err)
	}
	if len(res.Tables[0].Rows) != 3 {
		t.Fatalf("rows = %d, want 3 υ settings", len(res.Tables[0].Rows))
	}
}

package experiments

import (
	"fmt"

	"sqlb/internal/core"
	"sqlb/internal/intention"
	"sqlb/internal/stats"
)

// runFig2 reproduces Figure 2: the raw provider-intention surface pip(q)
// over (preference, utilization) at δs = 0.5, ε = 1. The CSV is a long-form
// grid suitable for any surface plotter.
func runFig2(l *Lab) (*Result, error) {
	tbl := &stats.Table{
		ID:     "fig2",
		Title:  "Provider intention pip(q) at δs = 0.5 (Definition 8, raw values)",
		Header: []string{"preference", "utilization", "intention"},
	}
	for p := -1.0; p <= 1.0001; p += 0.1 {
		for u := 0.0; u <= 2.0001; u += 0.1 {
			v := intention.Provider(round1(p), round1(u), 0.5, 1)
			tbl.AddRow(fmt.Sprintf("%.1f", round1(p)), fmt.Sprintf("%.1f", round1(u)), fmt.Sprintf("%.4f", v))
		}
	}
	return &Result{
		ID:     "fig2",
		Title:  tbl.Title,
		Tables: []*stats.Table{tbl},
		Notes: []string{
			"positive intentions appear only in the quadrant preference > 0 ∧ utilization < 1",
			"the surface bottoms out near -3 (the paper's plot shows the -2.5 contour)",
		},
	}, nil
}

// runFig3 reproduces Figure 3: the ω surface (Equation 6) over the
// consumer's and the provider's satisfaction.
func runFig3(l *Lab) (*Result, error) {
	tbl := &stats.Table{
		ID:     "fig3",
		Title:  "ω over (consumer satisfaction, provider satisfaction) (Equation 6)",
		Header: []string{"consumer_sat", "provider_sat", "omega"},
	}
	for cs := 0.0; cs <= 1.0001; cs += 0.1 {
		for ps := 0.0; ps <= 1.0001; ps += 0.1 {
			tbl.AddRow(fmt.Sprintf("%.1f", round1(cs)), fmt.Sprintf("%.1f", round1(ps)),
				fmt.Sprintf("%.4f", core.Omega(round1(cs), round1(ps))))
		}
	}
	return &Result{
		ID:     "fig3",
		Title:  tbl.Title,
		Tables: []*stats.Table{tbl},
		Notes:  []string{"ω = ((δs(c) − δs(p)) + 1)/2: the less-satisfied side gets the weight"},
	}, nil
}

// runTable1 reproduces the Table 1 motivating scenario: eWine's query with
// five candidate providers, binary intentions, q.n = 2. It scores the
// providers per Definition 9 (ω = 0.5: both satisfactions start at the
// initial 0.5) and reports the SQLB decision alongside what the baselines
// would pick.
func runTable1(l *Lab) (*Result, error) {
	// Table 1 of the paper: provider intention, consumer intention,
	// available capacity.
	names := []string{"p1", "p2", "p3", "p4", "p5"}
	pi := []float64{1, -1, 1, -1, 1}
	ci := []float64{-1, 1, -1, 1, 1}
	avail := []float64{0.85, 0.57, 0.22, 0.15, 0}

	omegas := []float64{0.5, 0.5, 0.5, 0.5, 0.5}
	ranking := core.Rank(pi, ci, omegas, 1)
	selected := core.Select(2, ranking)
	isSel := map[int]bool{}
	for _, idx := range selected {
		isSel[idx] = true
	}
	rankOf := make([]int, len(names))
	for pos, r := range ranking {
		rankOf[r.Index] = pos + 1
	}

	tbl := &stats.Table{
		ID:     "table1",
		Title:  "Providers for eWine's query (q.n = 2, ω = 0.5)",
		Header: []string{"provider", "prov_intention", "cons_intention", "avail_capacity", "score", "rank", "selected"},
	}
	var score []float64
	for i := range names {
		score = append(score, core.Score(pi[i], ci[i], 0.5, 1))
	}
	for i, n := range names {
		sel := ""
		if isSel[i] {
			sel = "yes"
		}
		tbl.AddRow(n,
			fmt.Sprintf("%.0f", pi[i]),
			fmt.Sprintf("%.0f", ci[i]),
			fmt.Sprintf("%.2f", avail[i]),
			fmt.Sprintf("%.3f", score[i]),
			fmt.Sprintf("%d", rankOf[i]),
			sel)
	}

	// The paper's discussion: capacity-based would pick p1 and p2 (highest
	// available capacity) even though p2 does not want the query and eWine
	// does not trust p1; the only mutually satisfactory option is p5.
	best := names[ranking[0].Index]
	notes := []string{
		fmt.Sprintf("SQLB ranks %s first: the only provider both sides want", best),
		"Capacity based would select p1 and p2 (highest available capacity), ignoring both sides' intentions",
		"a pure consumer-side choice (ω = 0) would pick p2/p4, which do not intend to perform the query",
	}
	return &Result{ID: "table1", Title: tbl.Title, Tables: []*stats.Table{tbl}, Notes: notes}, nil
}

func round1(v float64) float64 {
	return float64(int(v*10+0.5*sign(v))) / 10
}

func sign(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}

package experiments

import (
	"strings"
	"sync"
	"testing"

	"sqlb/internal/timeline"
)

// timelineCapture hands the Lab one CSV sink per run and keeps the
// finished streams keyed by runID. Runs execute on Lab workers
// concurrently, so the map is locked; each individual sink is only ever
// used by its own run.
type timelineCapture struct {
	mu   sync.Mutex
	bufs map[string]*strings.Builder
}

func newTimelineCapture() *timelineCapture {
	return &timelineCapture{bufs: map[string]*strings.Builder{}}
}

func (c *timelineCapture) factory(runID string) timeline.Sink {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.bufs[runID]; dup {
		return nil // duplicate runID would interleave two streams
	}
	var sb strings.Builder
	c.bufs[runID] = &sb
	return timeline.NewCSVSink(&sb)
}

func (c *timelineCapture) streams() map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]string, len(c.bufs))
	for id, sb := range c.bufs {
		out[id] = sb.String()
	}
	return out
}

// TestTimelineLabDeterminism is the acceptance gate for wiring the
// timeline through the Lab: with per-run sinks attached, the experiment
// CSVs must stay byte-identical between Workers=1 and Workers=8, and the
// recorded timeline streams themselves must be byte-identical too (each
// run's stream depends only on its seed, never on scheduling).
func TestTimelineLabDeterminism(t *testing.T) {
	run := func(workers int) (map[string]string, map[string]string) {
		cap := newTimelineCapture()
		lab := NewLab(Config{
			Scale:          0.05,
			Duration:       300,
			SweepDuration:  400,
			Repeats:        2,
			BaseSeed:       19,
			SampleInterval: 50,
			Workloads:      []float64{0.4, 0.8},
			Workers:        workers,
			Timeline:       cap.factory,
		})
		artifacts := map[string]string{}
		for _, id := range []string{"fig4a", "fig4i"} {
			res, err := lab.RunAny(id)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			for _, ch := range res.Charts {
				artifacts[ch.ID] = ch.CSV()
			}
			for _, tbl := range res.Tables {
				artifacts[tbl.ID] = tbl.CSV()
			}
		}
		return artifacts, cap.streams()
	}

	serialArt, serialTL := run(1)
	parallelArt, parallelTL := run(8)

	if len(serialArt) != len(parallelArt) {
		t.Fatalf("artifact counts differ: %d vs %d", len(serialArt), len(parallelArt))
	}
	for id, csv := range serialArt {
		if parallelArt[id] != csv {
			t.Errorf("%s: Workers=8 CSV differs from Workers=1 with timeline enabled", id)
		}
	}

	if len(serialTL) == 0 {
		t.Fatal("no timeline streams were recorded")
	}
	if len(serialTL) != len(parallelTL) {
		t.Fatalf("timeline stream counts differ: %d vs %d", len(serialTL), len(parallelTL))
	}
	for id, stream := range serialTL {
		other, ok := parallelTL[id]
		if !ok {
			t.Errorf("run %q missing from the Workers=8 recording", id)
			continue
		}
		if other != stream {
			t.Errorf("run %q: timeline stream differs between worker counts", id)
		}
		rows, err := timeline.ReadCSV(strings.NewReader(stream))
		if err != nil {
			t.Errorf("run %q: stream does not parse back: %v", id, err)
		} else if len(rows) == 0 {
			t.Errorf("run %q: stream is empty", id)
		}
	}

	// The ramp bundle runs 3 methods × 2 reps; the sweep adds
	// kind/method/workload/rep streams on top. Spot-check the naming scheme
	// both CLIs and docs advertise.
	for _, want := range []string{"ramp/SQLB/rep0", "ramp/Capacity based/rep1", "captive/SQLB/w40/rep0"} {
		if _, ok := serialTL[want]; !ok {
			t.Errorf("expected a %q stream; have %v", want, keysOf(serialTL))
		}
	}
}

func keysOf(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

package experiments

import (
	"fmt"

	"sqlb/internal/model"
	"sqlb/internal/sim"
	"sqlb/internal/stats"
)

// table3Workload is the workload the paper analyses departure reasons at.
const table3Workload = 0.8

// runTable3 reproduces Table 3: providers' reasons to leave at 80% of the
// total system capacity, broken down per reason (dissatisfaction,
// starvation, overutilization) and per provider class along the three
// dimensions (consumers' interest, adaptation ["Providers' Adequation"],
// capacity). Cells are the percentage of the providers of that class level
// that left for that reason; the total column is the percentage of all
// providers. Values average the repeated runs and reuse the Figure 5(b)
// full-autonomy sweep when 80% is part of it.
func runTable3(l *Lab) (*Result, error) {
	tbl := &stats.Table{
		ID:     "table3",
		Title:  "Provider departure reasons at 80% workload (% of providers)",
		Header: []string{"method", "reason", "dimension", "low", "med", "high", "total"},
	}

	l.warmSweep(sweepFullAutonomy, methods(), []float64{table3Workload})

	// Class totals differ per run (each run draws its own population), so
	// breakdowns are computed per run against its own totals, then
	// averaged across the repeats.
	for _, m := range methods() {
		rs, err := l.sweepResults(sweepFullAutonomy, m, table3Workload)
		if err != nil {
			return nil, err
		}
		type agg struct {
			perClass [3]float64
			total    float64
		}
		sums := map[model.DepartureReason]map[sim.ClassDimension]*agg{}
		for _, reason := range model.DepartureReasons {
			sums[reason] = map[sim.ClassDimension]*agg{}
			for _, dim := range sim.ClassDimensions {
				sums[reason][dim] = &agg{}
			}
		}
		for _, run := range rs {
			for _, dim := range sim.ClassDimensions {
				bd := run.Res.Breakdown(dim, run.Totals[dim])
				for _, reason := range model.DepartureReasons {
					a := sums[reason][dim]
					pc := bd.PerClass[reason]
					for lvl := 0; lvl < 3; lvl++ {
						a.perClass[lvl] += pc[lvl]
					}
					a.total += bd.Total[reason]
				}
			}
		}
		n := float64(len(rs))
		for _, reason := range model.DepartureReasons {
			for _, dim := range sim.ClassDimensions {
				a := sums[reason][dim]
				tbl.AddRow(m.Name(), reason.String(), dim.String(),
					fmt.Sprintf("%.0f%%", a.perClass[model.Low]/n),
					fmt.Sprintf("%.0f%%", a.perClass[model.Medium]/n),
					fmt.Sprintf("%.0f%%", a.perClass[model.High]/n),
					fmt.Sprintf("%.0f%%", a.total/n),
				)
			}
		}
	}
	return &Result{
		ID:     "table3",
		Title:  tbl.Title,
		Tables: []*stats.Table{tbl},
		Notes: []string{
			"expected shape: Capacity based dominated by dissatisfaction (med/high adaptation classes),",
			"Mariposa-like by overutilization (high classes), SQLB small and concentrated on low classes",
		},
	}, nil
}

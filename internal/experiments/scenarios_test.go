package experiments

import (
	"strings"
	"testing"

	"sqlb/internal/scenario"
)

// scenarioSnapshot runs the ext-scenarios sweep on two churn presets and
// returns its CSV artifacts keyed by ID.
func scenarioSnapshot(t *testing.T, workers int) map[string]string {
	t.Helper()
	lab := NewLab(Config{
		Scale:         0.05,
		Duration:      300,
		SweepDuration: 600,
		Repeats:       2,
		BaseSeed:      17,
		Workers:       workers,
		Scenarios:     []string{"flash-crowd", "staged-churn"},
	})
	res, err := lab.RunAny("ext-scenarios")
	if err != nil {
		t.Fatalf("ext-scenarios: %v", err)
	}
	out := map[string]string{}
	for _, c := range res.Charts {
		out[c.ID] = c.CSV()
	}
	for _, tbl := range res.Tables {
		out[tbl.ID] = tbl.CSV()
	}
	return out
}

// TestScenarioSweepDeterminism extends the Lab's Workers-independence
// contract (TestParallelLabDeterminism) to the scenario sweep: with churn
// waves firing mid-run, Workers=1 and Workers=8 must still emit
// byte-identical artifacts — the scheduled-churn paths may not introduce
// any run-order sensitivity.
func TestScenarioSweepDeterminism(t *testing.T) {
	serial := scenarioSnapshot(t, 1)
	parallel := scenarioSnapshot(t, 8)
	if len(serial) != len(parallel) {
		t.Fatalf("artifact counts differ: %d serial vs %d parallel", len(serial), len(parallel))
	}
	for id, csv := range serial {
		if parallel[id] != csv {
			t.Errorf("%s: Workers=8 CSV differs from Workers=1 under scenario churn", id)
		}
	}
}

// TestScenarioSweepShape: one table row per (scenario, method), one chart
// per scenario, and the churn columns carry the scheduled events — the
// staged-churn preset must report rejoins, flash-crowd none.
func TestScenarioSweepShape(t *testing.T) {
	artifacts := scenarioSnapshot(t, 0)
	tbl, ok := artifacts["ext-scenarios"]
	if !ok {
		t.Fatal("ext-scenarios table missing")
	}
	lines := strings.Split(strings.TrimSpace(tbl), "\n")
	if got, want := len(lines), 1+2*3; got != want {
		t.Fatalf("table lines = %d, want %d (header + 2 scenarios × 3 methods)", got, want)
	}
	for _, name := range []string{"flash-crowd", "staged-churn"} {
		if _, ok := artifacts["ext-scenario-"+name+"-resp"]; !ok {
			t.Errorf("missing response chart for %q", name)
		}
	}
	var sawRejoins bool
	for _, line := range lines[1:] {
		fields := strings.Split(line, ",")
		rejoins := fields[len(fields)-1]
		if strings.HasPrefix(line, "staged-churn") && rejoins != "0.0" {
			sawRejoins = true
		}
		if strings.HasPrefix(line, "flash-crowd") && rejoins != "0.0" {
			t.Errorf("flash-crowd reports rejoins (%s) but schedules no waves", rejoins)
		}
	}
	if !sawRejoins {
		t.Error("staged-churn reports no rejoins; its rejoin wave should fire")
	}
}

// TestScenarioSweepDefaultsToAllPresets: with no Scenarios configured, the
// sweep covers the whole preset library.
func TestScenarioSweepDefaultsToAllPresets(t *testing.T) {
	lab := NewLab(Config{
		Scale:         0.05,
		SweepDuration: 200,
		Repeats:       1,
		BaseSeed:      5,
	})
	res, err := lab.RunAny("ext-scenarios")
	if err != nil {
		t.Fatalf("ext-scenarios: %v", err)
	}
	if got, want := len(res.Charts), len(scenario.Names()); got != want {
		t.Fatalf("charts = %d, want one per preset (%d)", got, want)
	}
	if got, want := len(res.Tables[0].Rows), len(scenario.Names())*3; got != want {
		t.Fatalf("rows = %d, want %d (presets × methods)", got, want)
	}
	if _, err := NewLab(Config{Scenarios: []string{"no-such"}}).RunAny("ext-scenarios"); err == nil {
		t.Fatal("unknown scenario name accepted")
	}
}

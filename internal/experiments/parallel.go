package experiments

import (
	"sync"

	"sqlb/internal/allocator"
)

// fanOut runs fn(0) … fn(n-1) concurrently, each holding one slot of the
// lab's worker budget while it runs, and returns the lowest-index error.
// Callers write results into index-addressed slots, so the outcome is
// independent of scheduling order — the property the determinism tests
// pin down. Only leaf work (a single simulation run) holds a slot; the
// goroutines that fan bundles out never do, so nested fan-outs (sweep
// points over repetitions) cannot deadlock the budget.
func (l *Lab) fanOut(n int, fn func(i int) error) error {
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.sem <- struct{}{}
			defer func() { <-l.sem }()
			errs[i] = fn(i)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// warmSweep fires every (method, workload) sweep bundle of a chart
// concurrently so their repetitions interleave across the worker budget,
// instead of draining one bundle before the next starts. Errors are left
// in the memo cells; the serial assembly pass that follows surfaces them
// in deterministic order.
func (l *Lab) warmSweep(kind sweepKind, ms []allocator.Allocator, fracs []float64) {
	var wg sync.WaitGroup
	for _, m := range ms {
		for _, frac := range fracs {
			wg.Add(1)
			go func() {
				defer wg.Done()
				l.sweepResults(kind, m, frac) //nolint:errcheck // memoized; re-surfaced by assembly
			}()
		}
	}
	wg.Wait()
}

// warmRamps fires every method's Figure 4 ramp bundle concurrently.
func (l *Lab) warmRamps(ms []allocator.Allocator) {
	var wg sync.WaitGroup
	for _, m := range ms {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.rampResults(m) //nolint:errcheck // memoized; re-surfaced by assembly
		}()
	}
	wg.Wait()
}

package experiments

import (
	"fmt"

	"sqlb/internal/sim"
	"sqlb/internal/stats"
	"sqlb/internal/workload"
)

// selectivityClasses is the class count of the capability sweep: enough
// classes that low selectivities produce genuine specialists (at the
// default 8, a selectivity of 0.1 means each specialist advertises a
// single class).
const selectivityClasses = 8

// selectivityWorkload is the constant workload of the sweep — the Table 3
// reference point (80% of total capacity).
const selectivityWorkload = 0.8

// runExtSelectivity sweeps the capability selectivity — the axis the
// indexed matchmaker opens beyond the paper's homogeneous setup: at each
// selectivity s, providers advertise max(1, round(s·classes)) query
// classes, so the matchmade candidate set |Pq| shrinks to ≈ s·|P| and
// some queries find an empty posting list. The charts show, per
// allocation method, the mean response time and the dropped-query share
// over selectivity; the table adds the effective classes-advertised count
// per point (distinct selectivities can round to the same count — the
// default sweep uses exact multiples of 1/8 so they never do). The lab's
// Classes and ClassSkew overrides are honored; without them the sweep
// uses 8 classes and Zipf-1 popularity.
func runExtSelectivity(l *Lab) (*Result, error) {
	sels := append([]float64(nil), l.cfg.Selectivities...)
	ms := methods()
	reps := l.cfg.Repeats

	base := l.modelConfig()
	if l.cfg.Classes <= 1 {
		base = base.WithClasses(selectivityClasses)
	}
	if l.cfg.ClassSkew <= 0 {
		base.ClassSkew = 1
	}
	nClasses := len(base.QueryClasses)

	// (method, selectivity, repetition) grid, fanned out over the worker
	// budget and collected into index-addressed slots — deterministic at
	// any Workers value, like every other Lab bundle.
	results := make([]*sim.Result, len(ms)*len(sels)*reps)
	err := l.fanOut(len(results), func(i int) error {
		m := ms[i/(len(sels)*reps)]
		sel := sels[(i/reps)%len(sels)]
		rep := i % reps
		cfg := base
		cfg.CapabilitySelectivity = sel
		opts := sim.Options{
			Config:   cfg,
			Strategy: m,
			Workload: workload.Constant(selectivityWorkload),
			Duration: l.cfg.SweepDuration,
			// Quantize at 1e-6 so custom -selectivities closer than a
			// percent still get distinct RNG streams.
			Seed:   l.seedFor("selectivity", m.Name(), int(sel*1e6+0.5), rep),
			Shards: l.cfg.Shards,
		}
		eng, err := sim.New(opts)
		if err != nil {
			return err
		}
		results[i] = eng.Run()
		return nil
	})
	if err != nil {
		return nil, err
	}

	respChart := &stats.Chart{
		ID: "ext-selectivity-resp", Title: "Response time vs capability selectivity (80% workload)",
		XLabel: "selectivity (% of query classes advertised)", YLabel: "response time (seconds)",
	}
	dropChart := &stats.Chart{
		ID: "ext-selectivity-drops", Title: "Dropped queries vs capability selectivity (80% workload)",
		XLabel: "selectivity (% of query classes advertised)", YLabel: "dropped (% of issued queries)",
	}
	tbl := &stats.Table{
		ID: "ext-selectivity",
		Title: fmt.Sprintf("Capability-selectivity sweep, %d classes, Zipf-%g popularity, 80%% workload",
			nClasses, base.ClassSkew),
		Header: []string{
			"method", "selectivity_pct", "classes_advertised", "dropped_pct", "resp_mean_s",
			"resp_p95_s", "util_fairness", "prov_sat_pref",
		},
	}
	for mi, m := range ms {
		resp := stats.Series{Name: m.Name()}
		drop := stats.Series{Name: m.Name()}
		for si, sel := range sels {
			var respSum, p95Sum, dropSum, utilF, psp float64
			for rep := 0; rep < reps; rep++ {
				r := results[mi*len(sels)*reps+si*reps+rep]
				if r.Err != nil {
					return nil, fmt.Errorf("selectivity %v rep %d: %w", sel, rep, r.Err)
				}
				respSum += r.MeanResponseTime
				p95Sum += r.ResponseHistogram.Quantile(0.95)
				if r.IssuedQueries > 0 {
					dropSum += 100 * float64(r.DroppedQueries) / float64(r.IssuedQueries)
				}
				utilF += r.Final.Utilization.Fairness
				psp += r.Final.ProvSatPreference.Mean
			}
			n := float64(reps)
			resp.Add(sel*100, respSum/n)
			drop.Add(sel*100, dropSum/n)
			pointCfg := base
			pointCfg.CapabilitySelectivity = sel
			tbl.AddRow(m.Name(),
				fmt.Sprintf("%.0f%%", sel*100),
				fmt.Sprintf("%d/%d", pointCfg.CapabilityCount(), nClasses),
				fmt.Sprintf("%.2f%%", dropSum/n),
				fmt.Sprintf("%.2f", respSum/n),
				fmt.Sprintf("%.2f", p95Sum/n),
				fmt.Sprintf("%.3f", utilF/n),
				fmt.Sprintf("%.3f", psp/n),
			)
		}
		respChart.AddSeries(resp)
		dropChart.AddSeries(drop)
	}
	return &Result{
		ID:     "ext-selectivity",
		Title:  "Capability-selectivity sweep (heterogeneous matchmaking)",
		Charts: []*stats.Chart{respChart, dropChart},
		Tables: []*stats.Table{tbl},
		Notes: []string{
			"|Pq| ≈ selectivity × |P|: the indexed matchmaker touches only the candidate subset per query",
			"drops are queries whose class no alive provider advertises (empty posting list)",
		},
	}, nil
}

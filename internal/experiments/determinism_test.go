package experiments

import (
	"testing"
)

// TestExperimentDeterminism: two labs with identical configurations emit
// byte-identical CSV artifacts — the property that makes recorded results
// (EXPERIMENTS.md) reproducible by anyone.
func TestExperimentDeterminism(t *testing.T) {
	run := func() map[string]string {
		lab := tinyLab()
		out := map[string]string{}
		for _, id := range []string{"fig4a", "fig4g", "fig4i", "fig5c", "table3"} {
			res, err := lab.Run(id)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			for _, c := range res.Charts {
				out[c.ID] = c.CSV()
			}
			for _, tbl := range res.Tables {
				out[tbl.ID] = tbl.CSV()
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("artifact counts differ: %d vs %d", len(a), len(b))
	}
	for id, csv := range a {
		if b[id] != csv {
			t.Errorf("%s: CSV differs between identical labs", id)
		}
	}
}

// TestExperimentSeedSensitivity: a different base seed must actually change
// the simulated artifacts (guards against a seed that is silently ignored).
func TestExperimentSeedSensitivity(t *testing.T) {
	mk := func(seed uint64) string {
		cfg := tinyLab().Config()
		cfg.BaseSeed = seed
		lab := NewLab(cfg)
		res, err := lab.Run("fig4i")
		if err != nil {
			t.Fatalf("fig4i: %v", err)
		}
		return res.Charts[0].CSV()
	}
	if mk(11) == mk(12) {
		t.Error("different seeds produced identical sweep results")
	}
}

// TestLabConfigEcho verifies defaults are visible through the accessor.
func TestLabConfigEcho(t *testing.T) {
	lab := NewLab(Config{})
	cfg := lab.Config()
	if cfg.Scale != 0.25 || cfg.Repeats != 2 {
		t.Errorf("accessor did not echo defaults: %+v", cfg)
	}
}

package experiments

import (
	"fmt"

	"sqlb/internal/sim"
	"sqlb/internal/stats"
)

// fig4Panel describes one Figure 4 time-series panel: which sample field it
// plots and how the axis is labelled.
type fig4Panel struct {
	title   string
	ylabel  string
	extract func(sim.Sample) float64
}

var fig4Panels = map[string]fig4Panel{
	"fig4a": {
		title:   "Providers' satisfaction mean based on intentions, µ(δs,P)",
		ylabel:  "satisfaction mean",
		extract: func(s sim.Sample) float64 { return s.ProvSatIntention.Mean },
	},
	"fig4b": {
		title:   "Providers' satisfaction mean based on preferences, µ(δs,P)",
		ylabel:  "satisfaction mean",
		extract: func(s sim.Sample) float64 { return s.ProvSatPreference.Mean },
	},
	"fig4c": {
		title:   "Providers' allocation satisfaction mean based on preferences, µ(δas,P)",
		ylabel:  "allocation satisfaction mean",
		extract: func(s sim.Sample) float64 { return s.ProvAllocSatPreference.Mean },
	},
	"fig4d": {
		title:   "Provider satisfaction fairness, f(δs,P)",
		ylabel:  "satisfaction fairness",
		extract: func(s sim.Sample) float64 { return s.ProvSatIntention.Fairness },
	},
	"fig4e": {
		title:   "Consumers' allocation satisfaction mean, µ(δas,C)",
		ylabel:  "allocation satisfaction mean",
		extract: func(s sim.Sample) float64 { return s.ConsAllocSat.Mean },
	},
	"fig4f": {
		title:   "Consumer satisfaction fairness, f(δs,C)",
		ylabel:  "satisfaction fairness",
		extract: func(s sim.Sample) float64 { return s.ConsSat.Fairness },
	},
	"fig4g": {
		title:   "Query load mean, µ(Ut,P)",
		ylabel:  "utilization mean",
		extract: func(s sim.Sample) float64 { return s.Utilization.Mean },
	},
	"fig4h": {
		title:   "Query load fairness, f(Ut,P)",
		ylabel:  "utilization fairness",
		extract: func(s sim.Sample) float64 { return s.Utilization.Fairness },
	},
}

// figure4 returns the runner for one Figure 4 panel. All panels share the
// same memoized ramp runs (workload 30% → 100%, captive participants).
func figure4(id string) func(*Lab) (*Result, error) {
	return func(l *Lab) (*Result, error) {
		panel, ok := fig4Panels[id]
		if !ok {
			return nil, fmt.Errorf("unknown figure 4 panel %q", id)
		}
		chart := &stats.Chart{
			ID:     id,
			Title:  panel.title,
			XLabel: "time (seconds)",
			YLabel: panel.ylabel,
		}
		l.warmRamps(methods())
		for _, m := range methods() {
			rs, err := l.rampResults(m)
			if err != nil {
				return nil, err
			}
			runs := make([][]stats.Point, 0, len(rs))
			for _, r := range rs {
				pts := make([]stats.Point, 0, len(r.Samples))
				for _, s := range r.Samples {
					pts = append(pts, stats.Point{X: s.Time, Y: panel.extract(s)})
				}
				runs = append(runs, pts)
			}
			chart.AddSeries(stats.MergeMeans(m.Name(), runs))
		}
		return &Result{
			ID:     id,
			Title:  panel.title,
			Charts: []*stats.Chart{chart},
			Notes: []string{
				"workload ramps uniformly from 30% to 100% of the total system capacity (Section 6.3.1)",
				"participants are captive (departures disabled)",
			},
		}, nil
	}
}

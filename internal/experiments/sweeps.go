package experiments

import "sqlb/internal/sim"

// runFig4i reproduces Figure 4(i): ensured response times with captive
// participants across workloads.
func runFig4i(l *Lab) (*Result, error) {
	r, err := l.sweepChart("fig4i", "Response times, captive participants",
		"response time (seconds)", sweepCaptive,
		func(r *sim.Result) float64 { return r.MeanResponseTime })
	if err != nil {
		return nil, err
	}
	r.Notes = append(r.Notes,
		"expected shape: Capacity based < SQLB (≈1.4×) < Mariposa-like (≈3×)")
	return r, nil
}

// runFig5a reproduces Figure 5(a): response times when providers may leave
// by dissatisfaction or starvation (consumers by dissatisfaction).
func runFig5a(l *Lab) (*Result, error) {
	r, err := l.sweepChart("fig5a", "Response times, departures by dissatisfaction or starvation",
		"response time (seconds)", sweepDissatStarve,
		func(r *sim.Result) float64 { return r.MeanResponseTime })
	if err != nil {
		return nil, err
	}
	r.Notes = append(r.Notes,
		"expected shape: SQLB best at every workload; Capacity based beats Mariposa-like")
	return r, nil
}

// runFig5b reproduces Figure 5(b): response times under full autonomy
// (dissatisfaction, starvation, or overutilization).
func runFig5b(l *Lab) (*Result, error) {
	r, err := l.sweepChart("fig5b", "Response times, full autonomy",
		"response time (seconds)", sweepFullAutonomy,
		func(r *sim.Result) float64 { return r.MeanResponseTime })
	if err != nil {
		return nil, err
	}
	r.Notes = append(r.Notes,
		"expected shape: Capacity based collapses (≈3.5× degradation); SQLB and Mariposa-like degrade ≈1.4×")
	return r, nil
}

// runFig5c reproduces Figure 5(c): the percentage of provider departures
// under full autonomy.
func runFig5c(l *Lab) (*Result, error) {
	r, err := l.sweepChart("fig5c", "Provider departures, full autonomy",
		"departures (% of providers)", sweepFullAutonomy,
		func(r *sim.Result) float64 { return 100 * r.ProviderDepartureRate() })
	if err != nil {
		return nil, err
	}
	r.Notes = append(r.Notes,
		"expected shape: baselines lose almost all providers; SQLB ≈28% on average")
	return r, nil
}

// runFig6 reproduces Figure 6: the percentage of consumer departures by
// dissatisfaction under full autonomy.
func runFig6(l *Lab) (*Result, error) {
	r, err := l.sweepChart("fig6", "Consumer departures by dissatisfaction",
		"departures (% of consumers)", sweepFullAutonomy,
		func(r *sim.Result) float64 { return 100 * r.ConsumerDepartureRate() })
	if err != nil {
		return nil, err
	}
	r.Notes = append(r.Notes,
		"expected shape: SQLB loses no consumers; baselines lose >20%")
	return r, nil
}

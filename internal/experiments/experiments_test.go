package experiments

import (
	"strings"
	"testing"
)

// tinyLab is a fast configuration for structural tests: 10 consumers /
// 20 providers, short horizons, one repetition, two workloads.
func tinyLab() *Lab {
	return NewLab(Config{
		Scale:          0.05,
		Duration:       400,
		SweepDuration:  700,
		Repeats:        1,
		BaseSeed:       11,
		SampleInterval: 50,
		Workloads:      []float64{0.4, 0.8},
	})
}

func TestConfigDefaults(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Scale != 0.25 || cfg.Repeats != 2 || len(cfg.Workloads) != 5 {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
	if cfg.SampleInterval != cfg.Duration/50 {
		t.Errorf("sample interval = %v, want Duration/50", cfg.SampleInterval)
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "fig2", "fig3",
		"fig4a", "fig4b", "fig4c", "fig4d", "fig4e", "fig4f", "fig4g", "fig4h",
		"fig4i", "fig5a", "fig5b", "fig5c", "table3", "fig6",
	}
	if len(Registry) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(Registry), len(want))
	}
	for i, id := range want {
		if Registry[i].ID != id {
			t.Errorf("registry[%d] = %q, want %q", i, Registry[i].ID, id)
		}
		if _, ok := Find(id); !ok {
			t.Errorf("Find(%q) failed", id)
		}
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find should reject unknown IDs")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := tinyLab().Run("fig99"); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestTable1Scenario(t *testing.T) {
	res, err := tinyLab().Run("table1")
	if err != nil {
		t.Fatalf("table1: %v", err)
	}
	if len(res.Tables) != 1 {
		t.Fatalf("expected one table")
	}
	tbl := res.Tables[0]
	if len(tbl.Rows) != 5 {
		t.Fatalf("expected 5 providers, got %d rows", len(tbl.Rows))
	}
	// p5 (row index 4) is the only mutually-wanted provider: rank 1,
	// selected.
	if tbl.Rows[4][5] != "1" || tbl.Rows[4][6] != "yes" {
		t.Errorf("p5 should be rank 1 and selected: %v", tbl.Rows[4])
	}
	// q.n = 2: exactly two selected.
	sel := 0
	for _, r := range tbl.Rows {
		if r[6] == "yes" {
			sel++
		}
	}
	if sel != 2 {
		t.Errorf("selected %d providers, want 2", sel)
	}
}

func TestFig2Surface(t *testing.T) {
	res, err := tinyLab().Run("fig2")
	if err != nil {
		t.Fatalf("fig2: %v", err)
	}
	tbl := res.Tables[0]
	if len(tbl.Rows) != 21*21 {
		t.Fatalf("surface rows = %d, want 441", len(tbl.Rows))
	}
	// Spot-check corners via CSV content.
	csv := tbl.CSV()
	if !strings.Contains(csv, "1.0,0.0,1.0000") {
		t.Errorf("best corner (pref=1, ut=0) should yield intention 1")
	}
}

func TestFig3Surface(t *testing.T) {
	res, err := tinyLab().Run("fig3")
	if err != nil {
		t.Fatalf("fig3: %v", err)
	}
	if got := len(res.Tables[0].Rows); got != 11*11 {
		t.Fatalf("omega grid rows = %d, want 121", got)
	}
	if !strings.Contains(res.Tables[0].CSV(), "1.0,0.0,1.0000") {
		t.Error("ω(1,0) should be 1")
	}
}

func TestFigure4PanelsShareRuns(t *testing.T) {
	lab := tinyLab()
	a, err := lab.Run("fig4a")
	if err != nil {
		t.Fatalf("fig4a: %v", err)
	}
	// Second panel must reuse the memoized ramp bundle (no new sims): just
	// verify it succeeds quickly and has the same x grid.
	g, err := lab.Run("fig4g")
	if err != nil {
		t.Fatalf("fig4g: %v", err)
	}
	if len(a.Charts) != 1 || len(g.Charts) != 1 {
		t.Fatal("each panel produces one chart")
	}
	ca, cg := a.Charts[0], g.Charts[0]
	if len(ca.Series) != 3 || len(cg.Series) != 3 {
		t.Fatalf("expected 3 method series, got %d/%d", len(ca.Series), len(cg.Series))
	}
	if len(ca.Series[0].Points) == 0 {
		t.Fatal("empty series")
	}
	if ca.Series[0].Points[0].X != cg.Series[0].Points[0].X {
		t.Error("panels should share the sample grid")
	}
	if len(lab.ramps) != 3 {
		t.Errorf("ramp bundle should hold 3 methods, has %d", len(lab.ramps))
	}
}

func TestFig4iShape(t *testing.T) {
	lab := tinyLab()
	res, err := lab.Run("fig4i")
	if err != nil {
		t.Fatalf("fig4i: %v", err)
	}
	chart := res.Charts[0]
	byName := map[string][]float64{}
	for _, s := range chart.Series {
		for _, p := range s.Points {
			byName[s.Name] = append(byName[s.Name], p.Y)
		}
	}
	if len(byName["SQLB"]) != 2 {
		t.Fatalf("expected 2 workload points, got %v", byName)
	}
	// Response times positive everywhere.
	for name, ys := range byName {
		for _, y := range ys {
			if y <= 0 {
				t.Errorf("%s has non-positive response time %v", name, y)
			}
		}
	}
	// Capacity-based is the fastest at the high workload (the paper's
	// headline ordering).
	last := len(byName["SQLB"]) - 1
	if byName["Capacity based"][last] > byName["SQLB"][last] {
		t.Errorf("capacity-based (%v) should beat SQLB (%v) on captive response time",
			byName["Capacity based"][last], byName["SQLB"][last])
	}
}

func TestFig5cAndFig6ShareSweep(t *testing.T) {
	lab := tinyLab()
	c5, err := lab.Run("fig5c")
	if err != nil {
		t.Fatalf("fig5c: %v", err)
	}
	before := len(lab.sweep)
	f6, err := lab.Run("fig6")
	if err != nil {
		t.Fatalf("fig6: %v", err)
	}
	if len(lab.sweep) != before {
		t.Error("fig6 must reuse the full-autonomy sweep bundle")
	}
	for _, res := range []*Result{c5, f6} {
		for _, s := range res.Charts[0].Series {
			for _, p := range s.Points {
				if p.Y < 0 || p.Y > 100 {
					t.Errorf("%s: departure percentage %v out of range", res.ID, p.Y)
				}
			}
		}
	}
}

func TestTable3Structure(t *testing.T) {
	lab := tinyLab()
	res, err := lab.Run("table3")
	if err != nil {
		t.Fatalf("table3: %v", err)
	}
	tbl := res.Tables[0]
	// 3 methods × 3 reasons × 3 dimensions.
	if len(tbl.Rows) != 27 {
		t.Fatalf("rows = %d, want 27", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if len(r) != 7 {
			t.Fatalf("row width = %d, want 7: %v", len(r), r)
		}
		if !strings.HasSuffix(r[3], "%") || !strings.HasSuffix(r[6], "%") {
			t.Errorf("cells should be percentages: %v", r)
		}
	}
}

func TestRunAllTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll is slow")
	}
	lab := tinyLab()
	results, err := lab.RunAll()
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(results) != len(Registry) {
		t.Fatalf("got %d results, want %d", len(results), len(Registry))
	}
	for _, r := range results {
		if len(r.Charts)+len(r.Tables) == 0 {
			t.Errorf("%s produced no output", r.ID)
		}
	}
}

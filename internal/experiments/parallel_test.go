package experiments

import (
	"testing"
)

// artifactSnapshot runs a representative slice of the suite — ramp panels,
// a captive sweep, the full-autonomy sweep, Table 3, and an extension
// table — and returns every produced CSV keyed by artifact ID.
func artifactSnapshot(t *testing.T, workers int) map[string]string {
	t.Helper()
	lab := NewLab(Config{
		Scale:          0.05,
		Duration:       400,
		SweepDuration:  700,
		Repeats:        4,
		BaseSeed:       11,
		SampleInterval: 50,
		Workloads:      []float64{0.4, 0.8},
		Workers:        workers,
	})
	out := map[string]string{}
	for _, id := range []string{"fig4a", "fig4g", "fig4i", "fig5c", "table3", "ext-omega"} {
		res, err := lab.RunAny(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, c := range res.Charts {
			out[c.ID] = c.CSV()
		}
		for _, tbl := range res.Tables {
			out[tbl.ID] = tbl.CSV()
		}
	}
	return out
}

// TestParallelLabDeterminism is the tentpole's contract: the same BaseSeed
// must yield byte-identical experiment artifacts no matter how many
// workers the Lab fans out over.
func TestParallelLabDeterminism(t *testing.T) {
	serial := artifactSnapshot(t, 1)
	parallel := artifactSnapshot(t, 8)
	if len(serial) != len(parallel) {
		t.Fatalf("artifact counts differ: %d serial vs %d parallel", len(serial), len(parallel))
	}
	for id, csv := range serial {
		if parallel[id] != csv {
			t.Errorf("%s: Workers=8 CSV differs from Workers=1", id)
		}
	}
}

// TestWorkersDefault: an unset Workers resolves to a positive bound and a
// matching semaphore, and an explicit value is respected.
func TestWorkersDefault(t *testing.T) {
	lab := NewLab(Config{})
	if lab.cfg.Workers < 1 {
		t.Errorf("default Workers = %d, want >= 1", lab.cfg.Workers)
	}
	if cap(lab.sem) != lab.cfg.Workers {
		t.Errorf("semaphore capacity %d != Workers %d", cap(lab.sem), lab.cfg.Workers)
	}
	if got := NewLab(Config{Workers: 3}).Config().Workers; got != 3 {
		t.Errorf("explicit Workers = %d, want 3", got)
	}
}

// TestParallelLabSharesBundles: concurrent panels still hit the memoized
// bundles — the Figure 4 panels must not re-run their ramps when requested
// again, whatever the worker count.
func TestParallelLabSharesBundles(t *testing.T) {
	lab := NewLab(Config{
		Scale:          0.05,
		Duration:       300,
		SweepDuration:  300,
		Repeats:        2,
		BaseSeed:       3,
		SampleInterval: 50,
		Workloads:      []float64{0.4},
		Workers:        4,
	})
	if _, err := lab.Run("fig4a"); err != nil {
		t.Fatalf("fig4a: %v", err)
	}
	if got := len(lab.ramps); got != 3 {
		t.Fatalf("ramp bundle count = %d, want 3", got)
	}
	cells := make(map[string]*rampCell, len(lab.ramps))
	for k, v := range lab.ramps {
		cells[k] = v
	}
	if _, err := lab.Run("fig4g"); err != nil {
		t.Fatalf("fig4g: %v", err)
	}
	if got := len(lab.ramps); got != 3 {
		t.Fatalf("fig4g created new ramp bundles: %d", got)
	}
	for k, v := range lab.ramps {
		if cells[k] != v {
			t.Errorf("bundle %q was rebuilt", k)
		}
	}
}

package experiments

import (
	"testing"
)

// artifactSnapshot runs a representative slice of the suite — ramp panels,
// a captive sweep, the full-autonomy sweep, Table 3, and an extension
// table — and returns every produced CSV keyed by artifact ID.
func artifactSnapshot(t *testing.T, workers int) map[string]string {
	t.Helper()
	lab := NewLab(Config{
		Scale:          0.05,
		Duration:       400,
		SweepDuration:  700,
		Repeats:        4,
		BaseSeed:       11,
		SampleInterval: 50,
		Workloads:      []float64{0.4, 0.8},
		Workers:        workers,
	})
	out := map[string]string{}
	for _, id := range []string{"fig4a", "fig4g", "fig4i", "fig5c", "table3", "ext-omega"} {
		res, err := lab.RunAny(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, c := range res.Charts {
			out[c.ID] = c.CSV()
		}
		for _, tbl := range res.Tables {
			out[tbl.ID] = tbl.CSV()
		}
	}
	return out
}

// TestParallelLabDeterminism is the tentpole's contract: the same BaseSeed
// must yield byte-identical experiment artifacts no matter how many
// workers the Lab fans out over.
func TestParallelLabDeterminism(t *testing.T) {
	serial := artifactSnapshot(t, 1)
	parallel := artifactSnapshot(t, 8)
	if len(serial) != len(parallel) {
		t.Fatalf("artifact counts differ: %d serial vs %d parallel", len(serial), len(parallel))
	}
	for id, csv := range serial {
		if parallel[id] != csv {
			t.Errorf("%s: Workers=8 CSV differs from Workers=1", id)
		}
	}
}

// TestParallelLabDeterminismHeterogeneous extends the contract to the
// capability scenarios: with classes, selectivity, and skew enabled (and
// the ext-selectivity sweep included), Workers=1 and Workers=8 must still
// emit byte-identical artifacts.
func TestParallelLabDeterminismHeterogeneous(t *testing.T) {
	snapshot := func(workers int) map[string]string {
		lab := NewLab(Config{
			Scale:          0.05,
			Duration:       300,
			SweepDuration:  400,
			Repeats:        2,
			BaseSeed:       7,
			SampleInterval: 50,
			Workloads:      []float64{0.4, 0.8},
			Workers:        workers,
			Classes:        6,
			Selectivity:    0.34,
			ClassSkew:      1,
			Selectivities:  []float64{0.25, 1.0},
		})
		out := map[string]string{}
		for _, id := range []string{"fig4a", "fig4i", "fig5c", "ext-selectivity"} {
			res, err := lab.RunAny(id)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			for _, c := range res.Charts {
				out[c.ID] = c.CSV()
			}
			for _, tbl := range res.Tables {
				out[tbl.ID] = tbl.CSV()
			}
		}
		return out
	}
	serial := snapshot(1)
	parallel := snapshot(8)
	if len(serial) != len(parallel) {
		t.Fatalf("artifact counts differ: %d serial vs %d parallel", len(serial), len(parallel))
	}
	for id, csv := range serial {
		if parallel[id] != csv {
			t.Errorf("%s: Workers=8 CSV differs from Workers=1 with classes enabled", id)
		}
	}
}

// TestSelectivitySweepShape: the sweep produces one row per (method,
// selectivity) and queries actually drop at low selectivity while the
// homogeneous end (selectivity 1) drops nothing.
func TestSelectivitySweepShape(t *testing.T) {
	// Scale 0.025 → 10 providers over 8 classes at selectivity 0.1 (one
	// class each): several classes end up unserved, so their queries hit
	// empty posting lists. The outcome is fixed by BaseSeed.
	lab := NewLab(Config{
		Scale:          0.025,
		Duration:       300,
		SweepDuration:  500,
		Repeats:        2,
		BaseSeed:       13,
		SampleInterval: 100,
		Selectivities:  []float64{0.1, 1.0},
	})
	res, err := lab.RunAny("ext-selectivity")
	if err != nil {
		t.Fatalf("ext-selectivity: %v", err)
	}
	if len(res.Charts) != 2 {
		t.Fatalf("charts = %d, want response + drops", len(res.Charts))
	}
	tbl := res.Tables[0]
	if got, want := len(tbl.Rows), 3*2; got != want {
		t.Fatalf("rows = %d, want %d (3 methods × 2 selectivities)", got, want)
	}
	var lowDrop, fullDrop string
	for _, row := range tbl.Rows {
		if row[0] == "SQLB" && row[1] == "10%" {
			if row[2] != "1/8" {
				t.Errorf("classes_advertised at 10%% = %q, want 1/8", row[2])
			}
			lowDrop = row[3]
		}
		if row[0] == "SQLB" && row[1] == "100%" {
			fullDrop = row[3]
		}
	}
	if fullDrop != "0.00%" {
		t.Errorf("homogeneous end dropped %s, want 0.00%%", fullDrop)
	}
	if lowDrop == "0.00%" || lowDrop == "" {
		t.Errorf("10%% selectivity dropped %q queries; expected drops with 10 providers × 8 classes", lowDrop)
	}
}

// TestWorkersDefault: an unset Workers resolves to a positive bound and a
// matching semaphore, and an explicit value is respected.
func TestWorkersDefault(t *testing.T) {
	lab := NewLab(Config{})
	if lab.cfg.Workers < 1 {
		t.Errorf("default Workers = %d, want >= 1", lab.cfg.Workers)
	}
	if cap(lab.sem) != lab.cfg.Workers {
		t.Errorf("semaphore capacity %d != Workers %d", cap(lab.sem), lab.cfg.Workers)
	}
	if got := NewLab(Config{Workers: 3}).Config().Workers; got != 3 {
		t.Errorf("explicit Workers = %d, want 3", got)
	}
}

// TestParallelLabSharesBundles: concurrent panels still hit the memoized
// bundles — the Figure 4 panels must not re-run their ramps when requested
// again, whatever the worker count.
func TestParallelLabSharesBundles(t *testing.T) {
	lab := NewLab(Config{
		Scale:          0.05,
		Duration:       300,
		SweepDuration:  300,
		Repeats:        2,
		BaseSeed:       3,
		SampleInterval: 50,
		Workloads:      []float64{0.4},
		Workers:        4,
	})
	if _, err := lab.Run("fig4a"); err != nil {
		t.Fatalf("fig4a: %v", err)
	}
	if got := len(lab.ramps); got != 3 {
		t.Fatalf("ramp bundle count = %d, want 3", got)
	}
	cells := make(map[string]*rampCell, len(lab.ramps))
	for k, v := range lab.ramps {
		cells[k] = v
	}
	if _, err := lab.Run("fig4g"); err != nil {
		t.Fatalf("fig4g: %v", err)
	}
	if got := len(lab.ramps); got != 3 {
		t.Fatalf("fig4g created new ramp bundles: %d", got)
	}
	for k, v := range lab.ramps {
		if cells[k] != v {
			t.Errorf("bundle %q was rebuilt", k)
		}
	}
}

// TestShardedLabDeterminism closes the loop on the two parallelism axes:
// a Lab running serially must emit the same bytes as one fanning runs out
// over 8 workers with each simulation itself sharded 4 ways. Composes the
// Workers contract above with sim's TestShardedDeterminism.
func TestShardedLabDeterminism(t *testing.T) {
	snapshot := func(workers, shards int) map[string]string {
		lab := NewLab(Config{
			Scale:          0.05,
			Duration:       300,
			SweepDuration:  400,
			Repeats:        2,
			BaseSeed:       17,
			SampleInterval: 50,
			Workloads:      []float64{0.4, 0.8},
			Workers:        workers,
			Shards:         shards,
		})
		out := map[string]string{}
		for _, id := range []string{"fig4a", "fig4i", "fig5c", "ext-scenarios"} {
			res, err := lab.RunAny(id)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			for _, c := range res.Charts {
				out[c.ID] = c.CSV()
			}
			for _, tbl := range res.Tables {
				out[tbl.ID] = tbl.CSV()
			}
		}
		return out
	}
	serial := snapshot(1, 1)
	sharded := snapshot(8, 4)
	if len(serial) != len(sharded) {
		t.Fatalf("artifact counts differ: %d serial vs %d sharded", len(serial), len(sharded))
	}
	for id, csv := range serial {
		if sharded[id] != csv {
			t.Errorf("%s: Workers=8/Shards=4 CSV differs from the serial lab", id)
		}
	}
}

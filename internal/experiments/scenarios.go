package experiments

import (
	"fmt"

	"sqlb/internal/scenario"
	"sqlb/internal/sim"
	"sqlb/internal/stats"
	"sqlb/internal/workload"
)

// scenarioWorkload is the base workload of scenario runs whose scenario
// carries no load curve of its own (custom wave-only files); presets all
// override it.
const scenarioWorkload = 0.8

// runExtScenarios sweeps the scenario library: every configured scenario
// (the five presets by default, or Config.Scenarios) runs under full
// autonomy with every allocation method, and the table compares how
// satisfaction, fairness, drops, and departures hold up through flash
// crowds, diurnal swings, maintenance windows, and outage waves — the
// regimes where mediation earns its keep beyond the paper's constant and
// ramped workloads. One response-time time-series chart per scenario shows
// the transient (the flash-crowd spike, the post-outage recovery).
//
// Determinism: the (scenario, method, repetition) grid fans out over the
// worker budget into index-addressed slots and every run's seed derives
// from BaseSeed and the run's identity alone, so artifacts are
// byte-identical at any Workers value — the same contract as every other
// Lab bundle.
func runExtScenarios(l *Lab) (*Result, error) {
	names := l.cfg.Scenarios
	if len(names) == 0 {
		names = scenario.Names()
	}
	scens := make([]*scenario.Scenario, len(names))
	for i, name := range names {
		s, err := scenario.Resolve(name)
		if err != nil {
			return nil, err
		}
		scens[i] = s
	}
	ms := methods()
	reps := l.cfg.Repeats

	results := make([]*sim.Result, len(scens)*len(ms)*reps)
	err := l.fanOut(len(results), func(i int) error {
		scn := scens[i/(len(ms)*reps)]
		m := ms[(i/reps)%len(ms)]
		rep := i % reps
		opts := sim.Options{
			Config:         l.modelConfig(),
			Strategy:       m,
			Workload:       workload.Constant(scenarioWorkload),
			Scenario:       scn,
			Duration:       l.cfg.SweepDuration,
			Seed:           l.seedFor("scenario/"+scn.Name, m.Name(), 0, rep),
			SampleInterval: l.cfg.SweepDuration / 50,
			Autonomy:       sim.FullAutonomy(),
			Shards:         l.cfg.Shards,
		}
		eng, err := sim.New(opts)
		if err != nil {
			return err
		}
		results[i] = eng.Run()
		if results[i].Err != nil {
			return fmt.Errorf("scenario %s %s rep %d: %w", scn.Name, m.Name(), rep, results[i].Err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	tbl := &stats.Table{
		ID:    "ext-scenarios",
		Title: "Scenario sweep under full autonomy (satisfaction/fairness/drops per preset)",
		Header: []string{
			"scenario", "method", "dropped_pct", "resp_mean_s", "resp_p95_s",
			"cons_sat", "cons_fairness", "prov_sat_pref", "util_fairness",
			"departures_pct", "rejoins",
		},
	}
	charts := make([]*stats.Chart, 0, len(scens))
	for si, scn := range scens {
		chart := &stats.Chart{
			ID:     "ext-scenario-" + scn.Name + "-resp",
			Title:  fmt.Sprintf("Response time through %q (%s)", scn.Name, scn.Description),
			XLabel: "time (sim-seconds)", YLabel: "window mean response time (seconds)",
		}
		for mi, m := range ms {
			var drop, resp, p95, cs, cf, psp, uf, dep, joins float64
			series := stats.Series{Name: m.Name()}
			nSamples := -1
			for rep := 0; rep < reps; rep++ {
				r := results[si*len(ms)*reps+mi*reps+rep]
				if r.IssuedQueries > 0 {
					drop += 100 * float64(r.DroppedQueries) / float64(r.IssuedQueries)
				}
				resp += r.MeanResponseTime
				p95 += r.ResponseHistogram.Quantile(0.95)
				cs += r.Final.ConsSat.Mean
				cf += r.Final.ConsSat.Fairness
				psp += r.Final.ProvSatPreference.Mean
				uf += r.Final.Utilization.Fairness
				dep += 100 * r.ProviderDepartureRate()
				joins += float64(len(r.ProviderJoins))
				if nSamples < 0 || len(r.Samples) < nSamples {
					nSamples = len(r.Samples)
				}
			}
			n := float64(reps)
			for s := 0; s < nSamples; s++ {
				sum := 0.0
				for rep := 0; rep < reps; rep++ {
					sum += results[si*len(ms)*reps+mi*reps+rep].Samples[s].ResponseTimeMean
				}
				series.Add(results[si*len(ms)*reps+mi*reps].Samples[s].Time, sum/n)
			}
			chart.AddSeries(series)
			tbl.AddRow(scn.Name, m.Name(),
				fmt.Sprintf("%.2f%%", drop/n),
				fmt.Sprintf("%.2f", resp/n),
				fmt.Sprintf("%.2f", p95/n),
				fmt.Sprintf("%.3f", cs/n),
				fmt.Sprintf("%.3f", cf/n),
				fmt.Sprintf("%.3f", psp/n),
				fmt.Sprintf("%.3f", uf/n),
				fmt.Sprintf("%.0f%%", dep/n),
				fmt.Sprintf("%.1f", joins/n),
			)
		}
		charts = append(charts, chart)
	}
	return &Result{
		ID:     "ext-scenarios",
		Title:  "Scenario sweep (time-varying load and churn)",
		Charts: charts,
		Tables: []*stats.Table{tbl},
		Notes: []string{
			"every run uses full autonomy (Figure 5(b) departure rules) on top of the scenario's scheduled churn",
			"departures_pct counts autonomy departures plus outage-wave victims; rejoins counts re-registered providers",
		},
	}, nil
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6). Each experiment is registered under the paper's
// artifact ID (fig2 … fig6, table1, table3) and produces charts/tables that
// cmd/sqlb-experiments renders as text and CSV. Simulation bundles are
// memoized inside a Lab so that the eight Figure-4 time-series panels share
// one set of runs, and Figures 5(b), 5(c), 6 and Table 3 share the
// full-autonomy workload sweep.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"sqlb/internal/allocator"
	"sqlb/internal/model"
	"sqlb/internal/sim"
	"sqlb/internal/stats"
	"sqlb/internal/timeline"
	"sqlb/internal/workload"
)

// Config scales the experiment suite. The paper's full scale (200/400
// participants, 10 000 s, 10 repetitions) is Config{Scale: 1, Duration:
// 10000, Repeats: 10}; the defaults run the same shapes at laptop cost.
type Config struct {
	// Scale multiplies the Table 2 population (see model.Config.Scale).
	// Default 0.25 (50 consumers, 100 providers).
	Scale float64
	// Duration is the horizon of the Figure 4(a)-(h) ramp runs. Default
	// 2500 s (paper: 10 000 s).
	Duration float64
	// SweepDuration is the horizon of the per-workload runs (Figures
	// 4(i), 5, 6, Table 3). Default 5000 s — long enough for the
	// departure cascades to play out.
	SweepDuration float64
	// Repeats is the number of repetitions averaged (paper: 10).
	// Default 2.
	Repeats int
	// BaseSeed seeds the repetition seeds. Default 1.
	BaseSeed uint64
	// SampleInterval is the Figure 4 sampling cadence. Default
	// Duration/50.
	SampleInterval float64
	// Workloads are the swept workload fractions. Default 0.2 … 1.0 in
	// steps of 0.2.
	Workloads []float64
	// Workers bounds how many simulations run concurrently. Repetitions
	// and sweep points fan out over this budget; every run's RNG stream is
	// derived from BaseSeed alone, so any Workers value produces
	// byte-identical tables and figures. Default runtime.GOMAXPROCS(0);
	// 1 recovers fully serial execution.
	Workers int
	// Shards is passed through to sim.Options.Shards for every run: the
	// intra-simulation parallelism, orthogonal to Workers (the across-run
	// parallelism). Like Workers, any value produces byte-identical
	// artifacts (sim's TestShardedDeterminism); 0 defers to the engine's
	// SQLB_SHARDS/serial fallback.
	Shards int

	// Classes overrides the workload's query-class count (model.Config.
	// WithClasses); 0 keeps the paper's two classes (130/150 units).
	Classes int
	// Selectivity sets model.Config.CapabilitySelectivity for every run:
	// s ∈ (0,1) makes providers advertise capability subsets. 0 (default)
	// keeps the paper's all-capable providers.
	Selectivity float64
	// ClassSkew sets model.Config.ClassSkew (Zipf-like class popularity);
	// 0 keeps the uniform mix.
	ClassSkew float64
	// Selectivities are the capability selectivities swept by the
	// ext-selectivity experiment. Default 0.125, 0.25, 0.5, 0.75, 1.0 —
	// exact multiples of 1/8 so each point maps to a distinct
	// classes-advertised count under the sweep's 8 classes (a provider
	// advertises max(1, round(s·classes)) classes, so finer-grained
	// values can round to the same effective configuration).
	Selectivities []float64
	// Scenarios are the scenario names (presets or file paths) swept by the
	// ext-scenarios experiment. Default: every preset in the
	// internal/scenario library.
	Scenarios []string

	// Timeline, when non-nil, is called once per simulation run with the
	// run's identity (e.g. "ramp/SQLB/rep0" or
	// "full-autonomy/SQLB/w80/rep1") and returns the timeline sink that
	// run streams its snapshots to — nil skips the run. The lab closes
	// each returned sink after its run. Seeding is untouched by the hook,
	// so results remain byte-identical with or without it, at any Workers
	// value.
	Timeline func(runID string) timeline.Sink
}

// DefaultConfig returns the laptop-scale defaults.
func DefaultConfig() Config { return Config{}.withDefaults() }

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.25
	}
	if c.Duration <= 0 {
		c.Duration = 2500
	}
	if c.SweepDuration <= 0 {
		c.SweepDuration = 5000
	}
	if c.Repeats <= 0 {
		c.Repeats = 2
	}
	if c.BaseSeed == 0 {
		c.BaseSeed = 1
	}
	if c.SampleInterval <= 0 {
		c.SampleInterval = c.Duration / 50
	}
	if len(c.Workloads) == 0 {
		c.Workloads = []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if len(c.Selectivities) == 0 {
		c.Selectivities = []float64{0.125, 0.25, 0.5, 0.75, 1.0}
	}
	return c
}

// Result is the output of one experiment.
type Result struct {
	ID     string
	Title  string
	Charts []*stats.Chart
	Tables []*stats.Table
	Notes  []string
}

// Spec describes one registered experiment.
type Spec struct {
	ID    string
	Title string
	Run   func(*Lab) (*Result, error)
}

// Registry lists every experiment in paper order.
var Registry = []Spec{
	{"table1", "Motivating eWine scenario (Table 1)", runTable1},
	{"fig2", "Provider intention surface at δs = 0.5 (Figure 2)", runFig2},
	{"fig3", "ω surface over consumer/provider satisfaction (Figure 3)", runFig3},
	{"fig4a", "Provider satisfaction mean, intention-based (Figure 4a)", figure4("fig4a")},
	{"fig4b", "Provider satisfaction mean, preference-based (Figure 4b)", figure4("fig4b")},
	{"fig4c", "Provider allocation-satisfaction mean, preference-based (Figure 4c)", figure4("fig4c")},
	{"fig4d", "Provider satisfaction fairness (Figure 4d)", figure4("fig4d")},
	{"fig4e", "Consumer allocation-satisfaction mean (Figure 4e)", figure4("fig4e")},
	{"fig4f", "Consumer satisfaction fairness (Figure 4f)", figure4("fig4f")},
	{"fig4g", "Query load mean (Figure 4g)", figure4("fig4g")},
	{"fig4h", "Query load fairness (Figure 4h)", figure4("fig4h")},
	{"fig4i", "Response time vs workload, captive (Figure 4i)", runFig4i},
	{"fig5a", "Response time vs workload, departures by dissatisfaction/starvation (Figure 5a)", runFig5a},
	{"fig5b", "Response time vs workload, full autonomy (Figure 5b)", runFig5b},
	{"fig5c", "Provider departures vs workload (Figure 5c)", runFig5c},
	{"table3", "Provider departure reasons at 80% workload (Table 3)", runTable3},
	{"fig6", "Consumer departures vs workload (Figure 6)", runFig6},
}

// Find returns the spec with the given ID.
func Find(id string) (Spec, bool) {
	for _, s := range Registry {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

// sweepRun bundles one constant-workload run with its population's class
// totals (needed by the Table 3 per-class percentages).
type sweepRun struct {
	Res    *sim.Result
	Totals map[sim.ClassDimension][3]int
}

// rampCell and sweepCell memoize one simulation bundle. The sync.Once
// guarantees the bundle's repetitions run exactly once even when several
// experiments (or prewarm goroutines) request it concurrently; everyone
// else blocks on the Do and reads the settled result.
type rampCell struct {
	once sync.Once
	rs   []*sim.Result
	err  error
}

type sweepCell struct {
	once sync.Once
	rs   []sweepRun
	err  error
}

// Lab owns the memoized simulation bundles for one configuration. All of
// its methods are safe for concurrent use; simulations fan out over a
// bounded worker budget (Config.Workers) and remain byte-for-byte
// deterministic because every run's seed depends only on BaseSeed and the
// run's identity, never on scheduling order.
type Lab struct {
	cfg Config
	sem chan struct{} // bounds the number of concurrently running simulations

	mu    sync.Mutex
	ramps map[string]*rampCell  // method → repeats bundle
	sweep map[string]*sweepCell // kind/method/workload → repeats bundle
}

// NewLab returns a lab for the configuration (defaults applied).
func NewLab(cfg Config) *Lab {
	cfg = cfg.withDefaults()
	return &Lab{
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.Workers),
		ramps: map[string]*rampCell{},
		sweep: map[string]*sweepCell{},
	}
}

// Config returns the lab's effective configuration.
func (l *Lab) Config() Config { return l.cfg }

// Run executes one experiment by ID.
func (l *Lab) Run(id string) (*Result, error) {
	spec, ok := Find(id)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return spec.Run(l)
}

// RunAll executes every registered experiment in order.
func (l *Lab) RunAll() ([]*Result, error) {
	out := make([]*Result, 0, len(Registry))
	for _, spec := range Registry {
		r, err := spec.Run(l)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", spec.ID, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// methods returns fresh strategy instances in the paper's comparison order.
func methods() []allocator.Allocator {
	return []allocator.Allocator{
		allocator.NewSQLB(),
		allocator.NewMariposaLike(),
		allocator.NewCapacityBased(),
	}
}

// modelConfig returns the per-run population configuration: the Table 2
// setup at the lab's scale, with the heterogeneous-workload overrides
// (Classes, Selectivity, ClassSkew) applied. With the defaults it is
// byte-identical to the paper's setup.
func (l *Lab) modelConfig() model.Config {
	cfg := model.DefaultConfig().Scale(l.cfg.Scale)
	if l.cfg.Classes > 1 {
		cfg = cfg.WithClasses(l.cfg.Classes)
	}
	if l.cfg.Selectivity > 0 {
		cfg.CapabilitySelectivity = l.cfg.Selectivity
	}
	if l.cfg.ClassSkew > 0 {
		cfg.ClassSkew = l.cfg.ClassSkew
	}
	return cfg
}

// runSink resolves the per-run timeline sink; nil without a factory (or
// when the factory skips the run).
func (l *Lab) runSink(runID string) timeline.Sink {
	if l.cfg.Timeline == nil {
		return nil
	}
	return l.cfg.Timeline(runID)
}

// closeSink flushes and closes a run's timeline sink, surfacing any sink
// error the engine swallowed to keep the Result deterministic.
func (l *Lab) closeSink(sink timeline.Sink, eng *sim.Engine) error {
	if sink == nil {
		return nil
	}
	if err := eng.TimelineErr(); err != nil {
		sink.Close()
		return err
	}
	return sink.Close()
}

// seedFor derives a deterministic per-run seed.
func (l *Lab) seedFor(kind string, method string, workloadPct int, repeat int) uint64 {
	h := l.cfg.BaseSeed
	for _, s := range []string{kind, method} {
		for _, ch := range s {
			h = h*131 + uint64(ch)
		}
	}
	return h*1000003 + uint64(workloadPct)*10007 + uint64(repeat)*101
}

// rampResults runs (or returns memoized) Figure 4 ramp simulations for one
// method: workload 30% → 100% over the duration, captive participants.
// Repetitions fan out over the worker budget; rs[rep] is written by
// repetition index so the bundle is identical at any Workers value.
func (l *Lab) rampResults(method allocator.Allocator) ([]*sim.Result, error) {
	l.mu.Lock()
	cell, ok := l.ramps[method.Name()]
	if !ok {
		cell = &rampCell{}
		l.ramps[method.Name()] = cell
	}
	l.mu.Unlock()
	cell.once.Do(func() {
		rs := make([]*sim.Result, l.cfg.Repeats)
		err := l.fanOut(l.cfg.Repeats, func(rep int) error {
			opts := sim.Options{
				Config:         l.modelConfig(),
				Strategy:       method,
				Workload:       workload.Ramp{From: 0.3, To: 1.0, Duration: l.cfg.Duration},
				Duration:       l.cfg.Duration,
				Seed:           l.seedFor("ramp", method.Name(), 0, rep),
				SampleInterval: l.cfg.SampleInterval,
				Shards:         l.cfg.Shards,
				Timeline:       l.runSink(fmt.Sprintf("ramp/%s/rep%d", method.Name(), rep)),
			}
			eng, err := sim.New(opts)
			if err != nil {
				return err
			}
			rs[rep] = eng.Run()
			if err := l.closeSink(opts.Timeline, eng); err != nil {
				return fmt.Errorf("ramp %s rep %d: %w", method.Name(), rep, err)
			}
			if rs[rep].Err != nil {
				return fmt.Errorf("ramp %s rep %d: %w", method.Name(), rep, rs[rep].Err)
			}
			return nil
		})
		if err != nil {
			cell.err = err
			return
		}
		cell.rs = rs
	})
	return cell.rs, cell.err
}

// sweepKind selects the autonomy setting of a workload sweep.
type sweepKind string

const (
	sweepCaptive      sweepKind = "captive"       // Figure 4(i)
	sweepDissatStarve sweepKind = "dissat-starve" // Figure 5(a)
	sweepFullAutonomy sweepKind = "full-autonomy" // Figures 5(b), 5(c), 6, Table 3
)

func (k sweepKind) autonomy() sim.Autonomy {
	switch k {
	case sweepDissatStarve:
		return sim.DissatStarvationAutonomy()
	case sweepFullAutonomy:
		return sim.FullAutonomy()
	default:
		return sim.Autonomy{}
	}
}

// sweepResults runs (or returns memoized) constant-workload simulations,
// capturing each run's class totals for the Table 3 breakdowns.
// Repetitions fan out over the worker budget exactly as in rampResults.
func (l *Lab) sweepResults(kind sweepKind, method allocator.Allocator, frac float64) ([]sweepRun, error) {
	// The key carries the exact fraction (not a rounded percent) so two
	// workloads that round alike never share a bundle.
	key := fmt.Sprintf("%s/%s/%v", kind, method.Name(), frac)
	l.mu.Lock()
	cell, ok := l.sweep[key]
	if !ok {
		cell = &sweepCell{}
		l.sweep[key] = cell
	}
	l.mu.Unlock()
	cell.once.Do(func() {
		rs := make([]sweepRun, l.cfg.Repeats)
		err := l.fanOut(l.cfg.Repeats, func(rep int) error {
			pct := int(frac*100 + 0.5)
			opts := sim.Options{
				Config:   l.modelConfig(),
				Strategy: method,
				Workload: workload.Constant(frac),
				Duration: l.cfg.SweepDuration,
				Seed:     l.seedFor(string(kind), method.Name(), pct, rep),
				Autonomy: kind.autonomy(),
				Shards:   l.cfg.Shards,
				Timeline: l.runSink(fmt.Sprintf("%s/%s/w%d/rep%d", kind, method.Name(), pct, rep)),
			}
			eng, err := sim.New(opts)
			if err != nil {
				return err
			}
			totals := map[sim.ClassDimension][3]int{}
			for _, dim := range sim.ClassDimensions {
				totals[dim] = sim.ClassTotals(eng.Population(), dim)
			}
			rs[rep] = sweepRun{Res: eng.Run(), Totals: totals}
			if err := l.closeSink(opts.Timeline, eng); err != nil {
				return fmt.Errorf("%s %s %v rep %d: %w", kind, method.Name(), frac, rep, err)
			}
			if rs[rep].Res.Err != nil {
				return fmt.Errorf("%s %s %v rep %d: %w", kind, method.Name(), frac, rep, rs[rep].Res.Err)
			}
			return nil
		})
		if err != nil {
			cell.err = err
			return
		}
		cell.rs = rs
	})
	return cell.rs, cell.err
}

// sweepChart builds a workload-sweep chart from a per-run metric. All
// (method, workload) bundles are prewarmed concurrently; the assembly
// below then reads settled memo cells in a fixed order, so the chart is
// identical at any Workers value.
func (l *Lab) sweepChart(id, title, ylabel string, kind sweepKind, metric func(*sim.Result) float64) (*Result, error) {
	chart := &stats.Chart{ID: id, Title: title, XLabel: "workload (% of total system capacity)", YLabel: ylabel}
	fracs := append([]float64(nil), l.cfg.Workloads...)
	sort.Float64s(fracs)
	l.warmSweep(kind, methods(), fracs)
	for _, m := range methods() {
		s := stats.Series{Name: m.Name()}
		for _, frac := range fracs {
			rs, err := l.sweepResults(kind, m, frac)
			if err != nil {
				return nil, err
			}
			sum := 0.0
			for _, r := range rs {
				sum += metric(r.Res)
			}
			s.Add(frac*100, sum/float64(len(rs)))
		}
		chart.AddSeries(s)
	}
	return &Result{ID: id, Title: title, Charts: []*stats.Chart{chart}}, nil
}

package experiments

import (
	"fmt"

	"sqlb/internal/allocator"
	"sqlb/internal/model"
	"sqlb/internal/sim"
	"sqlb/internal/stats"
	"sqlb/internal/workload"
)

// ExtensionRegistry lists experiments beyond the paper's artifacts: the
// DESIGN.md §4 ablations and the extension-strategy comparisons. They run
// through the same Lab but are kept out of Registry so RunAll reproduces
// exactly the paper's set.
var ExtensionRegistry = []Spec{
	{"ext-omega", "Ablation: adaptive ω (Eq 6) vs fixed ω", runExtOmega},
	{"ext-upsilon", "Ablation: consumer υ (preferences vs reputation)", runExtUpsilon},
	{"ext-methods", "Extension strategies vs SQLB (KnBest, SQLB-econ)", runExtMethods},
	{"ext-selectivity", "Capability-selectivity sweep (heterogeneous matchmaking)", runExtSelectivity},
	{"ext-scenarios", "Scenario sweep: time-varying load and churn presets", runExtScenarios},
}

// FindAny looks an experiment up in both registries.
func FindAny(id string) (Spec, bool) {
	if s, ok := Find(id); ok {
		return s, true
	}
	for _, s := range ExtensionRegistry {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

// RunAny executes a paper or extension experiment by ID.
func (l *Lab) RunAny(id string) (*Result, error) {
	spec, ok := FindAny(id)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return spec.Run(l)
}

// extensionRun executes one full-autonomy run at the Table 3 reference
// workload with an arbitrary strategy and config mutation.
func (l *Lab) extensionRun(strategy allocator.Allocator, rep int, mutate func(*model.Config)) (*sim.Result, error) {
	cfg := l.modelConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	opts := sim.Options{
		Config:   cfg,
		Strategy: strategy,
		Workload: workload.Constant(table3Workload),
		Duration: l.cfg.SweepDuration,
		Seed:     l.seedFor("extension", strategy.Name(), 80, rep),
		Autonomy: sim.FullAutonomy(),
		Shards:   l.cfg.Shards,
	}
	eng, err := sim.New(opts)
	if err != nil {
		return nil, err
	}
	res := eng.Run()
	if res.Err != nil {
		return nil, fmt.Errorf("extension %s rep %d: %w", strategy.Name(), rep, res.Err)
	}
	return res, nil
}

// extensionTable builds a comparison table over named variants. The whole
// (variant, repetition) grid fans out over the worker budget; aggregation
// then walks the index-addressed results in a fixed order, keeping the
// table deterministic.
func (l *Lab) extensionTable(id, title string, variants []struct {
	name     string
	strategy allocator.Allocator
	mutate   func(*model.Config)
}) (*Result, error) {
	tbl := &stats.Table{
		ID:    id,
		Title: title,
		Header: []string{
			"variant", "prov_departures_pct", "cons_departures_pct",
			"resp_mean_s", "resp_p95_s", "cons_allocsat", "prov_sat_pref",
		},
	}
	reps := l.cfg.Repeats
	results := make([]*sim.Result, len(variants)*reps)
	err := l.fanOut(len(results), func(i int) error {
		v := variants[i/reps]
		res, err := l.extensionRun(v.strategy, i%reps, v.mutate)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for vi, v := range variants {
		var provLoss, consLoss, resp, p95, cas, psp float64
		for rep := 0; rep < reps; rep++ {
			res := results[vi*reps+rep]
			provLoss += 100 * res.ProviderDepartureRate()
			consLoss += 100 * res.ConsumerDepartureRate()
			resp += res.MeanResponseTime
			p95 += res.ResponseHistogram.Quantile(0.95)
			cas += res.Final.ConsAllocSat.Mean
			psp += res.Final.ProvSatPreference.Mean
		}
		n := float64(reps)
		tbl.AddRow(v.name,
			fmt.Sprintf("%.0f%%", provLoss/n),
			fmt.Sprintf("%.0f%%", consLoss/n),
			fmt.Sprintf("%.1f", resp/n),
			fmt.Sprintf("%.1f", p95/n),
			fmt.Sprintf("%.2f", cas/n),
			fmt.Sprintf("%.2f", psp/n),
		)
	}
	return &Result{ID: id, Title: title, Tables: []*stats.Table{tbl}}, nil
}

type variant = struct {
	name     string
	strategy allocator.Allocator
	mutate   func(*model.Config)
}

func runExtOmega(l *Lab) (*Result, error) {
	r, err := l.extensionTable("ext-omega",
		"Adaptive ω (Equation 6) vs fixed ω, 80% workload, full autonomy",
		[]variant{
			{"adaptive (Eq 6)", allocator.NewSQLB(), nil},
			{"fixed ω=0 (consumer only)", allocator.NewSQLBFixedOmega(0), nil},
			{"fixed ω=0.5", allocator.NewSQLBFixedOmega(0.5), nil},
			{"fixed ω=1 (provider only)", allocator.NewSQLBFixedOmega(1), nil},
		})
	if err != nil {
		return nil, err
	}
	r.Notes = append(r.Notes,
		"the adaptive balance is SQLB's fairness mechanism: fixed extremes trade one side's departures for the other's")
	return r, nil
}

func runExtUpsilon(l *Lab) (*Result, error) {
	mk := func(u float64) func(*model.Config) {
		return func(c *model.Config) {
			c.Upsilon = u
			c.ReputationFeedbackAlpha = 0.05 // make reputation meaningful
		}
	}
	r, err := l.extensionTable("ext-upsilon",
		"Consumer υ: preferences vs feedback-driven reputation, 80% workload",
		[]variant{
			{"υ=1 (preferences only, paper)", allocator.NewSQLB(), mk(1)},
			{"υ=0.5 (balanced)", allocator.NewSQLB(), mk(0.5)},
			{"υ=0 (reputation only)", allocator.NewSQLB(), mk(0)},
		})
	if err != nil {
		return nil, err
	}
	r.Notes = append(r.Notes,
		"with feedback-driven reputation, rep(p) converges to consumer consensus; υ<1 consumers follow the crowd")
	return r, nil
}

func runExtMethods(l *Lab) (*Result, error) {
	r, err := l.extensionTable("ext-methods",
		"Extension strategies vs the paper's methods, 80% workload, full autonomy",
		[]variant{
			{"SQLB", allocator.NewSQLB(), nil},
			{"KnBest (ref [17])", allocator.NewKnBest(), nil},
			{"SQLB-econ (Section 7)", allocator.NewSQLBEconomic(), nil},
			{"Capacity based", allocator.NewCapacityBased(), nil},
		})
	if err != nil {
		return nil, err
	}
	r.Notes = append(r.Notes,
		"KnBest trades a little intention satisfaction for better load spreading;",
		"SQLB-econ replaces Definition 9's geometric balance with a linear-utility bid")
	return r, nil
}

// Package stats provides the small reporting substrate of the benchmark
// harness: named series (one per query-allocation method), charts (one per
// paper figure), tables (one per paper table), text rendering for the
// terminal, and CSV output for plotting.
package stats

import (
	"fmt"
	"strings"
)

// Point is one (x, y) sample of a series.
type Point struct {
	X, Y float64
}

// Series is a named sequence of points (e.g. one method's curve).
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// Chart is one figure: several series over a shared x-axis.
type Chart struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// AddSeries appends a series to the chart.
func (c *Chart) AddSeries(s Series) {
	c.Series = append(c.Series, s)
}

// CSV renders the chart as comma-separated values: a header row with the
// x-label and series names, then one row per x present in the first series
// (all series are expected to share the x grid; shorter series leave
// fields empty).
func (c *Chart) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(c.XLabel))
	for _, s := range c.Series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Name))
	}
	b.WriteByte('\n')
	rows := 0
	for _, s := range c.Series {
		if len(s.Points) > rows {
			rows = len(s.Points)
		}
	}
	for i := 0; i < rows; i++ {
		x := ""
		for _, s := range c.Series {
			if i < len(s.Points) {
				x = formatFloat(s.Points[i].X)
				break
			}
		}
		b.WriteString(x)
		for _, s := range c.Series {
			b.WriteByte(',')
			if i < len(s.Points) {
				b.WriteString(formatFloat(s.Points[i].Y))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Render prints the chart as an aligned text table for the terminal.
func (c *Chart) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", c.ID, c.Title)
	header := append([]string{c.XLabel}, seriesNames(c.Series)...)
	rows := [][]string{}
	n := 0
	for _, s := range c.Series {
		if len(s.Points) > n {
			n = len(s.Points)
		}
	}
	for i := 0; i < n; i++ {
		row := make([]string, 0, len(header))
		x := ""
		for _, s := range c.Series {
			if i < len(s.Points) {
				x = formatFloat(s.Points[i].X)
				break
			}
		}
		row = append(row, x)
		for _, s := range c.Series {
			if i < len(s.Points) {
				row = append(row, formatFloat(s.Points[i].Y))
			} else {
				row = append(row, "")
			}
		}
		rows = append(rows, row)
	}
	b.WriteString(renderAligned(header, rows))
	return b.String()
}

// Table is one paper table: a header and string rows.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Header)
	for _, r := range t.Rows {
		writeCSVRow(&b, r)
	}
	return b.String()
}

// Render prints the table aligned for the terminal.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	b.WriteString(renderAligned(t.Header, t.Rows))
	return b.String()
}

// MergeMeans averages several runs of the same series pointwise: runs must
// share the x grid (the engine samples on a fixed interval, so they do).
// Shorter runs truncate the result to the common length.
func MergeMeans(name string, runs [][]Point) Series {
	if len(runs) == 0 {
		return Series{Name: name}
	}
	n := len(runs[0])
	for _, r := range runs[1:] {
		if len(r) < n {
			n = len(r)
		}
	}
	out := Series{Name: name, Points: make([]Point, n)}
	for i := 0; i < n; i++ {
		x := runs[0][i].X
		sum := 0.0
		for _, r := range runs {
			sum += r[i].Y
		}
		out.Points[i] = Point{X: x, Y: sum / float64(len(runs))}
	}
	return out
}

func seriesNames(ss []Series) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name
	}
	return out
}

func renderAligned(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, cell := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(csvEscape(cell))
	}
	b.WriteByte('\n')
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func formatFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", v), "0"), ".")
}

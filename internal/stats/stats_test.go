package stats

import (
	"strings"
	"testing"
)

func TestSeriesAdd(t *testing.T) {
	var s Series
	s.Name = "SQLB"
	s.Add(1, 0.5)
	s.Add(2, 0.6)
	if len(s.Points) != 2 || s.Points[1] != (Point{2, 0.6}) {
		t.Fatalf("unexpected points %v", s.Points)
	}
}

func TestChartCSV(t *testing.T) {
	c := Chart{ID: "fig", XLabel: "time"}
	c.AddSeries(Series{Name: "a", Points: []Point{{1, 0.25}, {2, 0.5}}})
	c.AddSeries(Series{Name: "b", Points: []Point{{1, 1}, {2, 2}}})
	got := c.CSV()
	want := "time,a,b\n1,0.25,1\n2,0.5,2\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestChartCSVUnevenSeries(t *testing.T) {
	c := Chart{XLabel: "x"}
	c.AddSeries(Series{Name: "long", Points: []Point{{1, 1}, {2, 2}}})
	c.AddSeries(Series{Name: "short", Points: []Point{{1, 9}}})
	got := c.CSV()
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected 3 lines, got %q", got)
	}
	if lines[2] != "2,2," {
		t.Errorf("short series should leave field empty: %q", lines[2])
	}
}

func TestChartRenderAligned(t *testing.T) {
	c := Chart{ID: "fig4a", Title: "Provider satisfaction", XLabel: "t"}
	c.AddSeries(Series{Name: "SQLB", Points: []Point{{100, 0.75}}})
	out := c.Render()
	if !strings.Contains(out, "fig4a") || !strings.Contains(out, "SQLB") {
		t.Errorf("render missing id or series name:\n%s", out)
	}
	if !strings.Contains(out, "0.75") {
		t.Errorf("render missing value:\n%s", out)
	}
}

func TestTableCSVEscaping(t *testing.T) {
	tbl := Table{Header: []string{"name", "value"}}
	tbl.AddRow(`with,comma`, `with"quote`)
	got := tbl.CSV()
	want := "name,value\n\"with,comma\",\"with\"\"quote\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestTableRender(t *testing.T) {
	tbl := Table{ID: "table3", Title: "Departures", Header: []string{"reason", "low", "med", "high"}}
	tbl.AddRow("dissat", "2%", "9%", "8%")
	out := tbl.Render()
	if !strings.Contains(out, "dissat") || !strings.Contains(out, "9%") {
		t.Errorf("missing cells:\n%s", out)
	}
	// Header separator present.
	if !strings.Contains(out, "---") {
		t.Errorf("missing separator:\n%s", out)
	}
}

func TestMergeMeans(t *testing.T) {
	runs := [][]Point{
		{{1, 1}, {2, 2}, {3, 3}},
		{{1, 3}, {2, 4}}, // shorter run truncates
	}
	s := MergeMeans("m", runs)
	if len(s.Points) != 2 {
		t.Fatalf("expected truncation to 2 points, got %d", len(s.Points))
	}
	if s.Points[0] != (Point{1, 2}) || s.Points[1] != (Point{2, 3}) {
		t.Errorf("unexpected means %v", s.Points)
	}
	if got := MergeMeans("empty", nil); len(got.Points) != 0 {
		t.Errorf("empty merge should have no points")
	}
}

func TestFormatFloat(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{1, "1"}, {0.5, "0.5"}, {0.12345, "0.1235"}, {100, "100"}, {0, "0"},
	}
	for _, tt := range tests {
		if got := formatFloat(tt.in); got != tt.want {
			t.Errorf("formatFloat(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

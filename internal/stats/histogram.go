package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram accumulates positive observations (e.g. response times in
// seconds) into exponentially-spaced buckets, cheap enough to feed from the
// simulator's hot path and accurate enough for the p50/p95/p99 quantiles
// the reports print. The zero value is not usable; call NewHistogram.
type Histogram struct {
	min     float64
	growth  float64
	lnG     float64
	buckets []uint64
	count   uint64
	pos     uint64 // positive observations (the ones sum covers)
	sum     float64
	max     float64
	under   uint64 // observations below min
}

// NewHistogram returns a histogram covering [min, min·growth^buckets) with
// the given number of exponential buckets. Typical simulator use:
// NewHistogram(0.01, 1.25, 64) spans 10 ms to ≈ 17 minutes.
func NewHistogram(min, growth float64, buckets int) *Histogram {
	if min <= 0 {
		min = 0.001
	}
	if growth <= 1 {
		growth = 1.25
	}
	if buckets < 1 {
		buckets = 64
	}
	return &Histogram{
		min:     min,
		growth:  growth,
		lnG:     math.Log(growth),
		buckets: make([]uint64, buckets),
	}
}

// DefaultResponseHistogram covers the response-time range of the paper's
// experiments (10 ms … ≈28 minutes).
func DefaultResponseHistogram() *Histogram {
	return NewHistogram(0.01, 1.25, 64)
}

// DefaultLatencyHistogram covers service-side mediation latencies
// (1 µs … ≈1 day) — the range the serving driver's p50/p95/p99 report
// feeds from.
func DefaultLatencyHistogram() *Histogram {
	return NewHistogram(1e-6, 1.3, 96)
}

// Observe records one observation. Non-positive and NaN observations count
// into the underflow bucket.
func (h *Histogram) Observe(v float64) {
	h.count++
	if !(v > 0) { // catches NaN too
		h.under++
		return
	}
	h.pos++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	if v < h.min {
		h.under++
		return
	}
	idx := int(math.Log(v/h.min) / h.lnG)
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	h.buckets[idx]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the mean of the positive observations (0 when none). sum
// only accumulates positive observations, so it is divided by their count,
// not by Count(): NaN/underflow observations land in the underflow bucket
// and must not bias the mean downward.
func (h *Histogram) Mean() float64 {
	if h.pos == 0 {
		return 0
	}
	return h.sum / float64(h.pos)
}

// Max returns the largest observation seen.
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns an estimate of the q-quantile (q ∈ [0,1]) using the
// upper edge of the bucket containing it — a conservative (pessimistic)
// estimate appropriate for latency reporting. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	cum := h.under
	if cum >= target {
		return h.min
	}
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			return h.min * math.Pow(h.growth, float64(i+1))
		}
	}
	return h.max
}

// Merge folds another histogram with identical geometry into this one.
// Histograms with different geometry are rejected.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil {
		return nil
	}
	if h.min != other.min || h.growth != other.growth || len(h.buckets) != len(other.buckets) {
		return fmt.Errorf("stats: merging histograms with different geometry")
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.count += other.count
	h.pos += other.pos
	h.sum += other.sum
	h.under += other.under
	if other.max > h.max {
		h.max = other.max
	}
	return nil
}

// String summarizes the distribution for reports.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "no observations"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.3fs p50=%.3fs p95=%.3fs p99=%.3fs max=%.3fs",
		h.count, h.Mean(), h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99), h.max)
	return b.String()
}

package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0.01, 1.25, 64)
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for i := 0; i < 100; i++ {
		h.Observe(1.0)
	}
	if h.Count() != 100 {
		t.Errorf("count = %d", h.Count())
	}
	if math.Abs(h.Mean()-1.0) > 1e-9 {
		t.Errorf("mean = %v", h.Mean())
	}
	// Quantiles are conservative (upper bucket edge): within one growth
	// factor of the true value.
	q := h.Quantile(0.5)
	if q < 1.0 || q > 1.3 {
		t.Errorf("p50 = %v, want within [1, 1.3]", q)
	}
	if h.Max() != 1.0 {
		t.Errorf("max = %v", h.Max())
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	h := DefaultResponseHistogram()
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) * 0.01) // 0.01 … 10.0
	}
	p50, p95, p99 := h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("quantiles out of order: %v %v %v", p50, p95, p99)
	}
	// True p50 is 5.0; conservative estimate within a growth factor.
	if p50 < 5.0 || p50 > 5.0*1.25 {
		t.Errorf("p50 = %v, want in [5, 6.25]", p50)
	}
	if p99 < 9.9 || p99 > 9.9*1.25 {
		t.Errorf("p99 = %v, want in [9.9, 12.4]", p99)
	}
}

func TestHistogramEdges(t *testing.T) {
	h := NewHistogram(1, 2, 4) // buckets [1,2) [2,4) [4,8) [8,∞-ish)
	h.Observe(0)               // underflow
	h.Observe(-5)              // underflow
	h.Observe(math.NaN())      // underflow
	h.Observe(0.5)             // below min
	h.Observe(1e9)             // clamps to last bucket
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got := h.Quantile(0.1); got != 1 {
		t.Errorf("quantile in underflow = %v, want min", got)
	}
	if got := h.Quantile(1); got < 8 {
		t.Errorf("p100 = %v, want the top bucket", got)
	}
}

func TestHistogramConstructorGuards(t *testing.T) {
	h := NewHistogram(-1, 0.5, 0)
	h.Observe(0.002)
	if h.Count() != 1 {
		t.Fatal("guarded histogram should still work")
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(0.01, 1.25, 64)
	b := NewHistogram(0.01, 1.25, 64)
	for i := 0; i < 50; i++ {
		a.Observe(1)
		b.Observe(4)
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.Count() != 100 {
		t.Errorf("merged count = %d", a.Count())
	}
	if math.Abs(a.Mean()-2.5) > 1e-9 {
		t.Errorf("merged mean = %v, want 2.5", a.Mean())
	}
	if a.Max() != 4 {
		t.Errorf("merged max = %v", a.Max())
	}
	if err := a.Merge(NewHistogram(0.02, 1.25, 64)); err == nil {
		t.Error("merging different geometry must fail")
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("nil merge should be a no-op: %v", err)
	}
}

func TestHistogramString(t *testing.T) {
	h := DefaultResponseHistogram()
	if got := h.String(); got != "no observations" {
		t.Errorf("empty String = %q", got)
	}
	h.Observe(1)
	if got := h.String(); !strings.Contains(got, "n=1") || !strings.Contains(got, "p99") {
		t.Errorf("String = %q", got)
	}
}

func TestHistogramMeanIgnoresUnderflow(t *testing.T) {
	// Regression: sum accumulates only positive observations, so the mean
	// must divide by the positive count — NaN/non-positive observations
	// used to deflate it (sum/count with count including them).
	h := DefaultResponseHistogram()
	h.Observe(2)
	h.Observe(4)
	h.Observe(0)          // underflow
	h.Observe(-1)         // underflow
	h.Observe(math.NaN()) // underflow
	if got := h.Mean(); math.Abs(got-3) > 1e-12 {
		t.Fatalf("mean = %v, want 3 (positive observations only)", got)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5 (underflow still counted)", h.Count())
	}
}

func TestHistogramMeanMergeProperty(t *testing.T) {
	// Merged mean equals the mean of the combined positive observations,
	// regardless of how many non-positive observations each side saw.
	f := func(raw []int16, split uint8) bool {
		a, b := DefaultResponseHistogram(), DefaultResponseHistogram()
		cut := 0
		if len(raw) > 0 {
			cut = int(split) % (len(raw) + 1)
		}
		var sum float64
		var pos uint64
		for i, v := range raw {
			x := float64(v) / 100 // mixed-sign observations
			h := a
			if i >= cut {
				h = b
			}
			h.Observe(x)
			if x > 0 {
				sum += x
				pos++
			}
		}
		if err := a.Merge(b); err != nil {
			return false
		}
		want := 0.0
		if pos > 0 {
			want = sum / float64(pos)
		}
		return math.Abs(a.Mean()-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		h := DefaultResponseHistogram()
		for _, v := range raw {
			h.Observe(math.Abs(math.Mod(v, 100)))
		}
		prev := 0.0
		for q := 0.0; q <= 1.0; q += 0.05 {
			cur := h.Quantile(q)
			if cur < prev-1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramQuantileBracketsObservationsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		h := DefaultResponseHistogram()
		maxV := 0.0
		for _, v := range raw {
			x := float64(v%1000)/100 + 0.02
			if x > maxV {
				maxV = x
			}
			h.Observe(x)
		}
		// Every quantile estimate lies within the observed range padded by
		// one growth factor.
		for _, q := range []float64{0.25, 0.5, 0.9, 0.99} {
			est := h.Quantile(q)
			if est < 0.01 || est > maxV*1.25+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Package randx provides the seeded, deterministic random-number helpers
// used across the simulator: uniform draws over preference bands,
// exponential inter-arrival times for the Poisson query process, and
// permutation/selection utilities. Every simulation component draws from a
// *Rand created from the run seed, so a run is exactly reproducible.
package randx

import "math/rand/v2"

// Rand wraps math/rand/v2 with the distributions the simulator needs.
type Rand struct {
	*rand.Rand
}

// New returns a deterministic generator for the given seed.
func New(seed uint64) *Rand {
	return &Rand{rand.New(rand.NewPCG(seed, seed^0x9E3779B97F4A7C15))}
}

// Split derives an independent generator from this one; used to give each
// subsystem (population build, arrivals, per-repetition runs) its own
// stream so adding draws in one place does not perturb the others.
func (r *Rand) Split() *Rand {
	return &Rand{rand.New(rand.NewPCG(r.Uint64(), r.Uint64()))}
}

// Uniform returns a uniform draw in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	if hi < lo {
		lo, hi = hi, lo
	}
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponential variate with the given rate (events/second),
// i.e. the inter-arrival time of a Poisson process. Non-positive rates
// return +Inf-free large values are avoided by treating them as "never":
// the caller (the arrival scheduler) checks for rate <= 0 itself, so this
// guards with a very large time rather than Inf to keep the event heap
// arithmetic finite.
func (r *Rand) Exp(rate float64) float64 {
	if rate <= 0 {
		return 1e18
	}
	return r.ExpFloat64() / rate
}

// Pick returns a uniform index in [0, n). n must be > 0.
func (r *Rand) Pick(n int) int {
	return r.IntN(n)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

package randx

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must yield the same stream")
		}
	}
	c := New(124)
	same := 0
	a = New(123)
	for i := 0; i < 100; i++ {
		if a.Float64() == c.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d identical draws of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(5)
	s1 := r.Split()
	s2 := r.Split()
	if s1.Float64() == s2.Float64() {
		t.Error("split streams should diverge")
	}
}

func TestUniformRange(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(-0.6, 0.6)
		if v < -0.6 || v >= 0.6 {
			t.Fatalf("uniform draw %v outside [-0.6, 0.6)", v)
		}
	}
	// Swapped bounds are tolerated.
	v := r.Uniform(1, 0)
	if v < 0 || v >= 1 {
		t.Errorf("swapped-bounds draw %v outside [0,1)", v)
	}
}

func TestUniformMean(t *testing.T) {
	r := New(10)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.Uniform(0.34, 1)
	}
	mean := sum / n
	if math.Abs(mean-0.67) > 0.01 {
		t.Errorf("uniform mean = %v, want ≈0.67", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := New(11)
	const rate = 2.5
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += r.Exp(rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Errorf("exponential mean = %v, want %v", mean, 1/rate)
	}
}

func TestExpNonPositiveRate(t *testing.T) {
	r := New(12)
	if got := r.Exp(0); got < 1e17 {
		t.Errorf("rate-0 inter-arrival = %v, want effectively never", got)
	}
	if got := r.Exp(-1); got < 1e17 {
		t.Errorf("negative-rate inter-arrival = %v, want effectively never", got)
	}
}

func TestPickAndPerm(t *testing.T) {
	r := New(13)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		v := r.Pick(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Pick out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Errorf("Pick over 200 draws hit %d of 5 values", len(seen))
	}
	p := r.Perm(10)
	if len(p) != 10 {
		t.Fatalf("Perm length = %d", len(p))
	}
	sum := 0
	for _, v := range p {
		sum += v
	}
	if sum != 45 {
		t.Errorf("Perm is not a permutation: sum %d", sum)
	}
}

func TestBool(t *testing.T) {
	r := New(14)
	trues := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			trues++
		}
	}
	frac := float64(trues) / n
	if math.Abs(frac-0.3) > 0.02 {
		t.Errorf("Bool(0.3) frequency = %v", frac)
	}
}

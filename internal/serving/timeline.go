package serving

import (
	"sync"
	"sync/atomic"
	"time"

	"sqlb/internal/metrics"
	"sqlb/internal/model"
	"sqlb/internal/stats"
	"sqlb/internal/timeline"
)

// timelineRecorder produces the driver's periodic timeline snapshots. It
// mirrors exactly the measured-phase accounting the final Report is built
// from — the arrival loop bumps submitted/rejected, account() bumps
// mediated/dropped/errors at the very same branch points — so the sum of
// the interval deltas it emits reconciles exactly with the Report totals.
// The mirror counters are atomics (the snapshot goroutine reads them
// live) and exist only when a timeline is configured, keeping the default
// hot path free of shared-counter traffic.
type timelineRecorder struct {
	sink     timeline.Sink
	interval time.Duration

	submitted atomic.Uint64
	rejected  atomic.Uint64
	mediated  atomic.Uint64
	dropped   atomic.Uint64
	errs      atomic.Uint64

	// win collects the measured mediation latencies since the previous
	// snapshot; swapped out whole at snapshot time so quantiles are
	// interval-local (unlike the sim, whose engine keeps one run
	// histogram).
	mu  sync.Mutex
	win *stats.Histogram

	prevTime      float64
	prevSubmitted uint64
	prevMediated  uint64
	prevRejected  uint64
	prevDropped   uint64
	prevErrs      uint64

	err error
}

func newTimelineRecorder(sink timeline.Sink, interval time.Duration) *timelineRecorder {
	return &timelineRecorder{
		sink:     sink,
		interval: interval,
		win:      stats.DefaultLatencyHistogram(),
	}
}

// observe records one measured mediation latency into the interval window.
func (t *timelineRecorder) observe(sec float64) {
	t.mu.Lock()
	t.win.Observe(sec)
	t.mu.Unlock()
}

// snapshot derives and emits one interval snapshot at the given elapsed
// run time (seconds since the driver started).
func (t *timelineRecorder) snapshot(d *Driver, elapsed float64) {
	sub := t.submitted.Load()
	med := t.mediated.Load()
	rej := t.rejected.Load()
	drp := t.dropped.Load()
	ers := t.errs.Load()

	snap := timeline.Snapshot{
		Time:       elapsed,
		Source:     "serve",
		Rejected:   float64(rej - t.prevRejected),
		Dropped:    float64(drp - t.prevDropped),
		Errors:     float64(ers - t.prevErrs),
		QueueDepth: float64(len(d.queue)),
	}
	if dt := elapsed - t.prevTime; dt > 0 {
		snap.QPSIn = float64(sub-t.prevSubmitted) / dt
		snap.QPSOut = float64(med-t.prevMediated) / dt
	}

	t.mu.Lock()
	win := t.win
	t.win = stats.DefaultLatencyHistogram()
	t.mu.Unlock()
	if win.Count() > 0 {
		snap.LatencyMean = win.Mean()
		snap.LatencyP50 = win.Quantile(0.5)
		snap.LatencyP95 = win.Quantile(0.95)
		snap.LatencyP99 = win.Quantile(0.99)
	}

	// Participant gauges are read under the server's mediation lock so no
	// commit is mid-flight. The serving path has no sim-style smoothing;
	// the raw window trackers are the live readings.
	d.srv.WithPopulation(func(pop *model.Population) {
		timeline.FillUtilization(&snap, pop, elapsed)
		provSat := metrics.Summarize(pop.ProviderValues(true, func(p *model.Provider) float64 {
			return p.Public.Satisfaction()
		}))
		snap.ProvSat = provSat.Mean
		snap.SatFairness = provSat.Fairness
		snap.AllocSat = metrics.Summarize(pop.ProviderValues(true, func(p *model.Provider) float64 {
			return p.Public.AllocationSatisfaction()
		})).Mean
		snap.ConsSat = metrics.Summarize(pop.ConsumerValues(true, func(c *model.Consumer) float64 {
			return c.Tracker.Satisfaction()
		})).Mean
	})

	t.prevTime = elapsed
	t.prevSubmitted = sub
	t.prevMediated = med
	t.prevRejected = rej
	t.prevDropped = drp
	t.prevErrs = ers

	if err := t.sink.Append(snap); err != nil && t.err == nil {
		t.err = err
	}
}

// TimelineErr reports the first error the timeline sink returned (nil
// without a sink, or on a healthy one). Kept off the Report so enabling a
// timeline never changes a run's outcome.
func (d *Driver) TimelineErr() error {
	if d.tl == nil {
		return nil
	}
	return d.tl.err
}

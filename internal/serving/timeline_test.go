package serving

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"sqlb/internal/timeline"
)

// memSink records every snapshot a run emits.
type memSink struct {
	rows []timeline.Snapshot
}

func (m *memSink) Append(s timeline.Snapshot) error {
	m.rows = append(m.rows, s)
	return nil
}

func (m *memSink) Close() error { return nil }

// reconcile sums the interval deltas of a snapshot stream back into run
// totals. Rates scale back to counts by the interval they cover; deltas
// were computed as count/dt with the same dt, so rounding the product
// recovers the exact integer.
func reconcile(rows []timeline.Snapshot) (submitted, mediated, rejected, dropped, errs uint64) {
	prev := 0.0
	for _, s := range rows {
		dt := s.Time - prev
		prev = s.Time
		submitted += uint64(math.Round(s.QPSIn * dt))
		mediated += uint64(math.Round(s.QPSOut * dt))
		rejected += uint64(s.Rejected)
		dropped += uint64(s.Dropped)
		errs += uint64(s.Errors)
	}
	return
}

// checkReconciled asserts the merged snapshot deltas equal the Report
// totals exactly — no double-count, no loss.
func checkReconciled(t *testing.T, rows []timeline.Snapshot, rep *Report) {
	t.Helper()
	if len(rows) == 0 {
		t.Fatal("run emitted no snapshots")
	}
	sub, med, rej, drp, ers := reconcile(rows)
	if sub != rep.Submitted {
		t.Errorf("Σ submitted deltas %d != Report.Submitted %d", sub, rep.Submitted)
	}
	if med != rep.Mediated {
		t.Errorf("Σ mediated deltas %d != Report.Mediated %d", med, rep.Mediated)
	}
	if rej != rep.Rejected {
		t.Errorf("Σ rejected deltas %d != Report.Rejected %d", rej, rep.Rejected)
	}
	if drp != rep.Dropped {
		t.Errorf("Σ dropped deltas %d != Report.Dropped %d", drp, rep.Dropped)
	}
	if ers != rep.Errors {
		t.Errorf("Σ error deltas %d != Report.Errors %d", ers, rep.Errors)
	}
	for i, s := range rows {
		if s.Source != "serve" {
			t.Fatalf("snapshot %d: source %q, want serve", i, s.Source)
		}
		if i > 0 && s.Time < rows[i-1].Time {
			t.Fatalf("snapshot %d: time went backwards", i)
		}
	}
}

func TestServingSnapshotsReconcile(t *testing.T) {
	sink := &memSink{}
	cfg := smallConfig()
	cfg.Timeline = sink
	cfg.SnapshotInterval = 20 * time.Millisecond
	d, err := NewDriver(cfg)
	if err != nil {
		t.Fatalf("NewDriver: %v", err)
	}
	rep, err := d.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := d.TimelineErr(); err != nil {
		t.Fatalf("TimelineErr: %v", err)
	}
	checkReconciled(t, sink.rows, rep)

	// The run was healthy, so snapshots must show real traffic and a live
	// population.
	last := sink.rows[len(sink.rows)-1]
	if last.AliveProviders == 0 || last.AliveConsumers == 0 {
		t.Errorf("population gauges empty: %+v", last)
	}
	var sawLatency bool
	for _, s := range sink.rows {
		if s.LatencyP50 > 0 && s.LatencyP50 <= s.LatencyP95 && s.LatencyP95 <= s.LatencyP99 {
			sawLatency = true
		}
	}
	if !sawLatency {
		t.Error("no snapshot carried ordered interval latency quantiles")
	}
}

func TestServingSnapshotsReconcileUnderBackpressure(t *testing.T) {
	// Overdrive a tiny queue so ErrOverloaded rejections are the dominant
	// outcome; every one of them must land in exactly one interval.
	sink := &memSink{}
	cfg := smallConfig()
	cfg.TargetQPS = 20000
	cfg.QueueDepth = 8
	cfg.Workers = 1
	cfg.Warmup = 0
	cfg.Measure = 150 * time.Millisecond
	cfg.Timeline = sink
	cfg.SnapshotInterval = 25 * time.Millisecond
	d, err := NewDriver(cfg)
	if err != nil {
		t.Fatalf("NewDriver: %v", err)
	}
	rep, err := d.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Rejected == 0 {
		t.Fatal("overdrive produced no rejections; the scenario is not exercising backpressure")
	}
	checkReconciled(t, sink.rows, rep)
	// (QueueDepth is an instantaneous gauge sampled at tick time; with a
	// fast in-memory mediator the tiny queue oscillates full→empty between
	// ticks, so the backlog shows up as the rejected count above, not as a
	// reliably nonzero depth reading.)
}

func TestServingSnapshotsReconcileUnderCancel(t *testing.T) {
	// A cancelled run is cut short; whatever was counted before the cut
	// must still reconcile exactly (the final snapshot is taken after the
	// worker drain either way).
	sink := &memSink{}
	cfg := smallConfig()
	cfg.Measure = 10 * time.Second
	cfg.Timeline = sink
	cfg.SnapshotInterval = 20 * time.Millisecond
	d, err := NewDriver(cfg)
	if err != nil {
		t.Fatalf("NewDriver: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Millisecond)
	defer cancel()
	rep, err := d.Run(ctx)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkReconciled(t, sink.rows, rep)
}

func TestServingTimelineErrKeptOffReport(t *testing.T) {
	boom := errors.New("sink failed")
	cfg := smallConfig()
	cfg.Measure = 100 * time.Millisecond
	cfg.Timeline = timeline.SinkFunc(func(timeline.Snapshot) error { return boom })
	cfg.SnapshotInterval = 20 * time.Millisecond
	d, err := NewDriver(cfg)
	if err != nil {
		t.Fatalf("NewDriver: %v", err)
	}
	if _, err := d.Run(context.Background()); err != nil {
		t.Fatalf("sink error leaked into Run's error: %v", err)
	}
	if !errors.Is(d.TimelineErr(), boom) {
		t.Fatalf("TimelineErr = %v, want the sink error", d.TimelineErr())
	}
}

func TestServingNoTimelineNoOverhead(t *testing.T) {
	// Without a sink the recorder must not exist at all — the accounting
	// hot path stays atomics-free by construction.
	d, err := NewDriver(smallConfig())
	if err != nil {
		t.Fatalf("NewDriver: %v", err)
	}
	if d.tl != nil {
		t.Fatal("recorder allocated without a configured sink")
	}
	if err := d.TimelineErr(); err != nil {
		t.Fatalf("TimelineErr without a sink: %v", err)
	}
}

package serving

import (
	"fmt"
	"strings"

	"sqlb/internal/stats"
)

// Report is the steady-state outcome of one serving run, measured over the
// post-warmup window. The JSON tags are the contract with tools/benchjson,
// which embeds a serving report into BENCH_results.json.
type Report struct {
	Method         string  `json:"method"`
	TargetQPS      float64 `json:"target_qps"`
	Providers      int     `json:"providers"`
	Consumers      int     `json:"consumers"`
	Workers        int     `json:"workers"`
	Batch          int     `json:"batch"`
	QueueDepth     int     `json:"queue_depth"`
	WarmupSeconds  float64 `json:"warmup_s"`
	MeasureSeconds float64 `json:"measure_s"`

	// Submitted counts measured-phase arrivals; every one of them ends up
	// in exactly one of Rejected (admission control), Mediated, Dropped
	// (empty Pq), or Errors — the accounting invariant the serving tests
	// pin.
	Submitted uint64 `json:"submitted"`
	Rejected  uint64 `json:"rejected"`
	Mediated  uint64 `json:"mediated"`
	Dropped   uint64 `json:"dropped"`
	Errors    uint64 `json:"errors"`
	// Degraded counts mediations that committed on partial intention
	// information (errored or timed-out collection answers).
	Degraded uint64 `json:"degraded_collections"`

	MediationsPerSec float64 `json:"mediations_per_sec"`
	LatencyMeanMs    float64 `json:"latency_mean_ms"`
	LatencyP50Ms     float64 `json:"latency_p50_ms"`
	LatencyP95Ms     float64 `json:"latency_p95_ms"`
	LatencyP99Ms     float64 `json:"latency_p99_ms"`
	LatencyMaxMs     float64 `json:"latency_max_ms"`

	// Latency is the full distribution the *Ms fields are cut from.
	Latency *stats.Histogram `json:"-"`
}

// fillLatency cuts the headline latency fields from the merged histogram.
func (r *Report) fillLatency() {
	if r.Latency == nil || r.Latency.Count() == 0 {
		return
	}
	const ms = 1000
	r.LatencyMeanMs = r.Latency.Mean() * ms
	r.LatencyP50Ms = r.Latency.Quantile(0.5) * ms
	r.LatencyP95Ms = r.Latency.Quantile(0.95) * ms
	r.LatencyP99Ms = r.Latency.Quantile(0.99) * ms
	r.LatencyMaxMs = r.Latency.Max() * ms
}

// String renders the report for the terminal.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "method            %s\n", r.Method)
	fmt.Fprintf(&b, "population        %d consumers, %d providers\n", r.Consumers, r.Providers)
	fmt.Fprintf(&b, "drive             %.0f qps open-loop, %d workers, batch %d, queue %d\n",
		r.TargetQPS, r.Workers, r.Batch, r.QueueDepth)
	fmt.Fprintf(&b, "phases            warmup %.1fs, measure %.1fs\n", r.WarmupSeconds, r.MeasureSeconds)
	fmt.Fprintf(&b, "admission         submitted %d, rejected %d (backpressure)\n", r.Submitted, r.Rejected)
	fmt.Fprintf(&b, "mediations        %d done (%.1f/sec), dropped %d, errors %d, degraded %d\n",
		r.Mediated, r.MediationsPerSec, r.Dropped, r.Errors, r.Degraded)
	fmt.Fprintf(&b, "latency           mean %.3fms, p50 %.3fms, p95 %.3fms, p99 %.3fms, max %.3fms",
		r.LatencyMeanMs, r.LatencyP50Ms, r.LatencyP95Ms, r.LatencyP99Ms, r.LatencyMaxMs)
	return b.String()
}

package serving

import (
	"context"
	"errors"
	"testing"
	"time"

	"sqlb/internal/allocator"
	"sqlb/internal/model"
)

func smallConfig() Config {
	return Config{
		Model:      model.DefaultConfig().Scale(0.05), // 10 consumers, 20 providers
		Strategy:   allocator.NewSQLB(),
		TargetQPS:  400,
		Workers:    2,
		Batch:      8,
		QueueDepth: 256,
		Warmup:     30 * time.Millisecond,
		Measure:    250 * time.Millisecond,
		Seed:       11,
	}
}

func TestDriverSmoke(t *testing.T) {
	// Open-loop smoke run at small QPS: the driver must sustain the
	// schedule, produce ordered latency quantiles, and keep the
	// submitted = rejected + mediated + dropped + errors ledger exact.
	d, err := NewDriver(smallConfig())
	if err != nil {
		t.Fatalf("NewDriver: %v", err)
	}
	rep, err := d.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Mediated == 0 {
		t.Fatal("no mediations in the measure window")
	}
	if got := rep.Rejected + rep.Mediated + rep.Dropped + rep.Errors; got != rep.Submitted {
		t.Fatalf("ledger broken: rejected %d + mediated %d + dropped %d + errors %d = %d, want submitted %d",
			rep.Rejected, rep.Mediated, rep.Dropped, rep.Errors, got, rep.Submitted)
	}
	if !(rep.LatencyP50Ms <= rep.LatencyP95Ms && rep.LatencyP95Ms <= rep.LatencyP99Ms) {
		t.Fatalf("quantiles out of order: p50 %v p95 %v p99 %v",
			rep.LatencyP50Ms, rep.LatencyP95Ms, rep.LatencyP99Ms)
	}
	if rep.MediationsPerSec <= 0 {
		t.Fatalf("mediations/sec = %v", rep.MediationsPerSec)
	}
	if rep.Degraded != 0 {
		t.Fatalf("in-process batch path reported %d degraded collections", rep.Degraded)
	}
	// The traffic really hit the providers (SetApply): someone performed
	// queries.
	var performed uint64
	for _, p := range d.Population().Providers {
		performed += p.QueriesPerformed
	}
	if performed == 0 {
		t.Fatal("no provider performed any query; allocations were not applied")
	}
}

func TestDriverSingleQueryPath(t *testing.T) {
	// Batch=1 exercises the per-query concurrent-collection path end to end.
	cfg := smallConfig()
	cfg.Batch = 1
	cfg.TargetQPS = 150
	cfg.Measure = 150 * time.Millisecond
	d, err := NewDriver(cfg)
	if err != nil {
		t.Fatalf("NewDriver: %v", err)
	}
	rep, err := d.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Mediated == 0 {
		t.Fatal("no mediations on the Batch=1 path")
	}
}

func TestSubmitBackpressure(t *testing.T) {
	// Admission control: with no workers draining (Run not called), the
	// bounded queue fills and the typed ErrOverloaded surfaces.
	cfg := smallConfig()
	cfg.QueueDepth = 4
	d, err := NewDriver(cfg)
	if err != nil {
		t.Fatalf("NewDriver: %v", err)
	}
	pop := d.Population()
	for i := 0; i < cfg.QueueDepth; i++ {
		q := &model.Query{ID: uint64(i + 1), Consumer: pop.Consumers[0], Units: 130, N: 1}
		if err := d.Submit(q); err != nil {
			t.Fatalf("submit %d within queue depth: %v", i, err)
		}
	}
	q := &model.Query{ID: 99, Consumer: pop.Consumers[0], Units: 130, N: 1}
	if err := d.Submit(q); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit into full queue: err = %v, want ErrOverloaded", err)
	}
}

func TestDriverOverloadRejects(t *testing.T) {
	// Drive far past what a tiny queue + slow draining admits: rejections
	// must show up in the report (backpressure is observable end to end).
	cfg := smallConfig()
	cfg.TargetQPS = 20000
	cfg.QueueDepth = 8
	cfg.Workers = 1
	cfg.Warmup = 0
	cfg.Measure = 120 * time.Millisecond
	d, err := NewDriver(cfg)
	if err != nil {
		t.Fatalf("NewDriver: %v", err)
	}
	rep, err := d.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Rejected == 0 {
		t.Fatalf("expected rejections under a 20k qps drive into a depth-8 queue; report: %+v", rep)
	}
}

func TestDriverConfigValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.Strategy = nil
	if _, err := NewDriver(cfg); err == nil {
		t.Fatal("strategy-less config accepted")
	}
	cfg = smallConfig()
	cfg.TargetQPS = 0
	if _, err := NewDriver(cfg); err == nil {
		t.Fatal("zero QPS accepted")
	}
	cfg = smallConfig()
	cfg.Measure = 0
	if _, err := NewDriver(cfg); err == nil {
		t.Fatal("zero measure window accepted")
	}
}

func TestDriverContextCancel(t *testing.T) {
	cfg := smallConfig()
	cfg.Measure = 10 * time.Second // cancel cuts it short
	d, err := NewDriver(cfg)
	if err != nil {
		t.Fatalf("NewDriver: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := d.Run(ctx); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("Run ignored cancellation for %v", elapsed)
	}
}

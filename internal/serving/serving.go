// Package serving drives the mediator as a long-lived service — the
// production counterpart of Figure 1 that the discrete-event simulator
// abstracts away. It supplies the open-loop load driver of the ROADMAP's
// mediator-as-a-service item: queries arrive on a Poisson schedule at a
// target QPS regardless of how fast mediations complete (so a saturated
// mediator falls behind instead of silently slowing the workload), a
// bounded submit queue applies admission control with a typed ErrOverloaded
// rejection, a worker pool mediates the admitted arrivals in batches
// (mediator.Server.MediateBatch amortizes matchmaking and the intention
// vectors per batch), and a warmup/measure phase split yields a
// steady-state report: mediations/sec and p50/p95/p99 mediation latency
// from stats.Histogram, plus the rejection, drop, and degraded-collection
// counts that the serving-accounting bugfixes made trustworthy.
package serving

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"sqlb/internal/allocator"
	"sqlb/internal/matchmaking"
	"sqlb/internal/mediator"
	"sqlb/internal/model"
	"sqlb/internal/randx"
	"sqlb/internal/stats"
	"sqlb/internal/timeline"
	"sqlb/internal/workload"
)

// ErrOverloaded is the admission-control rejection: the submit queue is
// full because mediation throughput cannot keep up with the arrival rate
// (providers or the mediator itself are saturated). Open-loop clients see
// it immediately instead of queueing without bound.
var ErrOverloaded = errors.New("serving: submit queue full, mediation cannot keep up with arrivals")

// Config configures one serving run.
type Config struct {
	// Model builds the population the server mediates over.
	Model model.Config
	// Strategy is the allocation method under load.
	Strategy allocator.Allocator
	// TargetQPS is the open-loop arrival rate (queries/second).
	TargetQPS float64
	// Workers is the mediation worker-pool size (0 = GOMAXPROCS).
	Workers int
	// Batch is the maximum mediations per batch (0 = 16). 1 uses the
	// per-query concurrent-collection path (Server.Mediate) instead of
	// MediateBatch.
	Batch int
	// QueueDepth bounds the submit queue (0 = 1024); arrivals that find it
	// full are rejected with ErrOverloaded.
	QueueDepth int
	// Warmup is discarded from the report; Measure is the steady-state
	// observation window.
	Warmup  time.Duration
	Measure time.Duration
	// CollectTimeout bounds each intention collection on the Batch=1 path
	// (0 = 50ms).
	CollectTimeout time.Duration
	// Seed derives the population, workload, and arrival randomness.
	Seed uint64
	// Timeline, when non-nil, receives one timeline.Snapshot per
	// SnapshotInterval during the run plus a final one after the worker
	// pool drains, with measured-phase interval deltas that sum exactly to
	// the Report totals. The driver does not close the sink; the first
	// Append error surfaces via Driver.TimelineErr.
	Timeline timeline.Sink
	// SnapshotInterval is the timeline snapshot cadence (0 = 1s). Ignored
	// without a Timeline sink.
	SnapshotInterval time.Duration
}

func (c *Config) withDefaults() error {
	if c.Strategy == nil {
		return errors.New("serving: config needs a strategy")
	}
	if c.TargetQPS <= 0 {
		return errors.New("serving: target QPS must be positive")
	}
	if c.Measure <= 0 {
		return errors.New("serving: measure window must be positive")
	}
	if err := c.Model.Validate(); err != nil {
		return fmt.Errorf("serving: %w", err)
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Batch <= 0 {
		c.Batch = 16
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.CollectTimeout <= 0 {
		c.CollectTimeout = 50 * time.Millisecond
	}
	if c.SnapshotInterval <= 0 {
		c.SnapshotInterval = time.Second
	}
	return nil
}

// submission is one admitted arrival: the minted query plus the open-loop
// schedule slot it was due at. Latency is measured from the scheduled
// arrival, not the submit instant, so queue delay under overload is not
// hidden (the coordinated-omission trap).
type submission struct {
	q         *model.Query
	scheduled time.Time
	measured  bool
}

// Driver owns one serving run: the population, the mediation server, and
// the bounded submit queue.
type Driver struct {
	cfg   Config
	pop   *model.Population
	srv   *mediator.Server
	gen   *workload.Generator
	arr   *randx.Rand
	queue chan *submission
	// tl mirrors the measured-phase accounting into timeline snapshots;
	// nil when Config.Timeline is unset (the default hot path then touches
	// no atomics).
	tl *timelineRecorder
}

// NewDriver builds the population from the config seed, wires a mediation
// server over it (indexed matchmaking, allocations applied to provider
// queues so Definition 8's load term reacts to the mediated traffic), and
// allocates the bounded submit queue.
func NewDriver(cfg Config) (*Driver, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	master := randx.New(cfg.Seed)
	popRng := master.Split()
	genRng := master.Split()
	arrRng := master.Split()
	pop := model.NewPopulation(cfg.Model, popRng, 0)
	gen := workload.NewGenerator(cfg.Model.QueryClasses, cfg.Model.QueryN, genRng)
	gen.SetClassWeights(cfg.Model.ClassWeights())
	srv := mediator.NewServer(cfg.Strategy, pop, cfg.CollectTimeout, nil)
	srv.SetMatchmaker(matchmaking.BuildIndex(pop))
	srv.SetApply(true)
	d := &Driver{
		cfg:   cfg,
		pop:   pop,
		srv:   srv,
		gen:   gen,
		arr:   arrRng,
		queue: make(chan *submission, cfg.QueueDepth),
	}
	if cfg.Timeline != nil {
		d.tl = newTimelineRecorder(cfg.Timeline, cfg.SnapshotInterval)
	}
	return d, nil
}

// Population exposes the driver's population (read-only; reports and tests).
func (d *Driver) Population() *model.Population { return d.pop }

// Submit offers one externally minted query to the submit queue — the
// admission-control edge. It never blocks: a full queue rejects with
// ErrOverloaded. Run's arrival loop uses the same path for its own
// schedule; tests use Submit directly to observe backpressure.
func (d *Driver) Submit(q *model.Query) error {
	return d.offer(&submission{q: q, scheduled: time.Now()})
}

func (d *Driver) offer(sub *submission) error {
	select {
	case d.queue <- sub:
		return nil
	default:
		return ErrOverloaded
	}
}

// workerStats is one worker's private slice of the accounting; merged after
// the pool drains so no counter needs atomics on the hot path.
type workerStats struct {
	hist     *stats.Histogram
	mediated uint64
	dropped  uint64
	degraded uint64
	errs     uint64
	firstErr error
	lastDone time.Time
}

// Run executes the serving schedule: warmup, then the measure window, then
// a drain of the admitted backlog. It returns the steady-state report; a
// non-nil error is a strategy or wiring failure (per-query drops and
// rejections are report rows, not errors).
func (d *Driver) Run(ctx context.Context) (*Report, error) {
	workers := make([]*workerStats, d.cfg.Workers)
	done := make(chan struct{})
	for i := range workers {
		ws := &workerStats{hist: stats.DefaultLatencyHistogram()}
		workers[i] = ws
		go func() {
			defer func() { done <- struct{}{} }()
			d.work(ctx, ws)
		}()
	}

	start := time.Now()
	warmupEnd := start.Add(d.cfg.Warmup)
	end := warmupEnd.Add(d.cfg.Measure)
	var submitted, rejected uint64

	// The snapshot ticker runs for as long as workers do; the final
	// snapshot is taken after the pool drains, so the last interval delta
	// closes the books exactly on the Report totals.
	var tlStop chan struct{}
	var tlDone chan struct{}
	if d.tl != nil {
		tlStop = make(chan struct{})
		tlDone = make(chan struct{})
		go func() {
			defer close(tlDone)
			ticker := time.NewTicker(d.cfg.SnapshotInterval)
			defer ticker.Stop()
			for {
				select {
				case <-tlStop:
					return
				case <-ticker.C:
					d.tl.snapshot(d, time.Since(start).Seconds())
				}
			}
		}()
	}

	next := start
	for {
		gap := d.arr.Exp(d.cfg.TargetQPS)
		next = next.Add(time.Duration(gap * float64(time.Second)))
		if next.After(end) {
			break
		}
		if wait := time.Until(next); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			break
		}
		c := d.pop.Consumers[d.arr.Pick(len(d.pop.Consumers))]
		q := d.gen.Next(time.Since(start).Seconds(), c)
		measured := !next.Before(warmupEnd)
		if measured {
			submitted++
			if d.tl != nil {
				d.tl.submitted.Add(1)
			}
		}
		if err := d.offer(&submission{q: q, scheduled: next, measured: measured}); err != nil {
			if measured {
				rejected++
				if d.tl != nil {
					d.tl.rejected.Add(1)
				}
			}
		}
	}
	close(d.queue)
	for range workers {
		<-done
	}
	if d.tl != nil {
		close(tlStop)
		<-tlDone
		d.tl.snapshot(d, time.Since(start).Seconds())
	}

	r := &Report{
		Method:         d.cfg.Strategy.Name(),
		TargetQPS:      d.cfg.TargetQPS,
		Providers:      len(d.pop.Providers),
		Consumers:      len(d.pop.Consumers),
		Workers:        d.cfg.Workers,
		Batch:          d.cfg.Batch,
		QueueDepth:     d.cfg.QueueDepth,
		WarmupSeconds:  d.cfg.Warmup.Seconds(),
		MeasureSeconds: d.cfg.Measure.Seconds(),
		Submitted:      submitted,
		Rejected:       rejected,
		Latency:        stats.DefaultLatencyHistogram(),
	}
	var err error
	lastDone := warmupEnd
	for _, ws := range workers {
		r.Mediated += ws.mediated
		r.Dropped += ws.dropped
		r.Degraded += ws.degraded
		r.Errors += ws.errs
		if err == nil {
			err = ws.firstErr
		}
		if ws.lastDone.After(lastDone) {
			lastDone = ws.lastDone
		}
		if mergeErr := r.Latency.Merge(ws.hist); mergeErr != nil && err == nil {
			err = mergeErr
		}
	}
	elapsed := lastDone.Sub(warmupEnd).Seconds()
	if elapsed < d.cfg.Measure.Seconds() {
		elapsed = d.cfg.Measure.Seconds()
	}
	if elapsed > 0 {
		r.MediationsPerSec = float64(r.Mediated) / elapsed
	}
	r.fillLatency()
	return r, err
}

// work is one pool worker: pull an admitted submission, greedily coalesce
// up to Batch-1 more without blocking, mediate the batch, account each
// outcome. Latency is observed at commit time against the open-loop
// schedule slot.
func (d *Driver) work(ctx context.Context, ws *workerStats) {
	batch := make([]*submission, 0, d.cfg.Batch)
	qs := make([]*model.Query, 0, d.cfg.Batch)
	for sub := range d.queue {
		batch = append(batch[:0], sub)
	coalesce:
		for len(batch) < d.cfg.Batch {
			select {
			case more, ok := <-d.queue:
				if !ok {
					break coalesce
				}
				batch = append(batch, more)
			default:
				break coalesce
			}
		}
		if d.cfg.Batch <= 1 {
			alloc, err := d.srv.Mediate(ctx, batch[0].q)
			d.account(ws, batch[0], alloc, err)
			continue
		}
		qs = qs[:0]
		for _, s := range batch {
			qs = append(qs, s.q)
		}
		for i, res := range d.srv.MediateBatch(ctx, qs) {
			d.account(ws, batch[i], res.Alloc, res.Err)
		}
	}
}

func (d *Driver) account(ws *workerStats, sub *submission, alloc *mediator.Allocation, err error) {
	if err != nil {
		if !sub.measured {
			return
		}
		if errors.Is(err, mediator.ErrNoProviders) {
			ws.dropped++
			if d.tl != nil {
				d.tl.dropped.Add(1)
			}
			return
		}
		ws.errs++
		if d.tl != nil {
			d.tl.errs.Add(1)
		}
		// A cancelled run is cut short, not broken: the queued backlog
		// fails mediation with the dead context, which belongs in the
		// error count but is not a strategy or wiring failure.
		if ws.firstErr == nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			ws.firstErr = err
		}
		return
	}
	if !sub.measured {
		return
	}
	now := time.Now()
	ws.mediated++
	ws.lastDone = now
	lat := now.Sub(sub.scheduled).Seconds()
	ws.hist.Observe(lat)
	if d.tl != nil {
		d.tl.mediated.Add(1)
		d.tl.observe(lat)
	}
	if alloc.Degraded() {
		ws.degraded++
	}
}

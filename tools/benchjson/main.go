// Command benchjson converts `go test -bench` output on stdin into a JSON
// regression record. `make bench` pipes the benchmark suite through it to
// produce BENCH_results.json, giving future PRs a perf trajectory to diff
// against:
//
//	go test -run '^$' -bench ... | go run ./tools/benchjson -out BENCH_results.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line. Extra metrics reported via
// b.ReportMetric (unit → value) ride along in Metrics.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole BENCH_results.json document. Serving holds an
// embedded sqlb-serve JSON report (mediations/sec + latency percentiles)
// when `-serving file` points at one.
type Report struct {
	GoVersion  string          `json:"go_version"`
	GOOS       string          `json:"goos"`
	GOARCH     string          `json:"goarch"`
	CPUs       int             `json:"cpus"`
	Benchmarks []Benchmark     `json:"benchmarks"`
	Serving    json.RawMessage `json:"serving,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH_results.json", "output file")
	serving := flag.String("serving", "", "sqlb-serve -json report to embed under the \"serving\" key (missing file = warn, not fail)")
	flag.Parse()

	// Load the previous record (if any) before overwriting it, so the run
	// ends with a delta table against the last committed trajectory point.
	previous := loadPrevious(*out)

	report := Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // stay transparent: the human-readable output passes through
		if b, ok := parseLine(line); ok {
			report.Benchmarks = append(report.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	// The serving record is optional: a bench run without a prior sqlb-serve
	// pass should still produce a valid BENCH_results.json.
	if *serving != "" {
		data, err := os.ReadFile(*serving)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: serving report skipped: %v\n", err)
		} else if !json.Valid(data) {
			fmt.Fprintf(os.Stderr, "benchjson: serving report %s skipped: not valid JSON\n", *serving)
		} else {
			report.Serving = json.RawMessage(data)
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(report.Benchmarks), *out)
	printDelta(os.Stdout, previous, report.Benchmarks)
}

// loadPrevious reads the benchmarks from an existing results file into a
// name-indexed map. A missing or malformed file just means no delta table.
func loadPrevious(path string) map[string]Benchmark {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var prev Report
	if err := json.Unmarshal(data, &prev); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: previous %s unreadable, skipping delta: %v\n", path, err)
		return nil
	}
	out := make(map[string]Benchmark, len(prev.Benchmarks))
	for _, b := range prev.Benchmarks {
		out[b.Name] = b
	}
	return out
}

// printDelta renders a ns/op + B/op + allocs/op comparison of the fresh run
// against the previous record, one row per benchmark present in both. The
// table makes perf regressions visible in the `make bench` output itself
// instead of only in the git diff of BENCH_results.json.
func printDelta(w io.Writer, prev map[string]Benchmark, cur []Benchmark) {
	if len(prev) == 0 {
		return
	}
	rows := 0
	for _, b := range cur {
		if _, ok := prev[b.Name]; ok {
			rows++
		}
	}
	if rows == 0 {
		return
	}
	fmt.Fprintf(w, "\ndelta vs previous record (old -> new):\n")
	fmt.Fprintf(w, "%-44s %26s %26s %18s\n", "benchmark", "ns/op", "B/op", "allocs/op")
	for _, b := range cur {
		p, ok := prev[b.Name]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "%-44s %26s %26s %18s\n", b.Name,
			deltaCell(p.NsPerOp, b.NsPerOp),
			deltaCell(p.Metrics["B/op"], b.Metrics["B/op"]),
			deltaCell(p.Metrics["allocs/op"], b.Metrics["allocs/op"]))
	}
}

// deltaCell formats "old -> new (+x%)" for one metric; a metric absent on
// both sides renders as "-", and a zero baseline suppresses the percentage.
func deltaCell(old, cur float64) string {
	if old == 0 && cur == 0 {
		return "-"
	}
	if old == 0 {
		return fmt.Sprintf("0 -> %s", fmtNum(cur))
	}
	pct := (cur - old) / old * 100
	return fmt.Sprintf("%s -> %s (%+.1f%%)", fmtNum(old), fmtNum(cur), pct)
}

// fmtNum trims benchmark numbers for table cells: integers print bare, small
// fractions keep two decimals.
func fmtNum(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	if v < 100 {
		return strconv.FormatFloat(v, 'f', 2, 64)
	}
	return strconv.FormatFloat(v, 'f', 0, 64)
}

// trimProcSuffix strips the trailing "-<GOMAXPROCS>" go test appends to
// benchmark names, so records diff cleanly across machines.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 {
		return name
	}
	for _, ch := range name[i+1:] {
		if ch < '0' || ch > '9' {
			return name
		}
	}
	return name[:i]
}

// parseLine parses one benchmark result line, e.g.
//
//	BenchmarkRankTop400n4-8   123456   9876 ns/op   12 extra-metric   3 B/op
//
// Lines that do not start with "Benchmark" (headers, PASS, ok) are skipped.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       trimProcSuffix(fields[0]),
		Iterations: iters,
	}
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Metrics == nil {
			b.Metrics = map[string]float64{}
		}
		b.Metrics[unit] = v
	}
	if b.NsPerOp == 0 && b.Metrics == nil {
		return Benchmark{}, false
	}
	return b, true
}

// Command benchjson converts `go test -bench` output on stdin into a JSON
// regression record. `make bench` pipes the benchmark suite through it to
// produce BENCH_results.json, giving future PRs a perf trajectory to diff
// against:
//
//	go test -run '^$' -bench ... | go run ./tools/benchjson -out BENCH_results.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line. Extra metrics reported via
// b.ReportMetric (unit → value) ride along in Metrics.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole BENCH_results.json document. Serving holds an
// embedded sqlb-serve JSON report (mediations/sec + latency percentiles)
// when `-serving file` points at one.
type Report struct {
	GoVersion  string          `json:"go_version"`
	GOOS       string          `json:"goos"`
	GOARCH     string          `json:"goarch"`
	CPUs       int             `json:"cpus"`
	Benchmarks []Benchmark     `json:"benchmarks"`
	Serving    json.RawMessage `json:"serving,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH_results.json", "output file")
	serving := flag.String("serving", "", "sqlb-serve -json report to embed under the \"serving\" key (missing file = warn, not fail)")
	flag.Parse()

	report := Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // stay transparent: the human-readable output passes through
		if b, ok := parseLine(line); ok {
			report.Benchmarks = append(report.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	// The serving record is optional: a bench run without a prior sqlb-serve
	// pass should still produce a valid BENCH_results.json.
	if *serving != "" {
		data, err := os.ReadFile(*serving)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: serving report skipped: %v\n", err)
		} else if !json.Valid(data) {
			fmt.Fprintf(os.Stderr, "benchjson: serving report %s skipped: not valid JSON\n", *serving)
		} else {
			report.Serving = json.RawMessage(data)
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(report.Benchmarks), *out)
}

// trimProcSuffix strips the trailing "-<GOMAXPROCS>" go test appends to
// benchmark names, so records diff cleanly across machines.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 {
		return name
	}
	for _, ch := range name[i+1:] {
		if ch < '0' || ch > '9' {
			return name
		}
	}
	return name[:i]
}

// parseLine parses one benchmark result line, e.g.
//
//	BenchmarkRankTop400n4-8   123456   9876 ns/op   12 extra-metric   3 B/op
//
// Lines that do not start with "Benchmark" (headers, PASS, ok) are skipped.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       trimProcSuffix(fields[0]),
		Iterations: iters,
	}
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Metrics == nil {
			b.Metrics = map[string]float64{}
		}
		b.Metrics[unit] = v
	}
	if b.NsPerOp == 0 && b.Metrics == nil {
		return Benchmark{}, false
	}
	return b, true
}

// Command covergate enforces the repository's statement-coverage floor.
// It reads a Go cover profile (go test -coverprofile), computes the total
// statement coverage the same way `go tool cover -func` does — covered
// statements over all statements — prints a per-package breakdown, and
// exits non-zero when the total falls below -min. The floor in the
// Makefile is the recorded baseline minus a small margin, so a PR that
// loses coverage fails CI while normal fluctuation passes.
//
// Usage:
//
//	go test -coverprofile=coverage.out ./...
//	go run ./tools/covergate -profile coverage.out -min 80
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

type tally struct{ covered, total int }

func main() {
	profile := flag.String("profile", "coverage.out", "cover profile written by go test -coverprofile")
	min := flag.Float64("min", 0, "minimum total statement coverage in percent (0 disables the gate)")
	flag.Parse()

	perPkg, all, err := read(*profile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "covergate: %v\n", err)
		os.Exit(1)
	}

	pkgs := make([]string, 0, len(perPkg))
	for pkg := range perPkg {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	for _, pkg := range pkgs {
		t := perPkg[pkg]
		fmt.Printf("%-40s %6.1f%% (%d/%d statements)\n", pkg, pct(t), t.covered, t.total)
	}
	total := pct(all)
	fmt.Printf("%-40s %6.1f%% (%d/%d statements)\n", "total", total, all.covered, all.total)

	if *min > 0 && total < *min {
		fmt.Fprintf(os.Stderr, "covergate: total coverage %.1f%% is below the %.1f%% floor\n", total, *min)
		os.Exit(1)
	}
}

func pct(t tally) float64 {
	if t.total == 0 {
		return 0
	}
	return 100 * float64(t.covered) / float64(t.total)
}

// read parses the profile: a "mode:" header, then one line per block —
// file:start,end numStatements hitCount.
func read(path string) (map[string]tally, tally, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, tally{}, err
	}
	defer f.Close()

	perPkg := map[string]tally{}
	var all tally
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "mode:") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, tally{}, fmt.Errorf("%s:%d: malformed block %q", path, line, text)
		}
		file, _, ok := strings.Cut(fields[0], ":")
		if !ok {
			return nil, tally{}, fmt.Errorf("%s:%d: malformed position %q", path, line, fields[0])
		}
		stmts, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, tally{}, fmt.Errorf("%s:%d: bad statement count %q", path, line, fields[1])
		}
		count, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, tally{}, fmt.Errorf("%s:%d: bad hit count %q", path, line, fields[2])
		}
		pkg := file
		if i := strings.LastIndexByte(file, '/'); i >= 0 {
			pkg = file[:i]
		}
		t := perPkg[pkg]
		t.total += stmts
		all.total += stmts
		if count > 0 {
			t.covered += stmts
			all.covered += stmts
		}
		perPkg[pkg] = t
	}
	if err := sc.Err(); err != nil {
		return nil, tally{}, err
	}
	if all.total == 0 {
		return nil, tally{}, fmt.Errorf("%s: no coverage blocks found", path)
	}
	return perPkg, all, nil
}

// Autonomy: the paper's Section 6.3.2 experiment at 80% workload. Runs the
// three allocation methods with fully autonomous participants and prints
// who left, why, and what it did to response times — a miniature of
// Table 3 and Figures 5-6.
//
//	go run ./examples/autonomy
package main

import (
	"fmt"

	"sqlb"
)

func main() {
	fmt.Println("80% workload, full autonomy (dissatisfaction, starvation, overutilization)")
	fmt.Println()
	fmt.Printf("%-15s %10s %10s %8s  %s\n", "method", "prov.loss", "cons.loss", "resp(s)", "departure reasons")

	for _, strategy := range []sqlb.Allocator{
		sqlb.NewSQLB(), sqlb.NewMariposaLike(), sqlb.NewCapacityBased(),
	} {
		opts := sqlb.SimOptions{
			Config:   sqlb.DefaultConfig().Scale(0.25),
			Strategy: strategy,
			Workload: sqlb.ConstantWorkload(0.8),
			Duration: 5000,
			Seed:     42,
			Autonomy: sqlb.FullAutonomy(),
		}
		simu, err := sqlb.NewSimulation(opts)
		if err != nil {
			panic(err)
		}
		res := simu.Run()

		reasons := map[sqlb.DepartureReason]int{}
		byCap := map[sqlb.ClassLevel]int{}
		for _, d := range res.ProviderDepartures {
			reasons[d.Reason]++
			byCap[d.Cap]++
		}
		reasonStr := ""
		for _, r := range []sqlb.DepartureReason{
			sqlb.ReasonDissatisfaction, sqlb.ReasonStarvation, sqlb.ReasonOverutilization,
		} {
			if reasons[r] > 0 {
				reasonStr += fmt.Sprintf("%s:%d ", r, reasons[r])
			}
		}
		if reasonStr == "" {
			reasonStr = "none"
		}
		fmt.Printf("%-15s %9.0f%% %9.0f%% %8.1f  %s\n",
			res.Method,
			100*res.ProviderDepartureRate(),
			100*res.ConsumerDepartureRate(),
			res.MeanResponseTime,
			reasonStr)
		if len(byCap) > 0 {
			fmt.Printf("%-15s departures by capacity class: low %d, med %d, high %d\n",
				"", byCap[sqlb.Low], byCap[sqlb.Medium], byCap[sqlb.High])
		}
	}

	fmt.Println()
	fmt.Println("The paper's headline (Section 6.3.2): SQLB keeps the high-interest,")
	fmt.Println("high-adaptation, high-capacity providers and loses no consumers, while the")
	fmt.Println("baselines bleed providers (capacity-based by dissatisfaction, Mariposa-like")
	fmt.Println("by overutilization) and more than 20% of their consumers.")
}

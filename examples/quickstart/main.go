// Quickstart: build a small mediation system, allocate queries with SQLB,
// and watch the §3 satisfaction characteristics evolve.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"sqlb"
)

func main() {
	// A tenth of the paper's population: 20 consumers, 40 providers, with
	// the published interest/adaptation/capacity class mix.
	cfg := sqlb.DefaultConfig().Scale(0.1)
	pop := sqlb.NewPopulation(cfg, 42)
	med := sqlb.NewMediator(sqlb.NewSQLB())

	fmt.Printf("population: %d consumers, %d providers, total capacity %.0f units/s\n\n",
		len(pop.Consumers), len(pop.Providers), pop.TotalCapacity())

	// Issue a burst of queries from every consumer and apply the
	// allocations to the providers' queues.
	now := 0.0
	var qid uint64
	for round := 0; round < 25; round++ {
		for _, c := range pop.Consumers {
			qid++
			q := &sqlb.Query{
				ID: qid, Consumer: c,
				Class: int(qid) % len(cfg.QueryClasses),
				Units: cfg.QueryClasses[int(qid)%len(cfg.QueryClasses)].Units,
				N:     1, IssuedAt: now,
			}
			alloc, err := med.Allocate(now, q, pop)
			if err != nil {
				panic(err)
			}
			for _, p := range alloc.SelectedProviders() {
				p.Assign(now, q.Units)
			}
			now += 0.05
		}
	}

	// §4 metrics over the population after 500 queries.
	provSat := pop.ProviderValues(true, func(p *sqlb.Provider) float64 {
		return p.Public.Satisfaction()
	})
	consSat := pop.ConsumerValues(true, func(c *sqlb.Consumer) float64 {
		return c.Tracker.Satisfaction()
	})
	consAllocSat := pop.ConsumerValues(true, func(c *sqlb.Consumer) float64 {
		return c.Tracker.AllocationSatisfaction()
	})

	fmt.Println("after", qid, "queries under SQLB:")
	fmt.Printf("  provider satisfaction (intention-based): µ=%.3f f=%.3f σ=%.3f\n",
		sqlb.Mean(provSat), sqlb.Fairness(provSat), sqlb.Balance(provSat))
	fmt.Printf("  consumer satisfaction:                   µ=%.3f f=%.3f\n",
		sqlb.Mean(consSat), sqlb.Fairness(consSat))
	fmt.Printf("  consumer allocation satisfaction:        µ=%.3f (>1 means the method works for them)\n",
		sqlb.Mean(consAllocSat))

	// Peek at one consumer: how its view decomposes.
	c := pop.Consumers[0]
	fmt.Printf("\nconsumer 0: δa=%.3f δs=%.3f δas=%.3f over %d queries\n",
		c.Tracker.Adequation(), c.Tracker.Satisfaction(),
		c.Tracker.AllocationSatisfaction(), c.Tracker.Queries())
}

// Reputation: the Definition 7 trade-off between a consumer's own
// preferences and provider reputation. A newcomer consumer with no
// experience (υ < 0.5 — "if a consumer does not have any past experience
// with a provider, it pays more attention to the reputation of p") follows
// the crowd; a veteran (υ = 1) follows only itself. With the
// feedback-driven reputation extension enabled, rep(p) converges to the
// consumer consensus, so the newcomer ends up allocating like the crowd
// would.
//
//	go run ./examples/reputation
package main

import (
	"fmt"

	"sqlb"
)

func main() {
	cfg := sqlb.DefaultConfig().Scale(0.1)
	cfg.ReputationFeedbackAlpha = 0.05 // consumers rate providers after every query
	cfg.Upsilon = 1                    // the population at large trusts its own preferences

	opts := sqlb.SimOptions{
		Config:   cfg,
		Strategy: sqlb.NewSQLB(),
		Workload: sqlb.ConstantWorkload(0.6),
		Duration: 1500,
		Seed:     21,
	}
	simu, err := sqlb.NewSimulation(opts)
	if err != nil {
		panic(err)
	}
	pop := simu.Population()

	// Snapshot reputations before the market runs.
	before := map[int]float64{}
	for _, p := range pop.Providers {
		before[p.ID] = p.Reputation
	}
	simu.Run()

	fmt.Println("feedback-driven reputation after 1500s of trading:")
	fmt.Printf("%-4s %-9s %10s %10s %12s\n", "prov", "interest", "rep before", "rep after", "consensus")
	shown := 0
	for _, p := range pop.Providers {
		if shown >= 8 {
			break
		}
		consensus := 0.0
		for _, c := range pop.Consumers {
			consensus += c.Preference(p, 0)
		}
		consensus /= float64(len(pop.Consumers))
		fmt.Printf("p%-3d %-9s %10.2f %10.2f %12.2f\n",
			p.ID, p.InterestClass, before[p.ID], p.Reputation, consensus)
		shown++
	}

	// Now ask: where would a newcomer (υ = 0.2) send a query, versus a
	// veteran (υ = 1) with idiosyncratic tastes?
	newcomer := pop.Consumers[0]
	veteran := pop.Consumers[1]
	newcomer.Upsilon = 0.2
	veteran.Upsilon = 1

	med := sqlb.NewMediator(sqlb.NewSQLB())
	pick := func(c *sqlb.Consumer, label string) {
		q := &sqlb.Query{ID: 999, Consumer: c, Class: 0, Units: 130, N: 1}
		alloc, err := med.Allocate(1500, q, pop)
		if err != nil {
			panic(err)
		}
		p := alloc.SelectedProviders()[0]
		fmt.Printf("\n%s (υ=%.1f) allocates to p%d (interest class %s, reputation %.2f, own pref %.2f)\n",
			label, c.Upsilon, p.ID, p.InterestClass, p.Reputation, c.Preference(p, 0))
	}
	pick(newcomer, "newcomer")
	pick(veteran, "veteran")

	fmt.Println("\nThe newcomer leans on the market's accumulated reputation; the veteran")
	fmt.Println("on its own history — the υ knob of Definition 7, end to end.")
}

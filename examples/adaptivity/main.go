// Adaptivity: the paper's Example 1. A courier company promotes a new
// international shipping service — during the campaign it prefers
// international queries (class 1); once the campaign ends its preferences
// flip back to national ones (class 0). SQLB adapts the allocation stream
// without any reconfiguration: intentions are recomputed per query, so the
// provider's share of each class follows its preferences.
//
//	go run ./examples/adaptivity
package main

import (
	"fmt"

	"sqlb"
)

func main() {
	cfg := sqlb.DefaultConfig()
	cfg.Consumers = 10
	cfg.Providers = 20
	pop := sqlb.NewPopulation(cfg, 7)
	med := sqlb.NewMediator(sqlb.NewSQLB())

	// The courier company: provider 0. Make it visible to consumers.
	courier := pop.Providers[0]
	for _, c := range pop.Consumers {
		c.SetPreference(courier.ID, 0.8)
	}

	phase := func(name string, national, international float64, rounds int, start float64) (natShare, intlShare float64) {
		courier.SetPreference(0, national)      // class 0 = national
		courier.SetPreference(1, international) // class 1 = international
		var got [2]int
		var total [2]int
		now := start
		var qid uint64 = uint64(start*1000) + 1
		for r := 0; r < rounds; r++ {
			for _, c := range pop.Consumers {
				class := int(qid) % 2
				q := &sqlb.Query{
					ID: qid, Consumer: c, Class: class,
					Units: cfg.QueryClasses[class].Units, N: 1, IssuedAt: now,
				}
				alloc, err := med.Allocate(now, q, pop)
				if err != nil {
					panic(err)
				}
				total[class]++
				for _, p := range alloc.SelectedProviders() {
					p.Assign(now, q.Units)
					if p == courier {
						got[class]++
					}
				}
				now += 0.2
				qid++
			}
			// Long-run self-assessment tick (the simulator does this on a
			// schedule; here we do it per round).
			for _, p := range pop.Providers {
				p.Smooth(0.05, now)
			}
		}
		natShare = share(got[0], total[0])
		intlShare = share(got[1], total[1])
		fmt.Printf("%-28s courier gets %5.1f%% of national, %5.1f%% of international queries (δs=%.2f)\n",
			name, natShare, intlShare, courier.SmoothSat)
		return natShare, intlShare
	}

	fmt.Println("courier company preference shifts under SQLB:")
	n1, i1 := phase("campaign: international", -0.4, 0.9, 60, 0)
	n2, i2 := phase("campaign over: national", 0.9, -0.4, 60, 1000)

	fmt.Println()
	switch {
	case i1 > n1 && n2 > i2:
		fmt.Println("allocation followed the preference flip — no reconfiguration, just intentions.")
	default:
		fmt.Println("unexpected: allocation did not follow the preference flip")
	}
}

func share(got, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(got) / float64(total)
}

// E-marketplace: the paper's Section 1.1 motivating scenario. eWine asks
// the mediator for two international-shipping providers; five candidates
// answer with their intentions (Table 1 of the paper); the mediator
// collects intentions *concurrently with a timeout* (Algorithm 1, lines
// 2-5 — one of the providers is slow and defaults to indifference) and
// allocates by Definition 9 scores.
//
//	go run ./examples/emarketplace
package main

import (
	"context"
	"fmt"
	"time"

	"sqlb"
	"sqlb/internal/core"
)

// shippingProvider is a provider endpoint with a scripted intention and
// response latency — standing in for a remote company site.
type shippingProvider struct {
	name      string
	intention float64
	latency   time.Duration
}

func (s shippingProvider) Intention(ctx context.Context, _ *sqlb.Query) (float64, error) {
	select {
	case <-time.After(s.latency):
		return s.intention, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// eWine is the consumer endpoint: its intentions per provider are scripted
// to the Table 1 values.
type eWine struct {
	intentions map[int]float64
}

func (c eWine) Intention(_ context.Context, _ *sqlb.Query, p *sqlb.Provider) (float64, error) {
	return c.intentions[p.ID], nil
}

func main() {
	// Five candidate shipping companies. p5 is overloaded (its own
	// intention would be negative once asked about utilization), p2/p4 do
	// not intend to deal with the query, and eWine does not trust p1/p3.
	cfg := sqlb.DefaultConfig()
	cfg.Consumers = 1
	cfg.Providers = 5
	pop := sqlb.NewPopulation(cfg, 1)
	q := &sqlb.Query{ID: 1, Consumer: pop.Consumers[0], Class: 0, Units: 130, N: 2}

	providers := []sqlb.ProviderClient{
		shippingProvider{name: "p1", intention: 1, latency: time.Millisecond},
		shippingProvider{name: "p2", intention: -1, latency: time.Millisecond},
		shippingProvider{name: "p3", intention: 1, latency: 2 * time.Second}, // too slow: defaults to 0
		shippingProvider{name: "p4", intention: -1, latency: time.Millisecond},
		shippingProvider{name: "p5", intention: 1, latency: time.Millisecond},
	}
	consumer := eWine{intentions: map[int]float64{0: -1, 1: 1, 2: -1, 3: 1, 4: 1}}

	collector := &sqlb.IntentionCollector{Timeout: 100 * time.Millisecond}
	start := time.Now()
	ci, pi, st := collector.Collect(context.Background(), q, pop.Providers, consumer, providers)
	fmt.Printf("collected intentions in %v (%d timed out → indifference)\n\n",
		time.Since(start).Round(time.Millisecond), st.Timeouts)

	// Score and rank per Definition 9 with the initial even balance ω=0.5.
	omegas := make([]float64, len(pop.Providers))
	for i := range omegas {
		omegas[i] = core.Omega(0.5, 0.5)
	}
	ranking := core.Rank(pi, ci, omegas, 1)
	selected := core.Select(q.N, ranking)

	fmt.Println("provider  prov.int  cons.int    score  rank")
	rankOf := map[int]int{}
	scores := map[int]float64{}
	for pos, r := range ranking {
		rankOf[r.Index] = pos + 1
		scores[r.Index] = r.Score
	}
	for i := range pop.Providers {
		fmt.Printf("  p%d      %+8.2f  %+8.2f  %+7.3f  %4d\n",
			i+1, pi[i], ci[i], scores[i], rankOf[i])
	}
	fmt.Printf("\neWine asked for %d proposals; SQLB selects:", q.N)
	for _, idx := range selected {
		fmt.Printf(" p%d", idx+1)
	}
	fmt.Println()
	fmt.Println("p5 — the only provider both sides want — ranks first, exactly as the paper argues.")
	fmt.Println("A capacity-based mediator would have picked p1 and p2 and likely lost both eWine and p2.")
}

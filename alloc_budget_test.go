// Allocation-budget regression tests: the steady-state heap cost of every
// hot path is pinned with testing.AllocsPerRun so an accidental per-call
// allocation (a closure that escapes, a map rebuilt per mediation, a slice
// forgotten off the scratch) fails tier-1 instead of silently eroding the
// zero-allocation mediation contract. Budgets are exact where the contract
// is exact (zero) and small where a path legitimately returns fresh result
// containers (MediateBatch's two slices per batch).
package sqlb_test

import (
	"context"
	"io"
	"testing"

	"sqlb"
	"sqlb/internal/model"
	"sqlb/internal/timeline"
)

// TestAllocBudgetMediatorAllocate pins the simulator's mediation fast path
// at zero steady-state allocations: matchmaking, intention gathering,
// scoring/ranking/selection, and result notification all run out of the
// mediator's scratch once its buffers are warm.
func TestAllocBudgetMediatorAllocate(t *testing.T) {
	cfg := model.DefaultConfig() // full 400-provider Pq
	pop := sqlb.NewPopulation(cfg, 9)
	med := sqlb.NewMediator(sqlb.NewSQLB())
	q := &model.Query{ID: 1, Consumer: pop.Consumers[0], Class: 0, Units: 130, N: 1}
	now := 0.0
	mediate := func() {
		now += 0.01
		if _, err := med.Allocate(now, q, pop); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		mediate() // warm the scratch to the population's high-water mark
	}
	if allocs := testing.AllocsPerRun(100, mediate); allocs != 0 {
		t.Errorf("Mediator.Allocate: %v allocs/op in steady state, want 0", allocs)
	}
}

// TestAllocBudgetMatchmakingLookup pins the indexed posting-list lookup at
// zero allocations per query.
func TestAllocBudgetMatchmakingLookup(t *testing.T) {
	cfg := sqlb.DefaultConfig().WithClasses(10)
	cfg.Consumers = 2
	cfg.Providers = 1000
	cfg.CapabilitySelectivity = 0.1
	pop := sqlb.NewPopulation(cfg, 7)
	ix := sqlb.BuildMatchIndex(pop)
	q := &model.Query{ID: 1, Consumer: pop.Consumers[0], Units: 130, N: 1}
	i := 0
	lookup := func() {
		q.Class = i % 10
		i++
		if len(ix.Match(q, pop)) == 0 {
			t.Fatal("empty posting list")
		}
	}
	lookup()
	if allocs := testing.AllocsPerRun(100, lookup); allocs != 0 {
		t.Errorf("Index.Match: %v allocs/op, want 0", allocs)
	}
}

// TestAllocBudgetServerMediateBatch pins the batched serving path: once the
// server's batch scratch is warm, a whole batch allocates exactly its two
// result containers (the BatchResult slice and the Allocation slab),
// independent of batch size and |Pq|.
func TestAllocBudgetServerMediateBatch(t *testing.T) {
	cfg := sqlb.DefaultConfig().WithClasses(10)
	cfg.Consumers = 8
	cfg.Providers = 1000
	cfg.CapabilitySelectivity = 0.1
	pop := sqlb.NewPopulation(cfg, 17)
	srv := sqlb.NewMediationServer(sqlb.NewSQLB(), pop, 0, func() float64 { return 0 })
	srv.SetMatchmaker(sqlb.BuildMatchIndex(pop))
	qs := make([]*model.Query, 16)
	for i := range qs {
		qs[i] = &model.Query{
			ID:       uint64(i + 1),
			Consumer: pop.Consumers[i%len(pop.Consumers)],
			Class:    i % 10,
			Units:    130,
			N:        2,
		}
	}
	ctx := context.Background()
	batch := func() {
		for _, r := range srv.MediateBatch(ctx, qs) {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
		}
	}
	for i := 0; i < 5; i++ {
		batch() // warm per-class buffers, ci cache, and selection arena
	}
	if allocs := testing.AllocsPerRun(50, batch); allocs > 2 {
		t.Errorf("MediateBatch: %v allocs per 16-query batch in steady state, want <= 2", allocs)
	}
}

// TestAllocBudgetTimelineCSVRow pins the timeline CSV sink at zero
// allocations per appended row — the contract the live tailing path
// (sqlb-top) relies on.
func TestAllocBudgetTimelineCSVRow(t *testing.T) {
	sink := timeline.NewCSVSink(io.Discard)
	snap := timeline.Snapshot{
		Time: 1, Source: "sim", WorkloadFraction: 0.8,
		QPSIn: 240.5, QPSOut: 231.25, Dropped: 3, QueueDepth: 17,
		LatencyMean: 0.131, LatencyP50: 0.09, LatencyP95: 0.52, LatencyP99: 1.4,
		ProvSat: 0.61, ConsSat: 0.58, AllocSat: 0.97, SatFairness: 0.91,
		UtilMean: 0.74, UtilFairness: 0.88, UtilGini: 0.19,
		UtilClassLow: 0.91, UtilClassMed: 0.74, UtilClassHigh: 0.6,
		AliveProviders: 96, AliveConsumers: 50, Departures: 4, Joins: 1,
	}
	if err := sink.Append(snap); err != nil { // header + encode buffer warmup
		t.Fatal(err)
	}
	i := 0.0
	row := func() {
		i++
		snap.Time = i
		if err := sink.Append(snap); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(100, row); allocs != 0 {
		t.Errorf("CSVSink.Append: %v allocs/row, want 0", allocs)
	}
}

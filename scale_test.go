// Population-scale smoke tests: the memory-layout work (bulk participant
// arrays, satisfaction arenas, hashed consumer preferences) exists so the
// system can hold 100k providers and 1M consumers; these tests actually
// build such cohorts and mediate over them, so a layout regression that
// only bites at scale (quadratic preference storage, per-object overhead
// creeping back) fails tier-1 rather than the next scale sweep.
package sqlb_test

import (
	"testing"

	"sqlb"
	"sqlb/internal/model"
)

// TestScale1MConsumersSmoke builds a 1M-consumer / 10k-provider population
// with hashed preferences and mediates a handful of queries over it. With
// stored preferences this cohort would need 1M × 10k × 8 B = 80 GB for the
// preference matrix alone; hashed mode keeps it to the participant arrays
// plus ring storage. The windows are kept small (the smoke checks layout,
// not satisfaction dynamics).
func TestScale1MConsumersSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("population-scale smoke skipped in -short mode")
	}
	cfg := sqlb.DefaultConfig()
	cfg.Providers = 10_000
	cfg.Consumers = 1_000_000
	cfg.ProviderK = 20
	cfg.ConsumerK = 10
	cfg.PriorSamples = 5
	cfg.HashedConsumerPrefs = true
	pop := sqlb.NewPopulation(cfg, 41)
	if len(pop.Consumers) != cfg.Consumers || len(pop.Providers) != cfg.Providers {
		t.Fatalf("population sized %d/%d, want %d/%d",
			len(pop.Consumers), len(pop.Providers), cfg.Consumers, cfg.Providers)
	}

	// Hashed preferences: in-band, deterministic, and independent across
	// consumers (spot checks across the cohort).
	samples := []int{0, 1, 999_999, 500_000, 123_456}
	for _, ci := range samples {
		c := pop.Consumers[ci]
		for _, pi := range []int{0, 9_999, 4_242} {
			p := pop.Providers[pi]
			band := cfg.InterestBands[p.InterestClass]
			v := c.Preference(p, 0)
			if v < band[0] || v >= band[1] {
				t.Fatalf("consumer %d preference for provider %d = %v outside band %v", ci, pi, v, band)
			}
			if v2 := c.Preference(p, 1); v2 != v {
				t.Fatalf("hashed preference not stable: %v then %v", v, v2)
			}
		}
	}
	if a, b := pop.Consumers[0].Preference(pop.Providers[0], 0), pop.Consumers[1].Preference(pop.Providers[0], 0); a == b {
		t.Errorf("consumers 0 and 1 share a preference for provider 0 (%v) — seeds not independent", a)
	}

	// SetPreference must still work in hashed mode (scripted overrides).
	c := pop.Consumers[7]
	c.SetPreference(3, 0.75)
	if got := c.Preference(pop.Providers[3], 0); got != 0.75 {
		t.Fatalf("override not honored: got %v, want 0.75", got)
	}

	// Mediate a few queries over the full 10k-provider Pq: the paper's
	// pipeline end to end, just at population scale.
	med := sqlb.NewMediator(sqlb.NewSQLB())
	for i := 0; i < 5; i++ {
		q := &model.Query{
			ID:       uint64(i + 1),
			Consumer: pop.Consumers[i*200_000],
			Class:    i % len(pop.Classes),
			Units:    130,
			N:        2,
		}
		alloc, err := med.Allocate(float64(i), q, pop)
		if err != nil {
			t.Fatal(err)
		}
		if len(alloc.Selected) != 2 {
			t.Fatalf("mediation %d selected %d providers, want 2", i, len(alloc.Selected))
		}
	}
}

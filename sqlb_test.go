package sqlb_test

import (
	"math"
	"testing"

	"sqlb"
)

func TestFacadeQuickstart(t *testing.T) {
	cfg := sqlb.DefaultConfig().Scale(0.1)
	pop := sqlb.NewPopulation(cfg, 42)
	med := sqlb.NewMediator(sqlb.NewSQLB())
	q := &sqlb.Query{ID: 1, Consumer: pop.Consumers[0], Class: 0, Units: 130, N: 1}
	alloc, err := med.Allocate(0, q, pop)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if len(alloc.Selected) != 1 {
		t.Fatalf("selected %d providers, want 1", len(alloc.Selected))
	}
	sel := alloc.SelectedProviders()[0]
	if !sel.Alive {
		t.Error("selected provider should be alive")
	}
}

func TestFacadeSimulation(t *testing.T) {
	opts := sqlb.SimOptions{
		Config:   sqlb.DefaultConfig().Scale(0.05),
		Strategy: sqlb.NewCapacityBased(),
		Workload: sqlb.ConstantWorkload(0.5),
		Duration: 200,
		Seed:     7,
	}
	simu, err := sqlb.NewSimulation(opts)
	if err != nil {
		t.Fatalf("NewSimulation: %v", err)
	}
	res := simu.Run()
	if res.CompletedQueries == 0 {
		t.Fatal("no queries completed")
	}
	if res.Method != "Capacity based" {
		t.Errorf("method = %q", res.Method)
	}
}

func TestFacadeAllocators(t *testing.T) {
	allocs := []sqlb.Allocator{
		sqlb.NewSQLB(), sqlb.NewSQLBFixedOmega(0.5), sqlb.NewCapacityBased(),
		sqlb.NewMariposaLike(), sqlb.NewKnBest(), sqlb.NewSQLBEconomic(),
		sqlb.NewRandom(1),
	}
	names := map[string]bool{}
	for _, a := range allocs {
		if a.Name() == "" {
			t.Error("allocator with empty name")
		}
		names[a.Name()] = true
	}
	if len(names) != len(allocs) {
		t.Errorf("allocator names not distinct: %v", names)
	}
}

func TestFacadeMetrics(t *testing.T) {
	vs := []float64{0.2, 1, 0.6}
	if got := sqlb.Mean(vs); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("Mean = %v", got)
	}
	if got := sqlb.Fairness(vs); math.Abs(got-0.7714) > 0.001 {
		t.Errorf("Fairness = %v", got)
	}
	if got := sqlb.Balance(vs); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("Balance = %v, want (0.2+1)/(1+1)", got)
	}
	s := sqlb.Summarize(vs)
	if s.N != 3 {
		t.Errorf("Summarize.N = %d", s.N)
	}
}

func TestFacadeFormulas(t *testing.T) {
	if got := sqlb.ConsumerIntention(0.7, 0.5, 1, 1); got != 0.7 {
		t.Errorf("υ=1 consumer intention = %v, want the preference", got)
	}
	if got := sqlb.ProviderIntention(0.8, 0.3, 1, 1); math.Abs(got-0.7) > 1e-9 {
		t.Errorf("δs=1 provider intention = %v, want 1-Ut", got)
	}
	if got := sqlb.Omega(0.8, 0.6); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("Omega = %v", got)
	}
	if got := sqlb.Score(0.9, 0.4, 0.5, 1); math.Abs(got-math.Sqrt(0.36)) > 1e-9 {
		t.Errorf("Score = %v", got)
	}
}

func TestFacadeExperimentList(t *testing.T) {
	ids := sqlb.Experiments()
	if len(ids) != 17 {
		t.Fatalf("experiments = %d, want 17", len(ids))
	}
	if ids[0] != "table1" || ids[len(ids)-1] != "fig6" {
		t.Errorf("unexpected experiment order: %v", ids)
	}
}

func TestFacadeExperimentLab(t *testing.T) {
	lab := sqlb.NewExperimentLab(sqlb.ExperimentConfig{
		Scale: 0.05, Duration: 200, SweepDuration: 300, Repeats: 1,
		BaseSeed: 3, SampleInterval: 50, Workloads: []float64{0.5},
	})
	res, err := lab.Run("table1")
	if err != nil {
		t.Fatalf("table1: %v", err)
	}
	if res.ID != "table1" || len(res.Tables) != 1 {
		t.Errorf("unexpected result %+v", res)
	}
}

func TestFacadeAutonomySettings(t *testing.T) {
	full := sqlb.FullAutonomy()
	if !full.ConsumersMayLeave || !full.ProvidersOverutilization {
		t.Error("FullAutonomy should enable all rules")
	}
	ds := sqlb.DissatStarvationAutonomy()
	if ds.ProvidersOverutilization {
		t.Error("DissatStarvationAutonomy must not enable overutilization")
	}
}

// Command sqlb-serve runs the mediator as a long-lived service and measures
// its steady-state throughput: an open-loop Poisson arrival schedule drives
// queries at -qps into a bounded submit queue (full queue = rejection, the
// admission-control backpressure), a worker pool mediates them in batches,
// and after the warmup window the run reports mediations/sec and the
// p50/p95/p99 mediation latency.
//
// Unlike sqlb-sim — which simulates the *participants'* world over virtual
// time — sqlb-serve stresses the mediator itself over wall-clock time: the
// ROADMAP's mediator-as-a-service item.
//
// Observability: -timeline streams one snapshot per -snapshot-interval
// (plus a final one after the pool drains) to a CSV file another terminal
// can watch live with sqlb-top -file run.csv -follow; -top renders the
// dashboard in-process instead. The interval deltas in the snapshots sum
// exactly to the final report's totals.
//
// Usage:
//
//	sqlb-serve [-method sqlb|capacity|mariposa|random|knbest|sqlb-econ]
//	           [-qps n] [-workers n] [-batch n] [-queue n]
//	           [-warmup d] [-measure d] [-timeout d]
//	           [-scale f] [-providers n] [-consumers n]
//	           [-classes k] [-selectivity s] [-class-skew z]
//	           [-seed n] [-json file]
//	           [-timeline file] [-snapshot-interval d] [-top]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"sqlb/internal/allocator"
	"sqlb/internal/model"
	"sqlb/internal/serving"
	"sqlb/internal/timeline"
)

func main() {
	var (
		method    = flag.String("method", "sqlb", "allocation method: sqlb, capacity, mariposa, random, knbest, sqlb-econ")
		qps       = flag.Float64("qps", 200, "open-loop arrival rate (queries/second)")
		workers   = flag.Int("workers", 0, "mediation worker-pool size (0 = GOMAXPROCS)")
		batch     = flag.Int("batch", 16, "max mediations per batch (1 = per-query concurrent collection)")
		queue     = flag.Int("queue", 1024, "submit-queue depth; full queue rejects arrivals")
		warmup    = flag.Duration("warmup", 2*time.Second, "warmup window discarded from the report")
		measure   = flag.Duration("measure", 10*time.Second, "steady-state measurement window")
		timeout   = flag.Duration("timeout", 50*time.Millisecond, "intention-collection timeout (batch=1 path)")
		scale     = flag.Float64("scale", 1, "population scale relative to the paper's 200/400")
		providers = flag.Int("providers", 0, "provider count override (0 = scaled default)")
		consumers = flag.Int("consumers", 0, "consumer count override (0 = scaled default)")
		classes   = flag.Int("classes", 0, "query classes spread over 130-150 units (0 = the paper's two)")
		select_   = flag.Float64("selectivity", 0, "fraction of classes each provider advertises (0 or 1 = all)")
		skew      = flag.Float64("class-skew", 0, "Zipf exponent of query-class popularity (0 = uniform)")
		seed      = flag.Uint64("seed", 42, "run seed")
		jsonPath  = flag.String("json", "", "also write the report as JSON to this file")
		tlPath    = flag.String("timeline", "", "stream interval timeline snapshots to this CSV file (watch with sqlb-top)")
		tlEvery   = flag.Duration("snapshot-interval", time.Second, "timeline snapshot cadence")
		top       = flag.Bool("top", false, "render the live sqlb-top dashboard while the run executes")
	)
	flag.Parse()

	strategy, err := strategyFor(*method, *seed)
	if err != nil {
		fatal("%v", err)
	}
	mcfg := model.DefaultConfig().Scale(*scale).WithClasses(*classes)
	mcfg.CapabilitySelectivity = *select_
	mcfg.ClassSkew = *skew
	if *providers > 0 {
		mcfg.Providers = *providers
	}
	if *consumers > 0 {
		mcfg.Consumers = *consumers
	}

	// Timeline plumbing: CSV sink for -timeline, in-process dashboard for
	// -top, both behind one collector so either can be enabled alone.
	var tlSinks []timeline.Sink
	if *tlPath != "" {
		cs, err := timeline.CreateCSV(*tlPath)
		if err != nil {
			fatal("%v", err)
		}
		// Flush each row as it is written so another terminal tailing the
		// file (sqlb-top -follow) sees it while the run is still going.
		cs.FlushEveryRow = true
		tlSinks = append(tlSinks, cs)
	}
	var col *timeline.Collector
	var sink timeline.Sink
	if len(tlSinks) > 0 || *top {
		col = timeline.NewCollector(0, 0, tlSinks...)
		sink = col
		if *top {
			dash := &timeline.Dashboard{Color: true}
			fmt.Print(timeline.HideCursor)
			sink = timeline.SinkFunc(func(s timeline.Snapshot) error {
				err := col.Append(s)
				win := col.Window()
				fmt.Print(timeline.HomeAndClear + dash.Frame(win, timeline.Assess(win)))
				return err
			})
		}
	}

	cfg := serving.Config{
		Model:            mcfg,
		Strategy:         strategy,
		TargetQPS:        *qps,
		Workers:          *workers,
		Batch:            *batch,
		QueueDepth:       *queue,
		Warmup:           *warmup,
		Measure:          *measure,
		CollectTimeout:   *timeout,
		Seed:             *seed,
		Timeline:         sink,
		SnapshotInterval: *tlEvery,
	}
	d, err := serving.NewDriver(cfg)
	if err != nil {
		fatal("%v", err)
	}

	// Ctrl-C cuts the run short but still reports what was measured.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Fprintf(os.Stderr, "sqlb-serve: driving %.0f qps for %v (after %v warmup)...\n",
		*qps, *measure, *warmup)
	rep, err := d.Run(ctx)
	if col != nil {
		if *top {
			fmt.Print(timeline.ShowCursor + "\n")
		}
		tlErr := d.TimelineErr()
		if cerr := col.Close(); cerr != nil && tlErr == nil {
			tlErr = cerr
		}
		if tlErr != nil {
			fatal("timeline: %v", tlErr)
		}
		if *tlPath != "" {
			fmt.Fprintf(os.Stderr, "sqlb-serve: wrote %s\n", *tlPath)
		}
	}
	if err != nil {
		fatal("%v", err)
	}
	fmt.Println(rep)

	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal("marshal report: %v", err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fatal("write %s: %v", *jsonPath, err)
		}
		fmt.Fprintf(os.Stderr, "sqlb-serve: wrote %s\n", *jsonPath)
	}
}

func strategyFor(name string, seed uint64) (allocator.Allocator, error) {
	switch name {
	case "sqlb":
		return allocator.NewSQLB(), nil
	case "capacity":
		return allocator.NewCapacityBased(), nil
	case "mariposa":
		return allocator.NewMariposaLike(), nil
	case "random":
		return allocator.NewRandom(seed), nil
	case "knbest":
		return allocator.NewKnBest(), nil
	case "sqlb-econ":
		return allocator.NewSQLBEconomic(), nil
	}
	return nil, fmt.Errorf("unknown method %q", name)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sqlb-serve: "+format+"\n", args...)
	os.Exit(1)
}

// Command sqlb-experiments regenerates the tables and figures of the SQLB
// paper's evaluation (VLDB 2007, Section 6). Each experiment prints an
// aligned text rendition and, with -out, writes a CSV per chart/table.
//
// Usage:
//
//	sqlb-experiments [-run id[,id...]] [-scale f] [-duration s] [-sweep s]
//	                 [-repeats n] [-seed n] [-workers n] [-shards n]
//	                 [-workloads csv]
//	                 [-classes k] [-selectivity s] [-class-skew z]
//	                 [-selectivities csv] [-scenarios csv] [-out dir]
//	                 [-timeline-dir dir] [-list]
//
// The paper's full scale is -scale 1 -duration 10000 -sweep 10000
// -repeats 10; the defaults reproduce the same shapes at laptop cost.
// -classes/-selectivity/-class-skew switch every run to a heterogeneous
// capability workload (see the ext-selectivity experiment for the swept
// version).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"sqlb/internal/experiments"
	"sqlb/internal/timeline"
)

func main() {
	var (
		runIDs    = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		scale     = flag.Float64("scale", 0.25, "population scale relative to the paper's 200/400")
		duration  = flag.Float64("duration", 2500, "figure-4 ramp horizon (sim-seconds)")
		sweepDur  = flag.Float64("sweep", 5000, "per-workload run horizon (sim-seconds)")
		repeats   = flag.Int("repeats", 2, "repetitions per configuration (paper: 10)")
		seed      = flag.Uint64("seed", 1, "base seed")
		workers   = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS; output is identical at any value)")
		shards    = flag.Int("shards", 0, "shard workers per simulation; output is identical at any value (0 = SQLB_SHARDS env, then serial)")
		workloads = flag.String("workloads", "", "comma-separated workload fractions (default 0.2..1.0)")
		outDir    = flag.String("out", "", "directory for CSV output (omit to skip)")
		list      = flag.Bool("list", false, "list experiment IDs and exit")
		classes   = flag.Int("classes", 0, "query classes spread over 130-150 units (0 = the paper's two)")
		select_   = flag.Float64("selectivity", 0, "fraction of classes each provider advertises (0 or 1 = all)")
		skew      = flag.Float64("class-skew", 0, "Zipf exponent of query-class popularity (0 = uniform)")
		sels      = flag.String("selectivities", "", "comma-separated selectivities for ext-selectivity (default 0.125,0.25,0.5,0.75,1)")
		scens     = flag.String("scenarios", "", "comma-separated scenario presets or files for ext-scenarios (default: every preset)")
		tlDir     = flag.String("timeline-dir", "", "stream every simulation run's timeline as <dir>/<run-id>.csv (replayable with sqlb-top)")
	)
	flag.Parse()

	if *list {
		for _, s := range experiments.Registry {
			fmt.Printf("%-12s %s\n", s.ID, s.Title)
		}
		for _, s := range experiments.ExtensionRegistry {
			fmt.Printf("%-12s %s (extension)\n", s.ID, s.Title)
		}
		return
	}

	cfg := experiments.Config{
		Scale:         *scale,
		Duration:      *duration,
		SweepDuration: *sweepDur,
		Repeats:       *repeats,
		BaseSeed:      *seed,
		Workers:       *workers,
		Shards:        *shards,
		Classes:       *classes,
		Selectivity:   *select_,
		ClassSkew:     *skew,
	}
	cfg.Workloads = parseFloats(*workloads, "-workloads")
	cfg.Selectivities = parseFloats(*sels, "-selectivities")
	if *tlDir != "" {
		if err := os.MkdirAll(*tlDir, 0o755); err != nil {
			fatal("mkdir %s: %v", *tlDir, err)
		}
		dir := *tlDir
		cfg.Timeline = func(runID string) timeline.Sink {
			// Run IDs carry their identity as path segments
			// (ramp/SQLB/rep0); flatten them into one file name.
			name := strings.ReplaceAll(runID, "/", "_") + ".csv"
			sink, err := timeline.CreateCSV(filepath.Join(dir, name))
			if err != nil {
				fatal("timeline %s: %v", runID, err)
			}
			return sink
		}
	}
	if *scens != "" {
		for _, part := range strings.Split(*scens, ",") {
			cfg.Scenarios = append(cfg.Scenarios, strings.TrimSpace(part))
		}
	}
	lab := experiments.NewLab(cfg)

	ids := make([]string, 0, len(experiments.Registry))
	if *runIDs == "" {
		for _, s := range experiments.Registry {
			ids = append(ids, s.ID)
		}
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	for _, id := range ids {
		start := time.Now()
		res, err := lab.RunAny(id)
		if err != nil {
			fatal("%s: %v", id, err)
		}
		fmt.Printf("===== %s — %s (%.1fs)\n", res.ID, res.Title, time.Since(start).Seconds())
		for _, c := range res.Charts {
			fmt.Println(c.Render())
			writeCSV(*outDir, c.ID, c.CSV())
		}
		for _, t := range res.Tables {
			fmt.Println(t.Render())
			writeCSV(*outDir, t.ID, t.CSV())
		}
		for _, n := range res.Notes {
			fmt.Printf("note: %s\n", n)
		}
		fmt.Println()
	}
}

// parseFloats parses a comma-separated float list; an empty flag yields
// nil (keep the lab defaults).
func parseFloats(csv, flagName string) []float64 {
	if csv == "" {
		return nil
	}
	var out []float64
	for _, part := range strings.Split(csv, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fatal("bad %s value %q: %v", flagName, part, err)
		}
		out = append(out, f)
	}
	return out
}

func writeCSV(dir, id, content string) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal("mkdir %s: %v", dir, err)
	}
	path := filepath.Join(dir, id+".csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		fatal("write %s: %v", path, err)
	}
	fmt.Printf("wrote %s\n", path)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sqlb-experiments: "+format+"\n", args...)
	os.Exit(1)
}

// Command sqlb-top renders the live terminal dashboard over a recorded
// or growing timeline CSV — the file sqlb-sim -timeline and sqlb-serve
// -timeline stream while they run. It is dependency-free: plain ANSI
// escapes, eighth-block sparklines, and the internal/timeline calculator's
// health line.
//
// A recorded run replays as a short animation (one frame per row, -delay
// apart) and leaves the final frame on screen. With -follow, sqlb-top
// keeps polling the file afterwards and renders every new row as the
// producer appends it — start the producer in one terminal and
//
//	sqlb-sim -scenario flash-crowd -duration 2000 -timeline run.csv &
//	sqlb-top -file run.csv -follow
//
// in another. -once skips the animation and prints the final frame only
// (the mode scripts and smoke tests use).
//
// Usage:
//
//	sqlb-top -file run.csv [-follow] [-once] [-refresh d] [-delay d]
//	         [-width n] [-no-color]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"sqlb/internal/timeline"
)

func main() {
	var (
		file    = flag.String("file", "", "timeline CSV to render (as written by sqlb-sim -timeline / sqlb-serve -timeline)")
		follow  = flag.Bool("follow", false, "keep tailing the file for new rows after the replay (Ctrl-C to stop)")
		once    = flag.Bool("once", false, "render a single frame of the file's final state and exit")
		refresh = flag.Duration("refresh", 500*time.Millisecond, "poll cadence while following")
		delay   = flag.Duration("delay", 30*time.Millisecond, "frame delay while replaying recorded rows")
		width   = flag.Int("width", 0, "frame width in cells (0 = 80)")
		noColor = flag.Bool("no-color", false, "disable ANSI colors")
	)
	flag.Parse()
	if *file == "" && flag.NArg() > 0 {
		*file = flag.Arg(0)
	}
	if *file == "" {
		fatal("usage: sqlb-top -file run.csv [-follow] (see sqlb-sim -timeline / sqlb-serve -timeline)")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// With -follow the file may not exist yet (producer still starting);
	// wait for it instead of failing.
	var tail *timeline.Tailer
	for {
		var err error
		tail, err = timeline.OpenTail(*file)
		if err == nil {
			break
		}
		if !*follow || !errors.Is(err, os.ErrNotExist) {
			fatal("%v", err)
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(*refresh):
		}
	}
	defer tail.Close()

	// The collector's rolling window is the dashboard's history: bounded
	// memory however long the timeline grows.
	col := timeline.NewCollector(0, 0)
	dash := &timeline.Dashboard{Width: *width, Color: !*noColor}
	render := func() {
		win := col.Window()
		fmt.Print(timeline.HomeAndClear + dash.Frame(win, timeline.Assess(win)))
	}

	rows, err := tail.Poll()
	if err != nil {
		fatal("%v", err)
	}
	if *once {
		for _, s := range rows {
			col.Offer(s)
		}
		win := col.Window()
		fmt.Print(dash.Frame(win, timeline.Assess(win)))
		return
	}

	fmt.Print(timeline.HideCursor)
	defer fmt.Print(timeline.ShowCursor)

	// Replay the recorded prefix as an animation.
	for _, s := range rows {
		col.Offer(s)
		render()
		select {
		case <-ctx.Done():
			return
		case <-time.After(*delay):
		}
	}
	if len(rows) == 0 {
		render() // "waiting for snapshots" placeholder
	}
	if !*follow {
		return
	}

	// Live tail: poll for appended rows, re-render when any arrive.
	ticker := time.NewTicker(*refresh)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			rows, err := tail.Poll()
			if err != nil {
				fatal("%v", err)
			}
			for _, s := range rows {
				col.Offer(s)
			}
			if len(rows) > 0 {
				render()
			}
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sqlb-top: "+format+"\n", args...)
	os.Exit(1)
}

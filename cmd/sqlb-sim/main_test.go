package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"sqlb/internal/timeline"
)

// TestMain lets the test binary stand in for the sqlb-sim binary: when
// re-executed with SQLB_SIM_MAIN=1 it runs main() on the given flags, so
// the CLI tests below need no `go build` step.
func TestMain(m *testing.M) {
	if os.Getenv("SQLB_SIM_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// runSim re-executes the test binary as sqlb-sim with the given flags.
func runSim(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "SQLB_SIM_MAIN=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("sqlb-sim %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out)
}

// TestRepeatedCSVExport is the ride-along fix's pin: -csv with -repeats
// must write one timeline file per repetition under the deterministic
// RepetitionPath scheme — every file present, parseable, announced on
// stdout, distinct across repetitions (different seeds), and
// byte-identical across identical invocations.
func TestRepeatedCSVExport(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "run.csv")
	args := []string{"-csv", base, "-repeats", "3", "-duration", "300",
		"-scale", "0.05", "-workers", "2", "-seed", "7"}
	out := runSim(t, args...)

	var contents []string
	for rep := 0; rep < 3; rep++ {
		path := timeline.RepetitionPath(base, rep, 3)
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("repetition %d timeline missing: %v\nstdout:\n%s", rep, err, out)
		}
		rows, err := timeline.ReadCSV(strings.NewReader(string(b)))
		if err != nil {
			t.Fatalf("repetition %d timeline unparseable: %v", rep, err)
		}
		if len(rows) == 0 {
			t.Fatalf("repetition %d timeline has no rows", rep)
		}
		if !strings.Contains(out, "wrote "+path) {
			t.Errorf("stdout does not announce %s:\n%s", path, out)
		}
		contents = append(contents, string(b))
	}
	if contents[0] == contents[1] || contents[1] == contents[2] {
		t.Error("repetition timelines are identical; seeds were not varied per repetition")
	}
	if _, err := os.Stat(base); err == nil {
		t.Errorf("plain %s exists; repetitions must not clobber one shared file", base)
	}

	// The naming scheme and the file bytes are deterministic: rerunning
	// the exact invocation reproduces every file.
	dir2 := t.TempDir()
	base2 := filepath.Join(dir2, "run.csv")
	args2 := append([]string{}, args...)
	args2[1] = base2
	runSim(t, args2...)
	for rep := 0; rep < 3; rep++ {
		b, err := os.ReadFile(timeline.RepetitionPath(base2, rep, 3))
		if err != nil {
			t.Fatalf("rerun repetition %d: %v", rep, err)
		}
		if string(b) != contents[rep] {
			t.Errorf("rerun repetition %d produced different bytes", rep)
		}
	}
}

// TestSingleRunKeepsPlainCSVPath: without -repeats the user's exact file
// name is kept (no .rep0 suffix), preserving the historical contract.
func TestSingleRunKeepsPlainCSVPath(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tl.csv")
	out := runSim(t, "-timeline", path, "-duration", "200", "-scale", "0.05")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("timeline file missing: %v\nstdout:\n%s", err, out)
	}
	if _, err := os.Stat(filepath.Join(dir, "tl.rep0.csv")); err == nil {
		t.Error("single run wrote tl.rep0.csv; want the plain path only")
	}
}

// TestShardsFlagDeterminism: the -shards flag changes nothing observable —
// the full stdout report and the exported timeline are byte-identical to
// the serial run.
func TestShardsFlagDeterminism(t *testing.T) {
	outputs := map[string]string{}
	files := map[string]string{}
	for _, shards := range []string{"1", "4"} {
		dir := t.TempDir()
		path := filepath.Join(dir, "tl.csv")
		out := runSim(t, "-shards", shards, "-timeline", path,
			"-duration", "300", "-scale", "0.05", "-autonomy", "full",
			"-scenario", "staged-churn")
		outputs[shards] = strings.ReplaceAll(out, dir, "")
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("shards=%s timeline: %v", shards, err)
		}
		files[shards] = string(b)
	}
	if outputs["1"] != outputs["4"] {
		t.Errorf("-shards 4 stdout differs from -shards 1:\n%s\nvs\n%s",
			outputs["4"], outputs["1"])
	}
	if files["1"] != files["4"] {
		t.Error("-shards 4 timeline CSV differs from -shards 1")
	}
}

// Command sqlb-sim runs one simulation of the SQLB mediation system and
// prints the §4 metric summary, response times, and (under autonomy) the
// departure accounting.
//
// With -repeats > 1 the repetitions run concurrently over a bounded worker
// pool (repetition r uses seed+r) and the summary reports per-run and
// averaged headline metrics; the run order never affects the numbers.
//
// Heterogeneous workloads: -classes k spreads k query classes over the
// paper's 130-150 treatment-unit band, -selectivity s makes each provider
// advertise s·k of them (matchmade through the capability index), and
// -class-skew z draws query classes with Zipf(z) popularity. Queries whose
// class no provider advertises are counted as dropped.
//
// Scenarios: -scenario overlays time-varying load and churn — a preset
// name (diurnal, flash-crowd, maintenance-window, outage-30pct,
// staged-churn) or a scenario file (see internal/scenario.Parse for the
// format). A scenario's load curve replaces -workload/-ramp; its churn
// waves take providers down (and bring them back) as scheduled events.
//
// Observability: -timeline streams each repetition's per-sample timeline
// snapshots to a CSV file as the run produces them (watch one live with
// sqlb-top -file run.csv -follow, or replay it afterwards); -csv is a
// synonym kept from the pre-timeline exporter, now streaming the same
// schema instead of buffering a chart in memory. With -repeats > 1 each
// repetition writes its own file under the deterministic
// timeline.RepetitionPath scheme — "out.csv" becomes "out.rep0.csv",
// "out.rep1.csv", … (zero-padded so listings sort in repetition order);
// a single run keeps the exact name given. -top renders the dashboard
// in-process while the first repetition runs. The timeline is a pure
// observer: results are byte-identical with or without it.
//
// -shards fans each simulation's population-dimension work out to that
// many shard workers behind the engine's virtual-clock barrier; results
// are byte-identical at every value (0 consults SQLB_SHARDS, then runs
// serially). Orthogonal to -workers, which parallelizes across
// repetitions.
//
// Usage:
//
//	sqlb-sim [-method sqlb|capacity|mariposa|random|knbest|sqlb-econ]
//	         [-workload f] [-ramp] [-scenario name|file]
//	         [-duration s] [-scale f] [-seed n]
//	         [-repeats n] [-workers n] [-shards n]
//	         [-classes k] [-selectivity s] [-class-skew z]
//	         [-autonomy off|dissat-starve|full]
//	         [-timeline file] [-csv file] [-top]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"sqlb/internal/allocator"
	"sqlb/internal/model"
	"sqlb/internal/scenario"
	"sqlb/internal/sim"
	"sqlb/internal/timeline"
	"sqlb/internal/workload"
)

func main() {
	var (
		method   = flag.String("method", "sqlb", "allocation method: sqlb, capacity, mariposa, random, knbest, sqlb-econ")
		frac     = flag.Float64("workload", 0.8, "workload as a fraction of total system capacity")
		ramp     = flag.Bool("ramp", false, "ramp workload 30%→100% over the run (Figure 4 setting)")
		duration = flag.Float64("duration", 2500, "simulated seconds")
		scale    = flag.Float64("scale", 0.25, "population scale relative to the paper's 200/400")
		seed     = flag.Uint64("seed", 42, "run seed (repetition r uses seed+r)")
		repeats  = flag.Int("repeats", 1, "repetitions to run and average (paper: 10)")
		workers  = flag.Int("workers", 0, "concurrent repetitions (0 = GOMAXPROCS)")
		shards   = flag.Int("shards", 0, "shard workers per simulation; any value is byte-identical (0 = SQLB_SHARDS env, then serial)")
		autonomy = flag.String("autonomy", "off", "departures: off, dissat-starve, full")
		tlPath   = flag.String("timeline", "", "stream the first repetition's timeline snapshots to this CSV file (watch with sqlb-top)")
		csvPath  = flag.String("csv", "", "synonym for -timeline (streams the timeline schema; first repetition only)")
		top      = flag.Bool("top", false, "render the live sqlb-top dashboard while the first repetition runs")
		classes  = flag.Int("classes", 0, "query classes spread over 130-150 units (0 = the paper's two)")
		select_  = flag.Float64("selectivity", 0, "fraction of classes each provider advertises (0 or 1 = all, the paper's setup)")
		skew     = flag.Float64("class-skew", 0, "Zipf exponent of query-class popularity (0 = uniform)")
		scenFlag = flag.String("scenario", "", "time-varying load/churn scenario: a preset ("+strings.Join(scenario.Names(), ", ")+") or a scenario file")
	)
	flag.Parse()

	if *repeats < 1 {
		*repeats = 1
	}
	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	var profile workload.Profile = workload.Constant(*frac)
	if *ramp {
		profile = workload.Ramp{From: 0.3, To: 1.0, Duration: *duration}
	}
	var scn *scenario.Scenario
	if *scenFlag != "" {
		var err error
		if scn, err = scenario.Resolve(*scenFlag); err != nil {
			fatal("%v", err)
		}
	}
	var auto sim.Autonomy
	switch *autonomy {
	case "off":
	case "dissat-starve":
		auto = sim.DissatStarvationAutonomy()
	case "full":
		auto = sim.FullAutonomy()
	default:
		fatal("unknown -autonomy %q", *autonomy)
	}

	// Timeline plumbing: every repetition streams to its own CSV file(s),
	// named by the deterministic timeline.RepetitionPath scheme ("out.csv"
	// → "out.rep0.csv", …; a single run keeps the plain path). Each
	// repetition wraps its sinks in a collector — the CSV rows stream as
	// the run produces them (constant memory at any duration) — and -top
	// additionally renders the dashboard from the first repetition's
	// rolling window.
	var tlFiles []string
	if *tlPath != "" {
		tlFiles = append(tlFiles, *tlPath)
	}
	if *csvPath != "" && *csvPath != *tlPath {
		tlFiles = append(tlFiles, *csvPath)
	}
	// repSink builds repetition r's timeline sink (nil when no export is
	// active for it) and the collector that must be closed after its run.
	repSink := func(r int) (timeline.Sink, *timeline.Collector, error) {
		var sinks []timeline.Sink
		for _, p := range tlFiles {
			cs, err := timeline.CreateCSV(timeline.RepetitionPath(p, r, *repeats))
			if err != nil {
				return nil, nil, err
			}
			// Per-row flushing lets sqlb-top -follow watch the run live.
			cs.FlushEveryRow = true
			sinks = append(sinks, cs)
		}
		if len(sinks) == 0 && !(*top && r == 0) {
			return nil, nil, nil
		}
		col := timeline.NewCollector(0, 0, sinks...)
		if *top && r == 0 {
			dash := &timeline.Dashboard{Color: true}
			fmt.Print(timeline.HideCursor)
			return timeline.SinkFunc(func(s timeline.Snapshot) error {
				err := col.Append(s)
				win := col.Window()
				fmt.Print(timeline.HomeAndClear + dash.Frame(win, timeline.Assess(win)))
				// Pace the frames so the virtual-time run plays as a short
				// animation instead of flashing by; the delay is outside
				// the simulated clock, so results are unaffected.
				time.Sleep(40 * time.Millisecond)
				return err
			}), col, nil
		}
		return col, col, nil
	}

	// Fan the repetitions out over the worker budget. Each repetition gets
	// its own strategy instance and seed, so results[r] is the same whether
	// the runs happen serially or concurrently.
	results := make([]*sim.Result, *repeats)
	errs := make([]error, *repeats)
	sem := make(chan struct{}, *workers)
	var wg sync.WaitGroup
	for r := 0; r < *repeats; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			repSeed := *seed + uint64(r)
			strategy, err := strategyFor(*method, repSeed)
			if err != nil {
				errs[r] = err
				return
			}
			sink, col, err := repSink(r)
			if err != nil {
				errs[r] = err
				return
			}
			cfg := model.DefaultConfig().Scale(*scale).WithClasses(*classes)
			cfg.CapabilitySelectivity = *select_
			cfg.ClassSkew = *skew
			opts := sim.Options{
				Config:         cfg,
				Strategy:       strategy,
				Workload:       profile,
				Scenario:       scn,
				Duration:       *duration,
				Seed:           repSeed,
				SampleInterval: *duration / 50,
				Autonomy:       auto,
				Shards:         *shards,
				Timeline:       sink,
			}
			eng, err := sim.New(opts)
			if err != nil {
				errs[r] = err
				return
			}
			results[r] = eng.Run()
			if col != nil {
				tlErr := eng.TimelineErr()
				if err := col.Close(); err != nil && tlErr == nil {
					tlErr = err
				}
				if tlErr != nil {
					errs[r] = fmt.Errorf("timeline: %w", tlErr)
				}
			}
		}()
	}
	wg.Wait()
	if *top {
		fmt.Print(timeline.ShowCursor)
	}
	for _, err := range errs {
		if err != nil {
			fatal("%v", err)
		}
	}
	for _, rr := range results {
		if rr.Err != nil {
			fatal("mediation error: %v", rr.Err)
		}
	}

	res := results[0]
	if *repeats > 1 {
		fmt.Printf("repetitions       %d (seeds %d..%d, %d workers)\n",
			*repeats, *seed, *seed+uint64(*repeats-1), *workers)
		var resp, p95, loss float64
		for r, rr := range results {
			fmt.Printf("  run %-3d seed %-6d resp mean %.2fs p95 %.2fs  prov departures %.0f%%\n",
				r, rr.Seed, rr.MeanResponseTime, rr.ResponseHistogram.Quantile(0.95),
				100*rr.ProviderDepartureRate())
			resp += rr.MeanResponseTime
			p95 += rr.ResponseHistogram.Quantile(0.95)
			loss += 100 * rr.ProviderDepartureRate()
		}
		n := float64(*repeats)
		fmt.Printf("  average          resp mean %.2fs p95 %.2fs  prov departures %.0f%%\n",
			resp/n, p95/n, loss/n)
		fmt.Printf("first repetition follows:\n")
	}

	fmt.Printf("method            %s\n", res.Method)
	if scn != nil {
		fmt.Printf("scenario          %s (%d load knots, %d waves): %s\n",
			scn.Name, loadKnots(scn), len(scn.Waves), scn.Description)
	}
	fmt.Printf("duration          %.0f sim-seconds (seed %d)\n", res.Duration, res.Seed)
	fmt.Printf("population        %d consumers, %d providers\n", res.Consumers, res.Providers)
	if *classes > 1 || (*select_ > 0 && *select_ < 1) || *skew > 0 {
		fmt.Printf("capabilities      %d classes, selectivity %.2f, class skew %.2f\n",
			max(*classes, 2), *select_, *skew)
	}
	fmt.Printf("queries           issued %d, completed %d, dropped %d\n",
		res.IssuedQueries, res.CompletedQueries, res.DroppedQueries)
	fmt.Printf("response time     mean %.2fs, p50 %.2fs, p95 %.2fs, p99 %.2fs, max %.2fs\n",
		res.MeanResponseTime,
		res.ResponseHistogram.Quantile(0.5),
		res.ResponseHistogram.Quantile(0.95),
		res.ResponseHistogram.Quantile(0.99),
		res.MaxResponseTime)
	f := res.Final
	fmt.Printf("provider δs       intentions µ=%.3f f=%.3f σ=%.3f | preferences µ=%.3f\n",
		f.ProvSatIntention.Mean, f.ProvSatIntention.Fairness, f.ProvSatIntention.Balance,
		f.ProvSatPreference.Mean)
	fmt.Printf("provider δas      preferences µ=%.3f\n", f.ProvAllocSatPreference.Mean)
	fmt.Printf("consumer δs       µ=%.3f f=%.3f | δas µ=%.3f\n",
		f.ConsSat.Mean, f.ConsSat.Fairness, f.ConsAllocSat.Mean)
	fmt.Printf("utilization       µ=%.3f f=%.3f σ=%.3f\n",
		f.Utilization.Mean, f.Utilization.Fairness, f.Utilization.Balance)
	fmt.Printf("alive             %d/%d providers, %d/%d consumers\n",
		f.AliveProviders, res.Providers, f.AliveConsumers, res.Consumers)

	if len(res.ProviderDepartures) > 0 || len(res.ConsumerDepartures) > 0 {
		reasons := map[model.DepartureReason]int{}
		for _, d := range res.ProviderDepartures {
			reasons[d.Reason]++
		}
		fmt.Printf("departures        providers %.0f%% (", 100*res.ProviderDepartureRate())
		parts := []string{}
		for _, r := range model.AllDepartureReasons {
			if reasons[r] > 0 {
				parts = append(parts, fmt.Sprintf("%s %d", r, reasons[r]))
			}
		}
		fmt.Printf("%s), consumers %.0f%%\n", strings.Join(parts, ", "), 100*res.ConsumerDepartureRate())
	}
	if len(res.ProviderJoins) > 0 {
		fmt.Printf("rejoins           %d providers re-registered by rejoin waves\n", len(res.ProviderJoins))
	}

	for _, p := range tlFiles {
		for r := 0; r < *repeats; r++ {
			fmt.Printf("wrote %s\n", timeline.RepetitionPath(p, r, *repeats))
		}
	}
}

func strategyFor(name string, seed uint64) (allocator.Allocator, error) {
	switch name {
	case "sqlb":
		return allocator.NewSQLB(), nil
	case "capacity":
		return allocator.NewCapacityBased(), nil
	case "mariposa":
		return allocator.NewMariposaLike(), nil
	case "random":
		return allocator.NewRandom(seed), nil
	case "knbest":
		return allocator.NewKnBest(), nil
	case "sqlb-econ":
		return allocator.NewSQLBEconomic(), nil
	}
	return nil, fmt.Errorf("unknown method %q", name)
}

// loadKnots counts the scenario's load-curve knots (0 without a curve).
func loadKnots(s *scenario.Scenario) int {
	if s.Load == nil {
		return 0
	}
	return len(s.Load.Knots)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sqlb-sim: "+format+"\n", args...)
	os.Exit(1)
}

# SQLB reproduction — build, test, and benchmark targets.

GO ?= go

# BENCH selects the regression benchmark set: the Rank/Select and
# matchmaking hot-path micro-benchmarks and the serial-vs-parallel Lab
# runs. Override with `make bench BENCH=.` for the full suite.
BENCH ?= BenchmarkRank|BenchmarkSelectTopN|BenchmarkLab|BenchmarkMediatorAllocate|BenchmarkMatchmaking

.PHONY: all build test race vet fmt-check bench clean

all: vet fmt-check build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race covers the packages with real concurrency: the parallel experiment
# Lab, the simulation engine it fans out, and the mediator server.
race:
	$(GO) test -race ./internal/experiments/... ./internal/sim/... ./internal/mediator/... ./internal/matchmaking/...

vet:
	$(GO) vet ./...

# fmt-check fails if any file needs gofmt — the godoc/format gate CI runs.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# bench writes BENCH_results.json (ns/op plus reported metrics) so future
# PRs have a perf trajectory to compare against.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem . | $(GO) run ./tools/benchjson -out BENCH_results.json

clean:
	rm -f BENCH_results.json

# SQLB reproduction — build, test, and benchmark targets.

GO ?= go

# BENCH selects the regression benchmark set: the Rank/Select and
# matchmaking hot-path micro-benchmarks, the serial-vs-parallel Lab runs,
# the batched-vs-per-query mediation service path, the streaming
# timeline CSV writer (rows/sec, 0 allocs/row), and the population-scale
# pair (mediation over a 100k-provider Pq, bytes/participant at build).
# Override with `make bench BENCH=.` for the full suite.
BENCH ?= BenchmarkRank|BenchmarkSelectTopN|BenchmarkLab|BenchmarkMediatorAllocate|BenchmarkMatchmaking|BenchmarkServerMediate|BenchmarkTimelineCSV|BenchmarkSimulationShards|BenchmarkMediate100k|BenchmarkPopulationBuild100k

# BENCH_COUNT repeats each benchmark -count times. The default single run
# is fine for the trajectory record; use `make bench BENCH_COUNT=10` when a
# delta looks noisy and you want spread before believing it.
BENCH_COUNT ?= 1

# SERVE_JSON is where serve-bench drops the sqlb-serve steady-state report;
# bench embeds it into BENCH_results.json when present.
SERVE_JSON ?= artifacts/serving_10k.json

# COVER_MIN is the statement-coverage floor `make cover` enforces across
# ./... (mains and examples included at 0%). The recorded baseline is
# 78.7% (the sharded-engine PR brought cmd/sqlb-sim under test); the
# floor leaves ~3 points of slack for normal fluctuation while failing a
# PR that sheds test coverage.
COVER_MIN ?= 76
COVER_PROFILE ?= coverage.out

# FUZZTIME bounds the `make fuzz` run of the scenario-parser fuzz target.
FUZZTIME ?= 30s

.PHONY: all build test race vet fmt-check cover fuzz bench serve-bench clean

all: vet fmt-check build test

build:
	$(GO) build ./...

# test prints per-package statement coverage alongside the results.
test:
	$(GO) test -cover ./...

# race covers the packages with real concurrency: the parallel experiment
# Lab, the simulation engine it fans out, the mediator server, and the
# serving driver's worker pool.
race:
	$(GO) test -race ./internal/experiments/... ./internal/sim/... ./internal/mediator/... ./internal/matchmaking/... ./internal/serving/...

vet:
	$(GO) vet ./...

# cover runs the suite with a profile and gates on the recorded coverage
# floor (tools/covergate prints the per-package breakdown).
cover:
	$(GO) test -coverprofile=$(COVER_PROFILE) ./...
	$(GO) run ./tools/covergate -profile $(COVER_PROFILE) -min $(COVER_MIN)

# fuzz runs the native Go fuzz target for the scenario parser: arbitrary
# bytes must never panic, and accepted documents must validate and
# re-parse identically.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/scenario

# fmt-check fails if any file needs gofmt — the godoc/format gate CI runs.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# bench writes BENCH_results.json (ns/op plus reported metrics) so future
# PRs have a perf trajectory to compare against. If serve-bench has left a
# steady-state serving report behind, it rides along under the "serving" key.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -count $(BENCH_COUNT) -benchmem . | $(GO) run ./tools/benchjson -out BENCH_results.json -serving $(SERVE_JSON)

# serve-bench measures the mediator-as-a-service throughput path at
# |P| = 10000: sqlb-serve drives an open-loop schedule against the live
# mediation server and writes the mediations/sec + latency-percentile
# report that bench then embeds into BENCH_results.json.
serve-bench:
	mkdir -p artifacts
	$(GO) run ./cmd/sqlb-serve -providers 10000 -consumers 200 -classes 20 -selectivity 0.05 \
		-qps 300 -batch 32 -warmup 2s -measure 8s -json $(SERVE_JSON)

clean:
	rm -f BENCH_results.json $(COVER_PROFILE)

package sqlb_test

import (
	"testing"

	"sqlb"
)

// These integration tests assert the paper's qualitative results — the
// "shapes" of Section 6 — on reduced-scale simulations. They are the
// regression net for the reproduction itself: a change that makes a
// baseline beat SQLB on its own turf should fail loudly here.

func captiveRun(t *testing.T, strategy sqlb.Allocator, frac float64, seed uint64) *sqlb.SimResult {
	t.Helper()
	opts := sqlb.SimOptions{
		Config:   sqlb.DefaultConfig().Scale(0.1),
		Strategy: strategy,
		Workload: sqlb.ConstantWorkload(frac),
		Duration: 1500,
		Seed:     seed,
	}
	simu, err := sqlb.NewSimulation(opts)
	if err != nil {
		t.Fatalf("NewSimulation: %v", err)
	}
	return simu.Run()
}

func autonomousRun(t *testing.T, strategy sqlb.Allocator, frac float64, seed uint64) *sqlb.SimResult {
	t.Helper()
	opts := sqlb.SimOptions{
		Config:   sqlb.DefaultConfig().Scale(0.1),
		Strategy: strategy,
		Workload: sqlb.ConstantWorkload(frac),
		Duration: 5000,
		Seed:     seed,
		Autonomy: sqlb.FullAutonomy(),
	}
	simu, err := sqlb.NewSimulation(opts)
	if err != nil {
		t.Fatalf("NewSimulation: %v", err)
	}
	return simu.Run()
}

// Figure 4(i): with captive participants, Capacity-based has the best
// response times; SQLB pays a modest factor; Mariposa-like pays the most.
func TestReproductionResponseTimeOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	capRes := captiveRun(t, sqlb.NewCapacityBased(), 0.8, 42)
	sqlbRes := captiveRun(t, sqlb.NewSQLB(), 0.8, 42)
	marRes := captiveRun(t, sqlb.NewMariposaLike(), 0.8, 42)

	if !(capRes.MeanResponseTime < sqlbRes.MeanResponseTime) {
		t.Errorf("capacity-based (%.2fs) should beat SQLB (%.2fs) on captive response time",
			capRes.MeanResponseTime, sqlbRes.MeanResponseTime)
	}
	if !(sqlbRes.MeanResponseTime < marRes.MeanResponseTime) {
		t.Errorf("SQLB (%.2fs) should beat Mariposa-like (%.2fs)",
			sqlbRes.MeanResponseTime, marRes.MeanResponseTime)
	}
	// The paper: SQLB degrades only ≈1.4× vs capacity-based. Allow slack
	// for the reduced scale, but it must stay within a small factor.
	if ratio := sqlbRes.MeanResponseTime / capRes.MeanResponseTime; ratio > 3.5 {
		t.Errorf("SQLB/capacity response ratio = %.2f, want ≲ 3.5 (paper: 1.4)", ratio)
	}
}

// Figure 4(e): SQLB is the only method that satisfies consumers (allocation
// satisfaction > 1); the baselines are neutral (≈ 1).
func TestReproductionConsumerAllocationSatisfaction(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	sqlbRes := captiveRun(t, sqlb.NewSQLB(), 0.6, 42)
	capRes := captiveRun(t, sqlb.NewCapacityBased(), 0.6, 42)
	marRes := captiveRun(t, sqlb.NewMariposaLike(), 0.6, 42)

	if got := sqlbRes.Final.ConsAllocSat.Mean; got <= 1.02 {
		t.Errorf("SQLB consumer δas = %.3f, want > 1", got)
	}
	for _, res := range []*sqlb.SimResult{capRes, marRes} {
		if got := res.Final.ConsAllocSat.Mean; got > 1.05 {
			t.Errorf("%s consumer δas = %.3f, want ≈ 1 (neutral)", res.Method, got)
		}
	}
	if sqlbRes.Final.ConsAllocSat.Mean <= capRes.Final.ConsAllocSat.Mean {
		t.Error("SQLB should satisfy consumers strictly better than capacity-based")
	}
}

// Figure 4(g)/(h): Capacity-based balances best; Mariposa-like worst.
func TestReproductionLoadBalanceOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	capRes := captiveRun(t, sqlb.NewCapacityBased(), 0.8, 42)
	sqlbRes := captiveRun(t, sqlb.NewSQLB(), 0.8, 42)
	marRes := captiveRun(t, sqlb.NewMariposaLike(), 0.8, 42)

	if capRes.Final.Utilization.Fairness < 0.97 {
		t.Errorf("capacity-based utilization fairness = %.3f, want ≈ 1", capRes.Final.Utilization.Fairness)
	}
	if !(capRes.Final.Utilization.Fairness >= sqlbRes.Final.Utilization.Fairness) {
		t.Error("capacity-based should balance at least as well as SQLB")
	}
	if !(sqlbRes.Final.Utilization.Fairness > marRes.Final.Utilization.Fairness) {
		t.Errorf("SQLB (f=%.3f) should balance better than Mariposa-like (f=%.3f)",
			sqlbRes.Final.Utilization.Fairness, marRes.Final.Utilization.Fairness)
	}
}

// Figure 4(h) note: SQLB has difficulty being fair below 40% workload and
// becomes fairer as the workload grows — its adaptability signature.
func TestReproductionSQLBFairnessImprovesWithLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	low := captiveRun(t, sqlb.NewSQLB(), 0.3, 42)
	high := captiveRun(t, sqlb.NewSQLB(), 0.9, 42)
	if !(high.Final.Utilization.Fairness > low.Final.Utilization.Fairness) {
		t.Errorf("SQLB fairness should improve with load: %.3f at 30%% vs %.3f at 90%%",
			low.Final.Utilization.Fairness, high.Final.Utilization.Fairness)
	}
}

// Figures 5(c)/6 and Table 3 at 80% workload.
func TestReproductionAutonomyHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	seeds := []uint64{7, 99}
	for _, seed := range seeds {
		sqlbRes := autonomousRun(t, sqlb.NewSQLB(), 0.8, seed)
		capRes := autonomousRun(t, sqlb.NewCapacityBased(), 0.8, seed)
		marRes := autonomousRun(t, sqlb.NewMariposaLike(), 0.8, seed)

		// SQLB retains most providers; baselines lose far more.
		if got := sqlbRes.ProviderDepartureRate(); got > 0.5 {
			t.Errorf("seed %d: SQLB lost %.0f%% of providers, want ≲ 50%% (paper ≈ 28%%)", seed, 100*got)
		}
		if capRes.ProviderDepartureRate() <= sqlbRes.ProviderDepartureRate() {
			t.Errorf("seed %d: capacity-based should lose more providers than SQLB", seed)
		}
		if marRes.ProviderDepartureRate() <= sqlbRes.ProviderDepartureRate() {
			t.Errorf("seed %d: Mariposa-like should lose more providers than SQLB", seed)
		}

		// SQLB loses no consumers.
		if got := sqlbRes.ConsumerDepartureRate(); got != 0 {
			t.Errorf("seed %d: SQLB lost %.0f%% of consumers, want 0", seed, 100*got)
		}

		// Reason mixes: Mariposa-like overutilization-heavy relative to
		// SQLB, whose departures are dissatisfaction/starvation.
		count := func(res *sqlb.SimResult, reason sqlb.DepartureReason) int {
			n := 0
			for _, d := range res.ProviderDepartures {
				if d.Reason == reason {
					n++
				}
			}
			return n
		}
		if over := count(sqlbRes, sqlb.ReasonOverutilization); over > len(sqlbRes.ProviderDepartures)/2 {
			t.Errorf("seed %d: SQLB departures should not be overutilization-dominated (%d of %d)",
				seed, over, len(sqlbRes.ProviderDepartures))
		}
		if len(marRes.ProviderDepartures) > 0 {
			over := count(marRes, sqlb.ReasonOverutilization)
			dis := count(marRes, sqlb.ReasonDissatisfaction)
			if over == 0 && dis == 0 {
				t.Errorf("seed %d: Mariposa-like lost providers for unexpected reasons", seed)
			}
		}
	}
}

// The engine end-to-end is deterministic: two identical configurations
// replay departures event-for-event.
func TestReproductionDeterministicDepartures(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	a := autonomousRun(t, sqlb.NewSQLB(), 0.8, 5)
	b := autonomousRun(t, sqlb.NewSQLB(), 0.8, 5)
	if len(a.ProviderDepartures) != len(b.ProviderDepartures) {
		t.Fatalf("departure counts diverged: %d vs %d",
			len(a.ProviderDepartures), len(b.ProviderDepartures))
	}
	for i := range a.ProviderDepartures {
		da, db := a.ProviderDepartures[i], b.ProviderDepartures[i]
		if da != db {
			t.Fatalf("departure %d diverged: %+v vs %+v", i, da, db)
		}
	}
}

module sqlb

go 1.24

// Package sqlb is a from-scratch Go implementation of SQLB — the
// Satisfaction-based Query Load Balancing framework of Quiané-Ruiz,
// Lamarre, and Valduriez (VLDB 2007) — together with the entire mediation
// system it lives in: the participant satisfaction model (adequation,
// satisfaction, allocation satisfaction over sliding windows), the
// intention calculus, the baseline allocation methods the paper compares
// against (Capacity-based and Mariposa-like), a discrete-event simulator of
// the mediation system, and a benchmark harness that regenerates every
// table and figure of the paper's evaluation.
//
// # Quick start
//
//	cfg := sqlb.DefaultConfig().Scale(0.1)
//	pop := sqlb.NewPopulation(cfg, 42)
//	med := sqlb.NewMediator(sqlb.NewSQLB())
//	q := &sqlb.Query{ID: 1, Consumer: pop.Consumers[0], Class: 0, Units: 130, N: 1}
//	alloc, err := med.Allocate(0, q, pop)
//
// For full simulations use NewSimulation; for the paper's experiments use
// NewExperimentLab (or the cmd/sqlb-experiments binary).
//
// See DESIGN.md for the system inventory and the paper-to-module map, and
// EXPERIMENTS.md for reproduced-versus-published results.
package sqlb

import (
	"time"

	"sqlb/internal/allocator"
	"sqlb/internal/core"
	"sqlb/internal/experiments"
	"sqlb/internal/intention"
	"sqlb/internal/matchmaking"
	"sqlb/internal/mediator"
	"sqlb/internal/metrics"
	"sqlb/internal/model"
	"sqlb/internal/randx"
	"sqlb/internal/sim"
	"sqlb/internal/workload"
)

// Core data model (Section 2 of the paper).
type (
	// Config is the system configuration (Table 2 defaults via
	// DefaultConfig).
	Config = model.Config
	// Population is the set of consumers and providers at the mediator.
	Population = model.Population
	// Consumer is an autonomous query issuer.
	Consumer = model.Consumer
	// Provider is an autonomous query performer with finite capacity.
	Provider = model.Provider
	// Query is the q = ⟨c, d, n⟩ triple.
	Query = model.Query
	// QueryClass describes one class of queries.
	QueryClass = model.QueryClass
	// ClassLevel is the low/medium/high provider classification.
	ClassLevel = model.ClassLevel
	// DepartureReason says why a participant left (Section 6.3.2).
	DepartureReason = model.DepartureReason
)

// Class levels and departure reasons re-exported for matching.
const (
	Low    = model.Low
	Medium = model.Medium
	High   = model.High

	ReasonNone            = model.ReasonNone
	ReasonDissatisfaction = model.ReasonDissatisfaction
	ReasonStarvation      = model.ReasonStarvation
	ReasonOverutilization = model.ReasonOverutilization
)

// Allocation strategies (Sections 5-6.2).
type (
	// Allocator is a pluggable query-allocation strategy.
	Allocator = allocator.Allocator
	// AllocationRequest is the per-query input an Allocator sees.
	AllocationRequest = allocator.Request
	// SQLBMethod is the paper's satisfaction-based method.
	SQLBMethod = allocator.SQLB
	// Mediator drives matchmaking, intention gathering, and allocation.
	Mediator = mediator.Mediator
	// Allocation is the outcome of mediating one query.
	Allocation = mediator.Allocation
	// Matchmaker finds the providers able to treat a query.
	Matchmaker = mediator.Matchmaker
	// CapabilityMatcher matches on a per-provider capability predicate.
	CapabilityMatcher = mediator.CapabilityMatcher
	// MatchIndex is the inverted capability index: O(|Pq|) posting-list
	// lookups maintained incrementally under provider churn.
	MatchIndex = matchmaking.Index
	// IntentionCollector gathers intentions concurrently with a timeout
	// (Algorithm 1 lines 2-5) from possibly slow or remote participants.
	IntentionCollector = mediator.Collector
	// ConsumerClient and ProviderClient are participant endpoints the
	// collector queries.
	ConsumerClient = mediator.ConsumerClient
	ProviderClient = mediator.ProviderClient
	// LocalConsumer and LocalProvider adapt in-process participants to the
	// client interfaces.
	LocalConsumer = mediator.LocalConsumer
	LocalProvider = mediator.LocalProvider
	// MediationServer runs a mediator as a long-lived concurrent service:
	// queries from any goroutine, per-query concurrent intention fan-out,
	// serialized allocation commits.
	MediationServer = mediator.Server
	// MediationBatchResult is one query's outcome within a batched
	// mediation turn (MediationServer.MediateBatch).
	MediationBatchResult = mediator.BatchResult
	// CollectStats accounts for intention answers that fell back to the
	// collector's Default (errored or timed-out participants).
	CollectStats = mediator.CollectStats
)

// Simulation (Section 6.1 substrate).
type (
	// SimOptions configures one simulation run.
	SimOptions = sim.Options
	// Autonomy selects the active departure rules.
	Autonomy = sim.Autonomy
	// Simulation is a runnable discrete-event simulation.
	Simulation = sim.Engine
	// SimResult is the outcome of a run.
	SimResult = sim.Result
	// Sample is one §4 metric snapshot.
	Sample = sim.Sample
	// MetricSummary bundles mean, fairness, and balance for a value set.
	MetricSummary = metrics.Summary
	// WorkloadProfile maps sim-time to the offered workload fraction.
	WorkloadProfile = workload.Profile
	// ConstantWorkload is a fixed workload fraction.
	ConstantWorkload = workload.Constant
	// RampWorkload increases the workload linearly (Figure 4 setting).
	RampWorkload = workload.Ramp
)

// Experiments (Section 6 reproduction harness).
type (
	// ExperimentConfig scales the experiment suite.
	ExperimentConfig = experiments.Config
	// ExperimentLab owns memoized runs for one configuration.
	ExperimentLab = experiments.Lab
	// ExperimentResult is one regenerated table/figure.
	ExperimentResult = experiments.Result
)

// DefaultConfig returns the paper's Table 2 configuration (200 consumers,
// 400 providers, windows 200/500, initial satisfaction 0.5, υ = 1, ε = 1).
func DefaultConfig() Config { return model.DefaultConfig() }

// NewPopulation builds a participant population from the configuration,
// deterministically from the seed.
func NewPopulation(cfg Config, seed uint64) *Population {
	return model.NewPopulation(cfg, randx.New(seed), 0)
}

// NewMediator returns a mediator running the given allocation strategy with
// the all-providers matchmaker.
func NewMediator(strategy Allocator) *Mediator { return mediator.New(strategy) }

// BuildMatchIndex indexes the population's alive providers by advertised
// query class; assign it to Mediator.Match to replace the O(|P|) scan with
// O(|Pq|) posting-list lookups (simulations built via NewSimulation do
// this automatically).
func BuildMatchIndex(pop *Population) *MatchIndex { return matchmaking.BuildIndex(pop) }

// ByCapability returns the naive sound-and-complete matchmaker over the
// providers' advertised capability sets — the reference the index is
// property-tested against.
func ByCapability() CapabilityMatcher { return mediator.ByCapability() }

// NewMediationServer returns a concurrent mediation service over the
// population; timeout bounds each query's intention collection and now
// supplies the mediation clock (nil = wall clock).
func NewMediationServer(strategy Allocator, pop *Population, timeout time.Duration, now func() float64) *MediationServer {
	return mediator.NewServer(strategy, pop, timeout, now)
}

// NewSQLB returns the paper's SQLB method with the adaptive ω of
// Equation 6.
func NewSQLB() Allocator { return allocator.NewSQLB() }

// NewSQLBFixedOmega returns SQLB with a constant ω ∈ [0,1] (the paper's
// application-specific setting; ω = 0 weights only consumer intentions).
func NewSQLBFixedOmega(omega float64) Allocator { return allocator.NewSQLBFixedOmega(omega) }

// NewCapacityBased returns the Capacity-based baseline (Section 6.2.1).
func NewCapacityBased() Allocator { return allocator.NewCapacityBased() }

// NewMariposaLike returns the Mariposa-like economic baseline
// (Section 6.2.2).
func NewMariposaLike() Allocator { return allocator.NewMariposaLike() }

// NewKnBest returns the KnBest-style extension strategy (the paper's
// ref [17]).
func NewKnBest() Allocator { return allocator.NewKnBest() }

// NewSQLBEconomic returns the economic SQLB variant the paper sketches as
// future work (bids computed from intentions, Section 7).
func NewSQLBEconomic() Allocator { return allocator.NewSQLBEconomic() }

// NewRandom returns the uniform-random control strategy.
func NewRandom(seed uint64) Allocator { return allocator.NewRandom(seed) }

// NewSimulation builds a discrete-event simulation from the options.
func NewSimulation(opts SimOptions) (*Simulation, error) { return sim.New(opts) }

// FullAutonomy is the Figure 5(b) departure setting.
func FullAutonomy() Autonomy { return sim.FullAutonomy() }

// DissatStarvationAutonomy is the Figure 5(a) departure setting.
func DissatStarvationAutonomy() Autonomy { return sim.DissatStarvationAutonomy() }

// NewExperimentLab returns a lab that regenerates the paper's tables and
// figures under the given scaling.
func NewExperimentLab(cfg ExperimentConfig) *ExperimentLab { return experiments.NewLab(cfg) }

// Experiments lists the registered experiment IDs in paper order.
func Experiments() []string {
	out := make([]string, len(experiments.Registry))
	for i, s := range experiments.Registry {
		out[i] = s.ID
	}
	return out
}

// Mean is the §4 efficiency metric µ(g,S) (Equation 3).
func Mean(values []float64) float64 { return metrics.Mean(values) }

// Fairness is the §4 sensitivity metric f(g,S), the Jain fairness index
// (Equation 4).
func Fairness(values []float64) float64 { return metrics.Fairness(values) }

// Balance is the §4 min-max balance metric σ(g,S) (Equation 5).
func Balance(values []float64) float64 { return metrics.Balance(values) }

// Summarize computes all three §4 metrics over a value set.
func Summarize(values []float64) MetricSummary { return metrics.Summarize(values) }

// ConsumerIntention evaluates Definition 7 (raw value; see DESIGN.md on why
// scoring uses raw intentions).
func ConsumerIntention(pref, reputation, upsilon, epsilon float64) float64 {
	return intention.Consumer(pref, reputation, upsilon, epsilon)
}

// ProviderIntention evaluates Definition 8.
func ProviderIntention(pref, utilization, satisfaction, epsilon float64) float64 {
	return intention.Provider(pref, utilization, satisfaction, epsilon)
}

// Omega evaluates Equation 6, the adaptive consumer/provider balance.
func Omega(consumerSat, providerSat float64) float64 { return core.Omega(consumerSat, providerSat) }

// Score evaluates Definition 9, the provider score.
func Score(providerIntention, consumerIntention, omega, epsilon float64) float64 {
	return core.Score(providerIntention, consumerIntention, omega, epsilon)
}

// Benchmarks: one testing.B target per table and figure of the paper's
// evaluation (Section 6), micro-benchmarks of the hot paths, and ablation
// benchmarks for the design choices called out in DESIGN.md §4.
//
// The per-figure benches run reduced-scale simulations (the shapes are
// scale-stable; see DESIGN.md §2.8) and report the headline shape numbers
// via b.ReportMetric so a regression in *behaviour*, not just speed, is
// visible in benchmark diffs. cmd/sqlb-experiments regenerates the full
// artifacts.
package sqlb_test

import (
	"context"
	"io"
	"runtime"
	"testing"
	"time"

	"sqlb"
	"sqlb/internal/allocator"
	"sqlb/internal/core"
	"sqlb/internal/experiments"
	"sqlb/internal/intention"
	"sqlb/internal/metrics"
	"sqlb/internal/model"
	"sqlb/internal/randx"
	"sqlb/internal/satisfaction"
	"sqlb/internal/sim"
	"sqlb/internal/timeline"
	"sqlb/internal/workload"
)

// benchConfig is the reduced scale used by the per-figure benches.
func benchConfig() experiments.Config {
	return experiments.Config{
		Scale:          0.05, // 10 consumers, 20 providers
		Duration:       400,
		SweepDuration:  1600, // past the 300 s grace + assessment convergence, so departures register
		Repeats:        1,
		BaseSeed:       5,
		SampleInterval: 50,
		Workloads:      []float64{0.4, 0.8},
	}
}

// runExperiment executes one experiment per iteration on a fresh lab.
func runExperiment(b *testing.B, id string) *experiments.Result {
	b.Helper()
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		lab := experiments.NewLab(benchConfig())
		var err error
		res, err = lab.Run(id)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	return res
}

// lastY returns the last y of the named series in the result's only chart.
func lastY(b *testing.B, res *experiments.Result, series string) float64 {
	b.Helper()
	for _, s := range res.Charts[0].Series {
		if s.Name == series && len(s.Points) > 0 {
			return s.Points[len(s.Points)-1].Y
		}
	}
	b.Fatalf("series %q not found", series)
	return 0
}

func BenchmarkTable1Scenario(b *testing.B) {
	res := runExperiment(b, "table1")
	if res.Tables[0].Rows[4][6] != "yes" {
		b.Fatal("table1: p5 not selected")
	}
}

func BenchmarkFig2Surface(b *testing.B) {
	res := runExperiment(b, "fig2")
	b.ReportMetric(float64(len(res.Tables[0].Rows)), "grid-points")
}

func BenchmarkFig3OmegaSurface(b *testing.B) {
	res := runExperiment(b, "fig3")
	b.ReportMetric(float64(len(res.Tables[0].Rows)), "grid-points")
}

func benchFig4Panel(b *testing.B, id, metric string) {
	res := runExperiment(b, id)
	b.ReportMetric(lastY(b, res, "SQLB"), "sqlb-"+metric)
	b.ReportMetric(lastY(b, res, "Capacity based"), "capacity-"+metric)
}

func BenchmarkFig4aProviderSatisfaction(b *testing.B) {
	benchFig4Panel(b, "fig4a", "final-sat")
}

func BenchmarkFig4bProviderSatisfactionPrefs(b *testing.B) {
	benchFig4Panel(b, "fig4b", "final-sat")
}

func BenchmarkFig4cProviderAllocSatisfaction(b *testing.B) {
	benchFig4Panel(b, "fig4c", "final-allocsat")
}

func BenchmarkFig4dProviderSatFairness(b *testing.B) {
	benchFig4Panel(b, "fig4d", "final-fairness")
}

func BenchmarkFig4eConsumerAllocSatisfaction(b *testing.B) {
	res := runExperiment(b, "fig4e")
	// The paper's claim: SQLB satisfies consumers (δas > 1), baselines are
	// neutral (≈1).
	b.ReportMetric(lastY(b, res, "SQLB"), "sqlb-consumer-allocsat")
	b.ReportMetric(lastY(b, res, "Capacity based"), "capacity-consumer-allocsat")
}

func BenchmarkFig4fConsumerSatFairness(b *testing.B) {
	benchFig4Panel(b, "fig4f", "final-fairness")
}

func BenchmarkFig4gUtilizationMean(b *testing.B) {
	benchFig4Panel(b, "fig4g", "final-util")
}

func BenchmarkFig4hUtilizationFairness(b *testing.B) {
	benchFig4Panel(b, "fig4h", "final-fairness")
}

func BenchmarkFig4iResponseTimeCaptive(b *testing.B) {
	res := runExperiment(b, "fig4i")
	sqlbRT := lastY(b, res, "SQLB")
	capRT := lastY(b, res, "Capacity based")
	marRT := lastY(b, res, "Mariposa-like")
	if capRT > 0 {
		b.ReportMetric(sqlbRT/capRT, "sqlb/capacity-ratio")
		b.ReportMetric(marRT/capRT, "mariposa/capacity-ratio")
	}
}

func BenchmarkFig5aResponseTimeAutonomy(b *testing.B) {
	res := runExperiment(b, "fig5a")
	b.ReportMetric(lastY(b, res, "SQLB"), "sqlb-resp-s")
	b.ReportMetric(lastY(b, res, "Capacity based"), "capacity-resp-s")
}

func BenchmarkFig5bResponseTimeFullAutonomy(b *testing.B) {
	res := runExperiment(b, "fig5b")
	b.ReportMetric(lastY(b, res, "SQLB"), "sqlb-resp-s")
	b.ReportMetric(lastY(b, res, "Capacity based"), "capacity-resp-s")
}

func BenchmarkFig5cProviderDepartures(b *testing.B) {
	res := runExperiment(b, "fig5c")
	b.ReportMetric(lastY(b, res, "SQLB"), "sqlb-departures-pct")
	b.ReportMetric(lastY(b, res, "Capacity based"), "capacity-departures-pct")
}

func BenchmarkTable3DepartureReasons(b *testing.B) {
	res := runExperiment(b, "table3")
	b.ReportMetric(float64(len(res.Tables[0].Rows)), "rows")
}

func BenchmarkFig6ConsumerDepartures(b *testing.B) {
	res := runExperiment(b, "fig6")
	b.ReportMetric(lastY(b, res, "SQLB"), "sqlb-departures-pct")
	b.ReportMetric(lastY(b, res, "Mariposa-like"), "mariposa-departures-pct")
}

// --- micro-benchmarks of the hot paths ---

func BenchmarkScore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.Score(0.7, 0.4, 0.6, 1)
	}
}

func BenchmarkScoreNegativeBranch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.Score(-0.7, 0.4, 0.6, 1)
	}
}

func BenchmarkProviderIntention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		intention.Provider(0.6, 0.8, 0.5, 1)
	}
}

func BenchmarkConsumerIntention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		intention.Consumer(0.6, 0.8, 0.7, 1)
	}
}

func benchRank(b *testing.B, n int) {
	rng := randx.New(3)
	pi := make([]float64, n)
	ci := make([]float64, n)
	om := make([]float64, n)
	for i := range pi {
		pi[i] = rng.Uniform(-1, 1)
		ci[i] = rng.Uniform(-1, 1)
		om[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Rank(pi, ci, om, 1)
	}
}

func BenchmarkRank100(b *testing.B) { benchRank(b, 100) }

func BenchmarkRank400(b *testing.B) { benchRank(b, 400) }

// benchRankTop measures the partial ranking of the allocation hot path:
// only the q.n best of |Pq| providers are materialized. Compare against
// BenchmarkRank400 (the full-sort ranking) for the top-n win.
func benchRankTop(b *testing.B, total, n int) {
	rng := randx.New(3)
	pi := make([]float64, total)
	ci := make([]float64, total)
	om := make([]float64, total)
	for i := range pi {
		pi[i] = rng.Uniform(-1, 1)
		ci[i] = rng.Uniform(-1, 1)
		om[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.RankTop(n, pi, ci, om, 1)
	}
}

func BenchmarkRankTop400n4(b *testing.B) { benchRankTop(b, 400, 4) }

func BenchmarkRankTop400n32(b *testing.B) { benchRankTop(b, 400, 32) }

func BenchmarkRankTop100n4(b *testing.B) { benchRankTop(b, 100, 4) }

// benchSelectTopN isolates the selection helper itself (no Definition 9
// scoring): bounded heap at n ≪ total vs the full-sort fallback at
// n = total over the same keys.
func benchSelectTopN(b *testing.B, total, n int) {
	rng := randx.New(6)
	vals := make([]float64, total)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	less := func(x, y int) bool {
		if vals[x] != vals[y] {
			return vals[x] > vals[y]
		}
		return x < y
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.SelectTopN(total, n, less)
	}
}

func BenchmarkSelectTopN400n4(b *testing.B) { benchSelectTopN(b, 400, 4) }

func BenchmarkSelectTopN400Full(b *testing.B) { benchSelectTopN(b, 400, 400) }

func BenchmarkFairness400(b *testing.B) {
	rng := randx.New(4)
	vs := make([]float64, 400)
	for i := range vs {
		vs[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.Fairness(vs)
	}
}

func BenchmarkProviderTrackerRecord(b *testing.B) {
	pt := satisfaction.NewProviderTracker(500, 0.5, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt.Record(0.3, i%400 == 0)
	}
}

// --- matchmaking: indexed posting-list lookup vs naive population scan ---

// matchPop builds a |P|-provider population over nClasses classes at the
// given capability selectivity.
func matchPop(b *testing.B, providers, nClasses int, selectivity float64) *sqlb.Population {
	b.Helper()
	cfg := sqlb.DefaultConfig().WithClasses(nClasses)
	cfg.Consumers = 2
	cfg.Providers = providers
	cfg.CapabilitySelectivity = selectivity
	return sqlb.NewPopulation(cfg, 7)
}

// benchMatch measures one matchmaking step per iteration, rotating the
// query class so every posting list is exercised.
func benchMatch(b *testing.B, m sqlb.Matchmaker, pop *sqlb.Population, nClasses int) {
	b.Helper()
	q := &model.Query{ID: 1, Consumer: pop.Consumers[0], Units: 130, N: 1}
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		q.Class = i % nClasses
		total += len(m.Match(q, pop))
	}
	b.ReportMetric(float64(total)/float64(b.N), "Pq-size")
}

// BenchmarkMatchmakingScan1000 vs BenchmarkMatchmakingIndexed1000 is the
// tentpole's perf criterion: at |P| = 1000 and 10% selectivity the indexed
// O(|Pq|) lookup must beat the naive O(|P|) predicate scan.
func BenchmarkMatchmakingScan1000(b *testing.B) {
	pop := matchPop(b, 1000, 10, 0.1)
	benchMatch(b, sqlb.ByCapability(), pop, 10)
}

func BenchmarkMatchmakingIndexed1000(b *testing.B) {
	pop := matchPop(b, 1000, 10, 0.1)
	benchMatch(b, sqlb.BuildMatchIndex(pop), pop, 10)
}

// The homogeneous pair shows the win persists even with all-capable
// providers (no per-query alive-list rebuild).
func BenchmarkMatchmakingScanHomogeneous(b *testing.B) {
	pop := matchPop(b, 1000, 2, 0)
	benchMatch(b, sqlb.ByCapability(), pop, 2)
}

func BenchmarkMatchmakingIndexedHomogeneous(b *testing.B) {
	pop := matchPop(b, 1000, 2, 0)
	benchMatch(b, sqlb.BuildMatchIndex(pop), pop, 2)
}

// BenchmarkMatchmakingChurn measures incremental maintenance: one Remove +
// Add round-trip per iteration on a 1000-provider index.
func BenchmarkMatchmakingChurn(b *testing.B) {
	pop := matchPop(b, 1000, 10, 0.1)
	ix := sqlb.BuildMatchIndex(pop)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pop.Providers[i%1000]
		ix.Remove(p)
		ix.Add(p)
	}
}

func BenchmarkMediatorAllocate(b *testing.B) {
	cfg := model.DefaultConfig() // full 400-provider Pq, the paper's hot path
	pop := sqlb.NewPopulation(cfg, 9)
	med := sqlb.NewMediator(sqlb.NewSQLB())
	q := &model.Query{ID: 1, Consumer: pop.Consumers[0], Class: 0, Units: 130, N: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := med.Allocate(float64(i)*0.01, q, pop); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulationThroughput(b *testing.B) {
	// Events per wall-second of the whole discrete-event pipeline.
	for i := 0; i < b.N; i++ {
		opts := sim.Options{
			Config:   model.DefaultConfig().Scale(0.1),
			Strategy: allocator.NewSQLB(),
			Workload: workload.Constant(0.6),
			Duration: 300,
			Seed:     uint64(i + 1),
		}
		eng, err := sim.New(opts)
		if err != nil {
			b.Fatal(err)
		}
		res := eng.Run()
		b.ReportMetric(float64(res.IssuedQueries), "queries/run")
	}
}

// benchSimulationShards runs the full paper-scale population (200/400 —
// the Pq loops the shards split are 400 wide) at one shard count; the
// sweep across counts is the speedup curve EXPERIMENTS.md §8 records.
// Results are byte-identical at every count (TestShardedDeterminism), so
// this measures pure wall-clock.
func benchSimulationShards(b *testing.B, shards int) {
	for i := 0; i < b.N; i++ {
		opts := sim.Options{
			Config:   model.DefaultConfig(),
			Strategy: allocator.NewSQLB(),
			Workload: workload.Constant(0.8),
			Duration: 150,
			Seed:     7,
			Shards:   shards,
		}
		eng, err := sim.New(opts)
		if err != nil {
			b.Fatal(err)
		}
		res := eng.Run()
		if res.Err != nil {
			b.Fatal(res.Err)
		}
		b.ReportMetric(float64(res.IssuedQueries), "queries/run")
	}
}

func BenchmarkSimulationShards1(b *testing.B) { benchSimulationShards(b, 1) }

func BenchmarkSimulationShards2(b *testing.B) { benchSimulationShards(b, 2) }

func BenchmarkSimulationShards4(b *testing.B) { benchSimulationShards(b, 4) }

func BenchmarkSimulationShards8(b *testing.B) { benchSimulationShards(b, 8) }

// --- mediation service: batched vs per-query mediation ---

// servePop builds the serving-path population: many providers, few classes
// advertised each, so every mediation matchmakes through a posting list.
func servePop(b *testing.B, providers int) *sqlb.Population {
	b.Helper()
	cfg := sqlb.DefaultConfig().WithClasses(10)
	cfg.Consumers = 8
	cfg.Providers = providers
	cfg.CapabilitySelectivity = 0.1
	return sqlb.NewPopulation(cfg, 17)
}

func serveQueries(pop *sqlb.Population, n, classes int) []*model.Query {
	qs := make([]*model.Query, n)
	for i := range qs {
		qs[i] = &model.Query{
			ID:       uint64(i + 1),
			Consumer: pop.Consumers[i%len(pop.Consumers)],
			Class:    i % classes,
			Units:    130,
			N:        2,
		}
	}
	return qs
}

func serveServer(pop *sqlb.Population) *sqlb.MediationServer {
	srv := sqlb.NewMediationServer(sqlb.NewSQLB(), pop, time.Second, func() float64 { return 0 })
	srv.SetMatchmaker(sqlb.BuildMatchIndex(pop))
	return srv
}

// BenchmarkServerMediate vs BenchmarkServerMediateBatch16 is the serving
// tentpole's amortization claim: a batch shares the matchmaking lookup and
// the provider-intention vector across its queries of a class, where the
// per-query path re-collects both through goroutine fan-out every time.
// ns/op is per mediation in both.
func BenchmarkServerMediate(b *testing.B) {
	pop := servePop(b, 1000)
	srv := serveServer(pop)
	qs := serveQueries(pop, 256, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Mediate(context.Background(), qs[i%len(qs)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServerMediateBatch16(b *testing.B) {
	pop := servePop(b, 1000)
	srv := serveServer(pop)
	qs := serveQueries(pop, 256, 10)
	batch := make([]*model.Query, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i += len(batch) {
		for j := range batch {
			batch[j] = qs[(i+j)%len(qs)]
		}
		for _, r := range srv.MediateBatch(context.Background(), batch) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// --- serial vs parallel Lab ---

// benchLab runs the Figure 5(c) full-autonomy sweep (2 workloads × 3
// methods × 4 repeats = 24 simulations) on a fresh Lab per iteration with
// the given worker budget. BenchmarkLabSerial vs BenchmarkLabParallel is
// the wall-clock speedup of the parallel experiment pipeline; both produce
// byte-identical artifacts (see experiments.TestParallelLabDeterminism).
func benchLab(b *testing.B, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		cfg.Repeats = 4
		cfg.Workers = workers
		lab := experiments.NewLab(cfg)
		if _, err := lab.Run("fig5c"); err != nil {
			b.Fatalf("fig5c: %v", err)
		}
	}
}

func BenchmarkLabSerial(b *testing.B) { benchLab(b, 1) }

func BenchmarkLabParallel(b *testing.B) { benchLab(b, runtime.GOMAXPROCS(0)) }

// --- ablation benchmarks (DESIGN.md §4) ---

func ablationRun(b *testing.B, strategy allocator.Allocator, mutate func(*model.Config)) *sim.Result {
	b.Helper()
	cfg := model.DefaultConfig().Scale(0.05)
	if mutate != nil {
		mutate(&cfg)
	}
	var res *sim.Result
	for i := 0; i < b.N; i++ {
		opts := sim.Options{
			Config:   cfg,
			Strategy: strategy,
			Workload: workload.Constant(0.8),
			Duration: 1200,
			Seed:     13,
			Autonomy: sim.FullAutonomy(),
		}
		eng, err := sim.New(opts)
		if err != nil {
			b.Fatal(err)
		}
		res = eng.Run()
	}
	return res
}

// BenchmarkAblationOmegaAdaptive vs the fixed-ω variants isolates the
// Equation 6 contribution: the adaptive balance is what protects providers.
func BenchmarkAblationOmegaAdaptive(b *testing.B) {
	res := ablationRun(b, allocator.NewSQLB(), nil)
	b.ReportMetric(100*res.ProviderDepartureRate(), "prov-departures-pct")
	b.ReportMetric(res.MeanResponseTime, "resp-s")
}

func BenchmarkAblationOmegaFixed0(b *testing.B) {
	res := ablationRun(b, allocator.NewSQLBFixedOmega(0), nil)
	b.ReportMetric(100*res.ProviderDepartureRate(), "prov-departures-pct")
	b.ReportMetric(res.MeanResponseTime, "resp-s")
}

func BenchmarkAblationOmegaFixed05(b *testing.B) {
	res := ablationRun(b, allocator.NewSQLBFixedOmega(0.5), nil)
	b.ReportMetric(100*res.ProviderDepartureRate(), "prov-departures-pct")
}

func BenchmarkAblationOmegaFixed1(b *testing.B) {
	res := ablationRun(b, allocator.NewSQLBFixedOmega(1), nil)
	b.ReportMetric(100*res.ProviderDepartureRate(), "prov-departures-pct")
}

// BenchmarkAblationUpsilon* trades consumer preferences for provider
// reputation (Definition 7).
func BenchmarkAblationUpsilonPreferencesOnly(b *testing.B) {
	res := ablationRun(b, allocator.NewSQLB(), func(c *model.Config) { c.Upsilon = 1 })
	b.ReportMetric(res.Final.ConsAllocSat.Mean, "consumer-allocsat")
}

func BenchmarkAblationUpsilonBalanced(b *testing.B) {
	res := ablationRun(b, allocator.NewSQLB(), func(c *model.Config) { c.Upsilon = 0.5 })
	b.ReportMetric(res.Final.ConsAllocSat.Mean, "consumer-allocsat")
}

func BenchmarkAblationUpsilonReputationOnly(b *testing.B) {
	res := ablationRun(b, allocator.NewSQLB(), func(c *model.Config) { c.Upsilon = 0 })
	b.ReportMetric(res.Final.ConsAllocSat.Mean, "consumer-allocsat")
}

// BenchmarkAblationWindowK* varies the provider satisfaction window.
func BenchmarkAblationWindowKSmall(b *testing.B) {
	res := ablationRun(b, allocator.NewSQLB(), func(c *model.Config) { c.ProviderK = 10 })
	b.ReportMetric(res.Final.ProvSatPreference.Mean, "prov-sat-pref")
}

func BenchmarkAblationWindowKLarge(b *testing.B) {
	res := ablationRun(b, allocator.NewSQLB(), func(c *model.Config) { c.ProviderK = 200 })
	b.ReportMetric(res.Final.ProvSatPreference.Mean, "prov-sat-pref")
}

// BenchmarkAblationEpsilon varies ε of Definitions 7-9.
func BenchmarkAblationEpsilonSmall(b *testing.B) {
	res := ablationRun(b, allocator.NewSQLB(), func(c *model.Config) { c.Epsilon = 0.1 })
	b.ReportMetric(res.MeanResponseTime, "resp-s")
}

// BenchmarkAblationUtilWindow varies the utilization window W.
func BenchmarkAblationUtilWindowShort(b *testing.B) {
	res := ablationRun(b, allocator.NewSQLB(), func(c *model.Config) { c.UtilizationWindow = 15 })
	b.ReportMetric(res.Final.Utilization.Fairness, "util-fairness")
}

func BenchmarkAblationUtilWindowLong(b *testing.B) {
	res := ablationRun(b, allocator.NewSQLB(), func(c *model.Config) { c.UtilizationWindow = 240 })
	b.ReportMetric(res.Final.Utilization.Fairness, "util-fairness")
}

// Extension strategies vs SQLB under the same autonomy setting.
func BenchmarkExtensionKnBest(b *testing.B) {
	res := ablationRun(b, allocator.NewKnBest(), nil)
	b.ReportMetric(100*res.ProviderDepartureRate(), "prov-departures-pct")
	b.ReportMetric(res.MeanResponseTime, "resp-s")
}

func BenchmarkExtensionSQLBEconomic(b *testing.B) {
	res := ablationRun(b, allocator.NewSQLBEconomic(), nil)
	b.ReportMetric(100*res.ProviderDepartureRate(), "prov-departures-pct")
	b.ReportMetric(res.MeanResponseTime, "resp-s")
}

// --- population scale: 100k providers ---

// scalePop builds a population-scale cohort: hashed consumer preferences
// (no O(|C|·|P|) preference matrix) and an explicit provider window —
// Config.Scale would grow ProviderK with |P|, which at 100k providers is
// 1.6 GB of ring storage for dynamics the sweep does not measure.
func scalePop(b *testing.B, providers, consumers int) *sqlb.Population {
	b.Helper()
	cfg := sqlb.DefaultConfig()
	cfg.Providers = providers
	cfg.Consumers = consumers
	cfg.ProviderK = 100
	cfg.ConsumerK = 50
	cfg.PriorSamples = 20
	cfg.HashedConsumerPrefs = true
	return sqlb.NewPopulation(cfg, 23)
}

// BenchmarkMediate100k is the population-scale mediation number: one full
// Algorithm 1 round over a 100k-provider Pq (homogeneous matchmaking, the
// paper's setup at 250× its published scale). ns/op is the per-mediation
// wall time on one core; mediations/sec/core is its inverse, reported
// explicitly for EXPERIMENTS.md §9. The path allocates nothing in steady
// state, so this measures pure compute over the dense population arrays.
func BenchmarkMediate100k(b *testing.B) {
	pop := scalePop(b, 100_000, 1000)
	med := sqlb.NewMediator(sqlb.NewSQLB())
	q := &model.Query{ID: 1, Consumer: pop.Consumers[0], Class: 0, Units: 130, N: 1}
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		q.Consumer = pop.Consumers[i%len(pop.Consumers)]
		if _, err := med.Allocate(float64(i)*0.01, q, pop); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "mediations/s")
}

// BenchmarkPopulationBuild100k measures building the 100k-provider /
// 1k-consumer population and reports its resident footprint per
// participant (heap delta across the build, after GC settles).
func BenchmarkPopulationBuild100k(b *testing.B) {
	var pop *sqlb.Population
	var m0, m1 runtime.MemStats
	for i := 0; i < b.N; i++ {
		pop = nil
		runtime.GC()
		runtime.ReadMemStats(&m0)
		pop = scalePop(b, 100_000, 1000)
		runtime.GC()
		runtime.ReadMemStats(&m1)
	}
	participants := float64(len(pop.Providers) + len(pop.Consumers))
	b.ReportMetric(float64(m1.HeapAlloc-m0.HeapAlloc)/participants, "bytes/participant")
}

// BenchmarkTimelineCSV measures the streaming timeline writer: rows/sec
// through the CSV sink and — the contract the live tailing path relies
// on — zero allocations per row once the encode buffer is warm.
func BenchmarkTimelineCSV(b *testing.B) {
	sink := timeline.NewCSVSink(io.Discard)
	snap := timeline.Snapshot{
		Time: 1, Source: "sim", WorkloadFraction: 0.8,
		QPSIn: 240.5, QPSOut: 231.25, Dropped: 3, QueueDepth: 17,
		LatencyMean: 0.131, LatencyP50: 0.09, LatencyP95: 0.52, LatencyP99: 1.4,
		ProvSat: 0.61, ConsSat: 0.58, AllocSat: 0.97, SatFairness: 0.91,
		UtilMean: 0.74, UtilFairness: 0.88, UtilGini: 0.19,
		UtilClassLow: 0.91, UtilClassMed: 0.74, UtilClassHigh: 0.6,
		AliveProviders: 96, AliveConsumers: 50, Departures: 4, Joins: 1,
	}
	// Warm the header and the reusable encode buffer before timing.
	if err := sink.Append(snap); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		snap.Time = float64(i)
		if err := sink.Append(snap); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "rows/s")
	b.StopTimer()
	if err := sink.Close(); err != nil {
		b.Fatal(err)
	}
}
